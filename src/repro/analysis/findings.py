"""Finding and severity model for :mod:`repro.analysis`.

A :class:`Finding` is one diagnostic anchored to a file position.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line number so
that committed baselines survive unrelated edits above the finding —
two findings with the same rule, file, enclosing symbol and message are
the *same* finding wherever they drift to.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field

__all__ = ["Severity", "Finding"]


class Severity(str, enum.Enum):
    """How strongly a finding gates the analysis exit code.

    ``ERROR`` findings fail `repro analyze`; ``WARNING`` findings are
    reported but do not gate; ``INFO`` is advisory output only.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: *rule* fired at *path:line:col* with *message*.

    ``symbol`` names the enclosing scope (``Class.method`` or a module
    level marker) and exists mostly to keep fingerprints stable and
    reports readable.
    """

    path: str  # posix-style path relative to the analysis root
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)
    symbol: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity used by the committed baseline file."""
        raw = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-ready representation (schema is tested for stability)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """One-line text report form."""
        where = f" [in {self.symbol}]" if self.symbol else ""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule}: {self.message}{where}"
        )
