"""`repro analyze` CLI: exit codes, formats, rule selection, baselines."""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

RACY = """\
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0  # guarded-by: _lock

    def bump(self):
        self.n += 1
"""


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def racy_root(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "racy.py").write_text(textwrap.dedent(RACY))
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro.analyze]\ninclude = ["pkg"]\n'
        'baseline = "baseline.json"\n'
    )
    return tmp_path


class TestExitCodes:
    def test_repo_source_analyzes_clean(self):
        code, out = run_cli("analyze", "--root", str(REPO_ROOT))
        assert code == 0, out
        assert "0 errors" in out

    def test_findings_exit_nonzero(self, racy_root):
        code, out = run_cli("analyze", "--root", str(racy_root))
        assert code == 1
        assert "lock-discipline" in out
        assert "'n' written outside" in out

    def test_empty_selection_fails(self, tmp_path):
        code, out = run_cli("analyze", "--root", str(tmp_path))
        assert code == 1
        assert "no files selected" in out


class TestRuleSelection:
    def test_list_rules(self):
        code, out = run_cli("analyze", "--list-rules")
        assert code == 0
        for name in (
            "lock-discipline",
            "async-blocking",
            "protocol-exhaustiveness",
            "factory-imports",
            "thread-call-safety",
        ):
            assert name in out

    def test_rules_subset_skips_other_rules(self, racy_root):
        code, out = run_cli(
            "analyze", "--root", str(racy_root),
            "--rules", "async-blocking",
        )
        assert code == 0  # the lock bug is invisible to this rule

    def test_unknown_rule_rejected(self, racy_root):
        with pytest.raises(SystemExit, match="unknown rule"):
            run_cli(
                "analyze", "--root", str(racy_root), "--rules", "bogus"
            )


class TestJsonFormat:
    def test_json_schema(self, racy_root):
        code, out = run_cli(
            "analyze", "--root", str(racy_root), "--format", "json"
        )
        assert code == 1
        data = json.loads(out)
        assert data["version"] == 1
        assert data["summary"]["errors"] == 1
        (finding,) = data["findings"]
        assert finding["rule"] == "lock-discipline"
        assert finding["path"] == "pkg/racy.py"
        assert isinstance(finding["fingerprint"], str)


class TestBaselineFlow:
    def test_write_then_gate_on_new_findings_only(self, racy_root):
        code, out = run_cli(
            "analyze", "--root", str(racy_root), "--write-baseline"
        )
        assert code == 0
        assert "baseline written" in out
        assert (racy_root / "baseline.json").is_file()

        # The known finding is baselined: the gate passes.
        code, out = run_cli("analyze", "--root", str(racy_root))
        assert code == 0
        assert "1 baselined" in out

        # A new violation still fails.
        racy = racy_root / "pkg" / "racy.py"
        racy.write_text(
            racy.read_text()
            + "\n    def peek(self):\n        return self.n\n"
        )
        code, out = run_cli("analyze", "--root", str(racy_root))
        assert code == 1
        assert "'n' read outside" in out

    def test_explicit_baseline_flag(self, racy_root, tmp_path):
        alt = tmp_path / "alt.json"
        code, _ = run_cli(
            "analyze", "--root", str(racy_root),
            "--baseline", str(alt.name), "--write-baseline",
        )
        assert code == 0
        assert (racy_root / alt.name).is_file()


class TestExplicitPaths:
    def test_positional_paths_override_include(self, racy_root):
        (racy_root / "clean").mkdir()
        (racy_root / "clean" / "ok.py").write_text("x = 1\n")
        code, out = run_cli(
            "analyze", "--root", str(racy_root), "clean"
        )
        assert code == 0
        assert "1 files" in out
