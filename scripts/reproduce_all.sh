#!/usr/bin/env bash
# Reproduce the paper's full evaluation (the artifact-style driver).
#
# Usage:
#   scripts/reproduce_all.sh          # quick mode (~4-6 min)
#   scripts/reproduce_all.sh --full   # full parameter sweeps
#
# Outputs land in benchmarks/results/*.txt; the test suite runs first so
# a broken build can't masquerade as a measurement.

set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--full" ]]; then
    export REPRO_BENCH_FULL=1
    echo "== full mode: complete parameter sweeps =="
fi

echo "== test suite =="
python -m pytest tests/

echo "== benchmark harnesses (paper tables, figures, ablations) =="
python -m pytest benchmarks/ --benchmark-only

echo "== results =="
for f in benchmarks/results/*.txt; do
    echo
    echo "--- $f ---"
    cat "$f"
done
