"""Unit tests for the Ordered coordination's deterministic core.

Everything here runs in-process with scripted arrival orders, so the
properties the parallel drivers rely on are pinned exactly: discovery-
order task numbering, the purity of ``run_task_fixed_bound``, the
ledger's in-order finalisation with bound enforcement, and — with the
``ordered-tiebreak`` mutation active — the witness flip the repetition
oracle exists to catch, demonstrated deterministically.
"""

import pytest

from repro.core.ordered import (
    OrderedLedger,
    ordered_frontier,
    ordered_reference_search,
    run_task_fixed_bound,
)
from repro.core.searchtypes import Decision, Enumeration, Incumbent, Optimisation
from repro.core.sequential import sequential_search

from tests.conftest import make_toy_spec

WIDE = {
    "root": ["a", "b", "c"],
    "a": ["aa", "ab"],
    "c": ["ca"],
    "ca": ["caa"],
}
WIDE_VALUES = {
    "root": 0, "a": 1, "b": 5, "c": 2, "aa": 3, "ab": 2, "ca": 7, "caa": 4,
}


def wide_spec():
    return make_toy_spec(dict(WIDE), dict(WIDE_VALUES))


def tied_spec():
    return make_toy_spec({"root": ["a", "b"]}, {"root": 0, "a": 5, "b": 5})


class TestOrderedFrontier:
    def test_tasks_numbered_in_discovery_order(self):
        f = ordered_frontier(wide_spec(), Optimisation(), d_cutoff=1)
        assert [t.node for t in f.tasks] == ["a", "b", "c"]
        assert [t.seq for t in f.tasks] == [0, 1, 2]
        assert [t.depth for t in f.tasks] == [1, 1, 1]
        # Sorting by key IS sorting by seq.
        assert sorted(f.tasks, key=lambda t: t.key) == f.tasks

    def test_prefix_covers_exactly_the_region_above_cutoff(self):
        f = ordered_frontier(wide_spec(), Optimisation(), d_cutoff=1)
        assert f.metrics.nodes == 1  # just the root
        assert f.metrics.spawns == 3
        f2 = ordered_frontier(wide_spec(), Optimisation(), d_cutoff=2)
        assert f2.metrics.nodes == 4  # root, a, b, c
        assert [t.node for t in f2.tasks] == ["aa", "ab", "ca"]

    def test_d_cutoff_zero_completes_inline(self):
        f = ordered_frontier(wide_spec(), Optimisation(), d_cutoff=0)
        assert f.tasks == []
        seq = sequential_search(wide_spec(), Optimisation())
        assert f.knowledge.value == seq.value

    def test_decision_goal_short_circuits_expansion(self):
        f = ordered_frontier(wide_spec(), Decision(target=0), d_cutoff=2)
        assert f.goal is True
        assert f.tasks == []


class TestRunTaskFixedBound:
    def test_pure_function_of_root_and_bound(self):
        spec = wide_spec()
        runs = [
            run_task_fixed_bound(spec, Optimisation(), "c", 1, 2)
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0]["value"] == 7
        assert runs[0]["node"] == "ca"
        assert runs[0]["nodes"] == 2  # c, ca; caa pruned under the new 7

    def test_bound_is_a_strict_floor(self):
        spec = wide_spec()
        # Nothing in c's subtree beats bound=7: value is None and the
        # subtree root itself is pruned (its admissible bound is 7).
        p = run_task_fixed_bound(spec, Optimisation(), "c", 1, 7)
        assert p["value"] is None
        assert p["node"] is None
        assert p["prunes"] >= 1
        # Lowering the bound re-opens it deterministically.
        assert run_task_fixed_bound(spec, Optimisation(), "c", 1, 6)["value"] == 7

    def test_shared_incumbent_never_consulted(self):
        # Two tasks with different bounds visit different node counts —
        # proof the payload depends only on (root, bound), nothing
        # global.
        spec = wide_spec()
        wide_open = run_task_fixed_bound(spec, Optimisation(), "a", 1, 0)
        clamped = run_task_fixed_bound(spec, Optimisation(), "a", 1, 5)
        assert wide_open["nodes"] > 1
        assert clamped["nodes"] == 1  # root visited, children pruned away
        assert clamped["value"] is None

    def test_enumeration_ignores_bound(self):
        spec = wide_spec()
        a = run_task_fixed_bound(spec, Enumeration(), "a", 1, None)
        b = run_task_fixed_bound(spec, Enumeration(), "a", 1, 999)
        assert a == b
        assert a["knowledge"] == 6  # objective sum over a, aa, ab
        assert a["nodes"] == 3

    def test_abort_is_clean(self):
        spec = wide_spec()
        p = run_task_fixed_bound(
            spec, Enumeration(), "root", 0, None,
            poll=1, should_abort=lambda: True,
        )
        assert p is None

    def test_decision_goal_short_circuits(self):
        p = run_task_fixed_bound(wide_spec(), Decision(target=3), "a", 1, 0)
        assert p["goal"] is True


def _frontier_and_payloads(spec, stype, *, d_cutoff=1, bound=0):
    """Phase 1 plus honest speculative payloads for every task."""
    f = ordered_frontier(spec, stype, d_cutoff=d_cutoff)
    payloads = {}
    for t in f.tasks:
        p = run_task_fixed_bound(spec, stype, t.node, t.depth, bound)
        p["bound"] = bound
        payloads[t.seq] = p
    return f, payloads


class TestOrderedLedger:
    def test_finalises_only_in_sequence_order(self):
        spec = wide_spec()
        f, payloads = _frontier_and_payloads(spec, Optimisation())
        ledger = OrderedLedger(Optimisation(), f)
        # Arrivals out of order: seq 2 and 1 park, nothing finalises.
        ledger.record(2, payloads[2])
        ledger.record(1, payloads[1])
        assert ledger.advance() == []
        assert ledger.next_seq == 0
        # seq 0 lands: it finalises (best becomes 3), and the parked
        # seq-1 payload — searched under the now-stale bound 0 — is the
        # single re-run demanded.
        ledger.record(0, payloads[0])
        assert ledger.advance() == [(1, 3)]
        assert ledger.next_seq == 1

    def test_stale_bound_rejected_and_reissued_pinned(self):
        spec = wide_spec()
        f, payloads = _frontier_and_payloads(spec, Optimisation())
        ledger = OrderedLedger(Optimisation(), f)
        ledger.record(0, payloads[0])  # a: value 3 under bound 0 -> best 3
        assert ledger.advance() == []
        assert ledger.required_bound() == 3
        # b ran speculatively under bound 0; by its turn the required
        # bound is 3, so it must be discarded and demanded again.
        ledger.record(1, payloads[1])
        assert ledger.advance() == [(1, 3)]
        assert ledger.metrics.reassigned == 1
        # The pinned re-run finalises.
        p1 = run_task_fixed_bound(spec, Optimisation(), "b", 1, 3)
        p1["bound"] = 3
        ledger.record(1, p1)
        assert ledger.advance() == []
        assert ledger.next_seq == 2
        assert ledger.required_bound() == 5

    def test_journal_records_finalisation_bounds(self):
        spec = wide_spec()
        f, payloads = _frontier_and_payloads(spec, Optimisation())
        ledger = OrderedLedger(Optimisation(), f)
        ledger.record(0, payloads[0])
        ledger.advance()
        assert ledger.journal == [(0, 0, payloads[0]["nodes"])]

    def test_stale_and_out_of_range_arrivals_ignored(self):
        spec = wide_spec()
        f, payloads = _frontier_and_payloads(spec, Optimisation())
        ledger = OrderedLedger(Optimisation(), f)
        ledger.record(0, payloads[0])
        ledger.advance()
        before = ledger.knowledge
        ledger.record(0, {"value": 99, "node": "bogus"})  # already final
        ledger.record(99, {"value": 99, "node": "bogus"})  # no such task
        assert ledger.advance() == []
        assert ledger.knowledge == before

    def test_enumeration_accumulates_on_prefix(self):
        spec = wide_spec()
        f, payloads = _frontier_and_payloads(spec, Enumeration(), bound=None)
        for p in payloads.values():
            p.pop("bound")
        ledger = OrderedLedger(Enumeration(), f)
        for seq in (0, 1, 2):
            ledger.record(seq, payloads[seq])
        assert ledger.advance() == []
        assert ledger.finished
        seq_res = sequential_search(spec, Enumeration())
        assert ledger.knowledge == seq_res.value
        assert ledger.metrics.nodes == seq_res.metrics.nodes

    def test_decision_goal_finishes_early(self):
        spec = wide_spec()
        stype = Decision(target=5)
        f, payloads = _frontier_and_payloads(spec, stype)
        ledger = OrderedLedger(stype, f)
        ledger.record(0, payloads[0])
        ledger.advance()
        rb = ledger.required_bound()
        p1 = run_task_fixed_bound(spec, stype, "b", 1, rb)
        p1["bound"] = rb
        ledger.record(1, p1)  # b hits the target
        ledger.advance()
        assert ledger.goal is True
        assert ledger.finished


class TestReferenceEquivalence:
    @pytest.mark.parametrize("d_cutoff", [0, 1, 2, 5])
    def test_optimisation_value_matches_sequential(self, d_cutoff):
        spec = wide_spec()
        ref = ordered_reference_search(spec, Optimisation(), d_cutoff=d_cutoff)
        seq = sequential_search(spec, Optimisation())
        assert ref.value == seq.value == 7
        assert ref.node == "ca"

    @pytest.mark.parametrize("d_cutoff", [0, 1, 2, 5])
    def test_enumeration_counts_match_sequential(self, d_cutoff):
        spec = wide_spec()
        ref = ordered_reference_search(spec, Enumeration(), d_cutoff=d_cutoff)
        seq = sequential_search(spec, Enumeration())
        assert ref.value == seq.value
        assert ref.metrics.nodes == seq.metrics.nodes

    def test_reference_is_deterministic(self):
        spec = wide_spec()
        a = ordered_reference_search(spec, Optimisation(), d_cutoff=1)
        b = ordered_reference_search(spec, Optimisation(), d_cutoff=1)
        assert a.value == b.value
        assert a.node == b.node
        assert a.metrics.to_dict() == b.metrics.to_dict()


class TestOrderedTiebreakMutation:
    """The deterministic witness flip, with arrival order scripted.

    The exact anomaly the mutation plants: two optima tied at 5, task
    'b' executed speculatively under a stale bound.  Clean semantics
    discard the stale payload at finalisation and the tie keeps the
    lower-seq witness 'a'; the mutated ledger merges at arrival with
    ``>=``, so the late tied arrival 'b' takes the witness — while the
    bound machinery (and therefore every counter) is untouched.
    """

    def _drive(self):
        spec = tied_spec()
        stype = Optimisation()
        f, payloads = _frontier_and_payloads(spec, stype, bound=0)
        ledger = OrderedLedger(stype, f)
        ledger.record(0, payloads[0])        # a: value 5 under bound 0
        assert ledger.advance() == []
        ledger.record(1, payloads[1])        # b: tied 5, stale bound 0
        assert ledger.advance() == [(1, 5)]  # rejected, re-issued pinned
        p1 = run_task_fixed_bound(spec, stype, "b", 1, 5)
        p1["bound"] = 5
        ledger.record(1, p1)                 # nothing beats 5 under 5
        assert ledger.advance() == []
        assert ledger.finished
        return ledger

    def test_clean_tiebreak_is_priority_wins(self):
        ledger = self._drive()
        assert ledger.knowledge == Incumbent(5, "a")

    def test_mutated_tiebreak_is_arrival_wins(self, monkeypatch):
        clean = self._drive()
        monkeypatch.setenv("REPRO_VERIFY_MUTATION", "ordered-tiebreak")
        mutated = self._drive()
        # Witness flips to the late tied arrival...
        assert mutated.knowledge == Incumbent(5, "b")
        # ...and nothing else moves: same value, same required bound,
        # identical counters and journal — exactly the corruption only
        # a witness-aware repetition oracle can see.
        assert mutated.knowledge.value == clean.knowledge.value
        assert mutated.required_bound() == clean.required_bound()
        assert mutated.metrics.to_dict() == clean.metrics.to_dict()
        assert mutated.journal == clean.journal

    def test_reference_search_is_immune(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_MUTATION", "ordered-tiebreak")
        ref = ordered_reference_search(tied_spec(), Optimisation(), d_cutoff=1)
        assert ref.node == "a"  # the oracle stays sound under mutation
