"""Re-export shared fixtures for intra-package imports.

Test modules in this package do ``from .conftest import make_toy_spec``;
the definitions live in the top-level tests/conftest.py so the runtime
and integration suites can use the same fixtures.
"""

from tests.conftest import ToyTree, make_toy_spec  # noqa: F401
