"""Search application specifications.

A :class:`SearchSpec` bundles everything application-specific: the
search space, the root node, the Lazy Node Generator factory, the
objective function, and (for branch-and-bound searches) the upper-bound
function used for pruning.  Composing a spec with a skeleton yields a
runnable search application, mirroring Figure 3:

    Search Application = Search Skeleton + Lazy Node Generator
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.nodegen import GeneratorFactory

__all__ = ["SearchSpec"]


@dataclass(frozen=True)
class SearchSpec:
    """Application-specific inputs to a search skeleton.

    Attributes:
        name: human-readable application/instance label.
        space: the (immutable, shared) search space, e.g. a graph.
        root: the root search-tree node.
        generator: factory ``(space, node) -> NodeGenerator`` producing
            the node's children in heuristic order.
        objective: ``h(node)`` — the value maximised by optimisation and
            decision searches, and summed by enumeration searches.  Must
            be monotone non-decreasing along the orders required by the
            search type (§3.2).
        upper_bound: optional ``(space, node) -> value``; an admissible
            bound on the objective of every node in the subtree rooted at
            ``node``.  Enables the (prune) rule; omit it and searches are
            exhaustive.
        node_size: optional ``(node) -> int`` cost weight used by the
            simulator's cost model; defaults to 1 per node.
        witness_check: optional ``(space, node) -> bool`` verifying that
            a witness node structurally is what it claims to be (a real
            clique / tour / embedding).  Used by
            :func:`repro.core.results.validate_result` so search results
            can be certified independently of the search that produced
            them.
    """

    name: str
    space: Any
    root: Any
    generator: GeneratorFactory
    objective: Callable[[Any], int]
    upper_bound: Optional[Callable[[Any, Any], int]] = None
    node_size: Optional[Callable[[Any], int]] = None
    witness_check: Optional[Callable[[Any, Any], bool]] = None

    def children_of(self, node: Any):
        """Construct a generator for ``node`` (convenience for drivers)."""
        return self.generator(self.space, node)

    def bound(self, node: Any) -> int:
        """The admissible upper bound of ``node`` (requires upper_bound)."""
        if self.upper_bound is None:
            raise ValueError(f"spec {self.name!r} has no upper-bound function")
        return self.upper_bound(self.space, node)

    @property
    def can_prune(self) -> bool:
        return self.upper_bound is not None
