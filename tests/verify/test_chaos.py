"""Tests for fault plans and the injection hooks (no cluster needed)."""

import pytest

from repro.cluster.faults import (
    SAFE_DROP_TYPES,
    CoordinatorFaults,
    WorkerFaults,
)
from repro.verify.chaos import FaultPlan, make_plan


class TestMakePlan:
    def test_deterministic(self):
        assert make_plan(5, 3).to_dict() == make_plan(5, 3).to_dict()

    def test_plans_are_survivable(self):
        # Across many seeds: never kill every worker, never drop an
        # unsafe frame type, one partition window per worker.
        for seed in range(200):
            for n_workers in (1, 2, 3):
                plan = make_plan(seed, n_workers)
                kills = [e for e in plan.events if e["kind"] == "kill_worker"]
                assert len(kills) < n_workers
                assert len({e["worker"] for e in kills}) == len(kills)
                parts = [e for e in plan.events if e["kind"] == "partition"]
                assert len({e["worker"] for e in parts}) == len(parts)
                for ev in plan.events:
                    if ev["kind"] == "drop_frame":
                        assert ev["frame_type"] in SAFE_DROP_TYPES

    def test_allow_kill_false_is_pure_perturbation(self):
        for seed in range(100):
            plan = make_plan(seed, 2, allow_kill=False)
            kinds = {e["kind"] for e in plan.events}
            assert kinds <= {"drop_frame", "delay_heartbeat"}

    def test_dict_round_trip(self):
        plan = make_plan(11, 3)
        again = FaultPlan.from_dict(plan.to_dict())
        assert again.seed == plan.seed and again.events == plan.events

    def test_describe_names_every_event(self):
        plan = make_plan(11, 3)
        text = plan.describe()
        for ev in plan.events:
            assert ev["kind"] in text
        assert FaultPlan(0, []).describe() == "no faults"


class TestWorkerFaults:
    def test_drop_window_is_exact(self):
        faults = WorkerFaults(
            [{"kind": "drop_frame", "worker": "w", "frame_type": "HEARTBEAT",
              "after": 1, "count": 2}]
        )
        # Frame 1 passes, frames 2-3 are dropped, frame 4 passes again.
        outcomes = [faults.drop_outbound("HEARTBEAT") for _ in range(4)]
        assert outcomes == [False, True, True, False]

    def test_drop_counts_only_matching_type(self):
        faults = WorkerFaults(
            [{"kind": "drop_frame", "worker": "w", "frame_type": "INCUMBENT",
              "after": 0, "count": 1}]
        )
        assert faults.drop_outbound("RESULT") is False  # not counted
        assert faults.drop_outbound("INCUMBENT") is True

    def test_unsafe_drop_rejected(self):
        for frame in ("RESULT", "OFFCUT", "TASK"):
            with pytest.raises(ValueError, match="refusing to drop"):
                WorkerFaults(
                    [{"kind": "drop_frame", "worker": "w",
                      "frame_type": frame, "after": 0, "count": 1}]
                )

    def test_delay_targets_one_beat(self):
        faults = WorkerFaults(
            [{"kind": "delay_heartbeat", "worker": "w", "beat": 2,
              "delay": 0.25}]
        )
        assert faults.next_beat_delay() == 0.0
        assert faults.next_beat_delay() == 0.25
        assert faults.next_beat_delay() == 0.0

    def test_earliest_kill_wins(self):
        faults = WorkerFaults(
            [{"kind": "kill_worker", "worker": "w", "at_task": 5},
             {"kind": "kill_worker", "worker": "w", "at_task": 2}]
        )
        assert faults._kill_at == 2
        faults.on_task_start(1)  # below the threshold: must not exit

    def test_from_events_filters_by_worker(self):
        events = [
            {"kind": "delay_heartbeat", "worker": "a", "beat": 1, "delay": 0.1},
            {"kind": "partition", "worker": "a", "after_frames": 1, "count": 5},
        ]
        assert WorkerFaults.from_events(events, "b") is None
        mine = WorkerFaults.from_events(events, "a")
        # The partition event is coordinator-side and must be ignored.
        assert mine is not None and mine.next_beat_delay() == 0.1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            WorkerFaults([{"kind": "meteor", "worker": "w"}])


class TestCoordinatorFaults:
    def test_partition_window_counts_inbound_frames(self):
        faults = CoordinatorFaults(
            [{"kind": "partition", "worker": "w", "after_frames": 2, "count": 2}]
        )
        outcomes = [faults.drop_inbound("w", "HEARTBEAT") for _ in range(5)]
        assert outcomes == [False, False, True, True, False]

    def test_other_workers_unaffected(self):
        faults = CoordinatorFaults(
            [{"kind": "partition", "worker": "w", "after_frames": 0, "count": 9}]
        )
        assert faults.drop_inbound("other", "RESULT") is False

    def test_worker_side_events_ignored(self):
        faults = CoordinatorFaults(
            [{"kind": "kill_worker", "worker": "w", "at_task": 1}]
        )
        assert not faults
        assert bool(CoordinatorFaults(
            [{"kind": "partition", "worker": "w", "after_frames": 0, "count": 1}]
        ))
