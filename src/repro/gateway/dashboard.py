"""``repro gateway-top`` — a live ASCII dashboard over ``/metrics``.

Scrapes the gateway's Prometheus endpoint on an interval and renders
the operator's view in the terminal: a per-shard table (submitted,
executed, running, queue depth, cache hit rate, latency percentiles,
cluster workers) and a rolling :func:`repro.util.asciiplot.ascii_chart`
of submit throughput and in-flight load — the same "watch the service
breathe" purpose dask's dashboard serves, with nothing but characters.

Everything here consumes the *scraped* endpoint, never in-process
state: if the dashboard can see it, so can any Prometheus server.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from repro.gateway.client import GatewayClient, GatewayError
from repro.util.asciiplot import ascii_chart

__all__ = ["render_frame", "gateway_top"]

_CLEAR = "\x1b[2J\x1b[H"


def _shard_labels(metrics: dict) -> list[str]:
    labels = {
        dict(labels).get("shard")
        for (name, labels) in metrics
        if name == "repro_jobs_submitted_total"
    }
    return sorted(label for label in labels if label is not None)


def _get(metrics: dict, name: str, **labels) -> Optional[float]:
    return metrics.get((name, tuple(sorted(labels.items()))))


def render_frame(
    metrics: dict,
    *,
    url: str,
    history: Optional[list] = None,
) -> str:
    """One dashboard frame from a parsed ``/metrics`` scrape.

    ``history`` is the rolling list of ``(t, submitted_total,
    in_flight)`` samples the throughput chart is drawn from.
    """
    shards = _shard_labels(metrics)
    draining = _get(metrics, "repro_gateway_draining")
    uptime = _get(metrics, "repro_gateway_uptime_seconds")
    streams = _get(metrics, "repro_gateway_streams_active")
    head = [
        f"repro gateway  {url}"
        + (f"  up {uptime:.0f}s" if uptime is not None else "")
        + (f"  streams {streams:.0f}" if streams is not None else "")
        + ("  [DRAINING]" if draining else ""),
        "",
        "shard  submitted  executed  running  queued  cache-hit  "
        "p50      p95      workers",
    ]
    totals = {"submitted": 0.0, "executed": 0.0, "running": 0.0, "queued": 0.0}
    for shard in shards:
        submitted = _get(metrics, "repro_jobs_submitted_total", shard=shard) or 0
        executed = _get(metrics, "repro_jobs_executed_total", shard=shard) or 0
        running = _get(metrics, "repro_jobs_running", shard=shard) or 0
        queued = _get(metrics, "repro_queue_depth", shard=shard) or 0
        hits = _get(metrics, "repro_cache_hits_total", shard=shard) or 0
        misses = _get(metrics, "repro_cache_misses_total", shard=shard) or 0
        rate = f"{hits / (hits + misses):7.0%}" if hits + misses else "    n/a"
        p50 = _get(metrics, "repro_job_latency_seconds", shard=shard, quantile="0.5")
        p95 = _get(metrics, "repro_job_latency_seconds", shard=shard, quantile="0.95")
        workers = _get(metrics, "repro_cluster_workers_connected", shard=shard)
        p50s = f"{p50:.3f}s" if p50 is not None else "n/a"
        p95s = f"{p95:.3f}s" if p95 is not None else "n/a"
        w = f"{workers:.0f}" if workers is not None else "-"
        head.append(
            f"{shard:>5}  {submitted:9.0f}  {executed:8.0f}  {running:7.0f}  "
            f"{queued:6.0f}  {rate}  {p50s:>7}  {p95s:>7}  {w:>7}"
        )
        totals["submitted"] += submitted
        totals["executed"] += executed
        totals["running"] += running
        totals["queued"] += queued
    head.append(
        f"total  {totals['submitted']:9.0f}  {totals['executed']:8.0f}  "
        f"{totals['running']:7.0f}  {totals['queued']:6.0f}"
    )

    if history is not None:
        history.append(
            (
                time.monotonic(),
                totals["submitted"],
                totals["running"] + totals["queued"],
            )
        )
        del history[:-120]
        if len(history) >= 3:
            t0 = history[0][0]
            rate_pts = [
                (
                    t - t0,
                    max(0.0, (s - s_prev) / max(1e-9, t - t_prev)),
                )
                for (t_prev, s_prev, _), (t, s, _) in zip(history, history[1:])
            ]
            load_pts = [(t - t0, load) for t, _, load in history[1:]]
            try:
                head.append("")
                head.append(
                    ascii_chart(
                        {"submit/s": rate_pts, "in-flight": load_pts},
                        width=60,
                        height=10,
                        title="throughput and load",
                        xlabel="seconds",
                    )
                )
            except ValueError:
                pass  # flat zero history; nothing worth plotting
    return "\n".join(head)


def gateway_top(
    url: str,
    *,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    out=None,
    clear: bool = True,
    sleep=time.sleep,
) -> int:
    """Run the dashboard loop; returns a process exit status.

    ``iterations=None`` runs until interrupted; ``iterations=1`` prints
    a single frame (the ``--once`` mode CI uses).
    """
    out = out if out is not None else sys.stdout
    client = GatewayClient(url)
    history: list = []
    n = 0
    while iterations is None or n < iterations:
        try:
            metrics = client.metrics()
        except (GatewayError, OSError) as exc:
            if n == 0:
                print(f"cannot scrape {url}/metrics: {exc}", file=out)
                return 1
            print(f"scrape failed ({exc}); gateway gone — exiting", file=out)
            return 0
        frame = render_frame(metrics, url=url, history=history)
        if clear and iterations != 1:
            print(_CLEAR + frame, file=out, flush=True)
        else:
            print(frame, file=out, flush=True)
        n += 1
        if iterations is None or n < iterations:
            try:
                sleep(interval)
            except KeyboardInterrupt:
                return 0
    return 0
