"""lock-discipline: guarded fields are only touched under their lock.

The convention (docs/analysis.md) is declared at the field's
initialisation site::

    class ServiceMetrics:
        def __init__(self):
            self._lock = threading.Lock()
            self._by_state = {}  # guarded-by: _lock

From then on every ``self._by_state`` read or write anywhere in the
class must sit inside ``with self._lock:`` (alternatives may be
declared as ``# guarded-by: _lock|_work`` — any one of them
suffices, the idiom for a Condition sharing the scheduler's RLock).

Two escape hatches express "the caller holds the lock":

- a method whose name ends in ``_locked``;
- a ``# repro: holds[_lock]`` comment on the ``def`` line.

The special spec ``# guarded-by: caller`` declares a deliberately
lock-free container (ResultCache, JobQueue, Workpool) whose *owner*
serialises access; the class itself must then stay free of threading
machinery, which is the statically checkable half of that contract.

Nested functions reset the held-lock context: a closure defined inside
a ``with self._lock:`` block usually runs later, on another thread,
when the lock is long released.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Rule, SourceFile
from repro.analysis.findings import Finding, Severity

__all__ = ["LockDisciplineRule"]

_CALLER = "caller"


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _ClassGuards:
    """Guard declarations collected from one class's ``__init__``."""

    def __init__(self) -> None:
        self.fields: dict[str, frozenset[str]] = {}  # field -> lock names
        self.caller_fields: list[tuple[str, int]] = []

    @property
    def all_locks(self) -> frozenset[str]:
        names: set[str] = set()
        for locks in self.fields.values():
            names.update(locks)
        return frozenset(names)


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = (
        "fields declared '# guarded-by: <lock>' are only accessed"
        " inside 'with self.<lock>:' blocks"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        """Check guarded-by annotated fields in every class."""
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    # -- declaration collection ---------------------------------------------

    def _collect_guards(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> _ClassGuards:
        guards = _ClassGuards()
        init = next(
            (
                stmt
                for stmt in cls.body
                if isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return guards
        for stmt in ast.walk(init):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            spec = src.guards.get(stmt.lineno)
            if spec is None:
                continue
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                name = _self_attr(target)
                if name is None:
                    continue
                if spec == _CALLER:
                    guards.caller_fields.append((name, stmt.lineno))
                else:
                    guards.fields[name] = frozenset(spec.split("|"))
        return guards

    # -- checking -----------------------------------------------------------

    def _check_class(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        guards = self._collect_guards(src, cls)
        if guards.caller_fields:
            yield from self._check_caller_contract(src, cls, guards)
        if not guards.fields:
            return
        for stmt in cls.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if stmt.name == "__init__":
                continue
            held = self._initial_holds(src, stmt, guards)
            yield from self._scan(src, cls, stmt, stmt.body, held, guards)

    def _initial_holds(
        self,
        src: SourceFile,
        func: ast.AST,
        guards: _ClassGuards,
    ) -> frozenset[str]:
        """Locks the method may assume held on entry."""
        name = getattr(func, "name", "")
        if name.endswith("_locked"):
            return guards.all_locks
        spec = src.holds.get(func.lineno)
        if spec is not None:
            return frozenset(spec.split("|"))
        return frozenset()

    def _scan(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        method: ast.AST,
        body: Iterable[ast.stmt],
        held: frozenset[str],
        guards: _ClassGuards,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._scan_node(src, cls, method, stmt, held, guards)

    def _scan_node(
        self,
        src: SourceFile,
        cls: ast.ClassDef,
        method: ast.AST,
        node: ast.AST,
        held: frozenset[str],
        guards: _ClassGuards,
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = set()
            for item in node.items:
                lock = _self_attr(item.context_expr)
                if lock is not None and lock in guards.all_locks:
                    acquired.add(lock)
                else:
                    yield from self._scan_node(
                        src, cls, method, item.context_expr, held, guards
                    )
            inner = held | acquired
            for stmt in node.body:
                yield from self._scan_node(
                    src, cls, method, stmt, inner, guards
                )
            return
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            # A nested function body runs later — locks held at its
            # definition site mean nothing at its call site.
            nested_held = self._initial_holds(src, node, guards)
            children = (
                node.body
                if isinstance(node.body, list)
                else [node.body]
            )
            for child in children:
                yield from self._scan_node(
                    src, cls, method, child, nested_held, guards
                )
            return
        field = None
        if isinstance(node, ast.Attribute):
            field = _self_attr(node)
        if field is not None and field in guards.fields:
            wanted = guards.fields[field]
            if not (wanted & held):
                verb = (
                    "written"
                    if isinstance(node.ctx, (ast.Store, ast.Del))
                    else "read"
                )
                locks = "|".join(sorted(wanted))
                yield Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"field '{field}' {verb} outside"
                        f" 'with self.{locks}:'"
                    ),
                    symbol=f"{cls.name}.{getattr(method, 'name', '?')}",
                )
        for child in ast.iter_child_nodes(node):
            yield from self._scan_node(
                src, cls, method, child, held, guards
            )

    def _check_caller_contract(
        self, src: SourceFile, cls: ast.ClassDef, guards: _ClassGuards
    ) -> Iterator[Finding]:
        """guarded-by: caller classes must not manage threading."""
        for node in ast.walk(cls):
            bad = None
            if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                if node.value.id == "threading" and node.attr in (
                    "Lock",
                    "RLock",
                    "Condition",
                    "Thread",
                    "Semaphore",
                ):
                    bad = f"threading.{node.attr}"
            elif isinstance(node, ast.Name) and node.id in (
                "Lock",
                "RLock",
                "Thread",
            ):
                bad = node.id
            if bad is not None:
                fields = ", ".join(n for n, _ in guards.caller_fields)
                yield Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"class declares caller-guarded fields"
                        f" ({fields}) but uses {bad}; pick one"
                        " locking story"
                    ),
                    symbol=cls.name,
                )
