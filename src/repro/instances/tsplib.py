"""TSPLIB95 parsing (EUC_2D and explicit matrices).

The standard interchange format for TSP instances, so users can run the
TSP skeletons on the classic benchmark files (berlin52, eil51, ...).
Supports the subset that covers the symmetric instances the paper-scale
searches can handle:

- ``EDGE_WEIGHT_TYPE: EUC_2D`` with a ``NODE_COORD_SECTION`` (distances
  are rounded Euclidean, per the TSPLIB definition), and
- ``EDGE_WEIGHT_TYPE: EXPLICIT`` with ``FULL_MATRIX``,
  ``UPPER_ROW`` or ``LOWER_DIAG_ROW`` weight sections.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.apps.tsp import TSPInstance

__all__ = ["parse_tsplib", "parse_tsplib_text", "write_tsplib"]


def _tokenise_sections(text: str) -> tuple[dict, dict]:
    """Split a TSPLIB file into header fields and section token lists."""
    header: dict[str, str] = {}
    sections: dict[str, list[str]] = {}
    current: list[str] | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line == "EOF":
            continue
        upper = line.split()[0].rstrip(":").upper()
        if upper.endswith("_SECTION") or upper == "NODE_COORD_SECTION":
            current = sections.setdefault(upper, [])
            continue
        if ":" in line and current is None:
            key, _, value = line.partition(":")
            header[key.strip().upper()] = value.strip()
            continue
        if current is not None:
            current.extend(line.split())
        else:
            raise ValueError(f"unexpected line outside any section: {line!r}")
    return header, sections


def parse_tsplib_text(text: str) -> TSPInstance:
    """Parse TSPLIB content into a :class:`TSPInstance`."""
    header, sections = _tokenise_sections(text)
    if header.get("TYPE", "TSP").split()[0] not in ("TSP",):
        raise ValueError(f"unsupported TYPE {header.get('TYPE')!r}")
    n = int(header["DIMENSION"])
    weight_type = header.get("EDGE_WEIGHT_TYPE", "EUC_2D").upper()

    if weight_type == "EUC_2D":
        tokens = sections.get("NODE_COORD_SECTION")
        if tokens is None:
            raise ValueError("EUC_2D instance without NODE_COORD_SECTION")
        if len(tokens) != 3 * n:
            raise ValueError(f"expected {3 * n} coord tokens, got {len(tokens)}")
        points: list[tuple[float, float]] = [(0.0, 0.0)] * n
        for i in range(n):
            idx, x, y = tokens[3 * i : 3 * i + 3]
            points[int(idx) - 1] = (float(x), float(y))
        return TSPInstance.from_points(points)

    if weight_type == "EXPLICIT":
        fmt = header.get("EDGE_WEIGHT_FORMAT", "FULL_MATRIX").upper()
        tokens = [int(float(t)) for t in sections.get("EDGE_WEIGHT_SECTION", [])]
        dist = [[0] * n for _ in range(n)]
        if fmt == "FULL_MATRIX":
            if len(tokens) != n * n:
                raise ValueError("FULL_MATRIX token count mismatch")
            for i in range(n):
                for j in range(n):
                    dist[i][j] = tokens[i * n + j]
        elif fmt == "UPPER_ROW":
            expected = n * (n - 1) // 2
            if len(tokens) != expected:
                raise ValueError("UPPER_ROW token count mismatch")
            it = iter(tokens)
            for i in range(n):
                for j in range(i + 1, n):
                    d = next(it)
                    dist[i][j] = dist[j][i] = d
        elif fmt == "LOWER_DIAG_ROW":
            expected = n * (n + 1) // 2
            if len(tokens) != expected:
                raise ValueError("LOWER_DIAG_ROW token count mismatch")
            it = iter(tokens)
            for i in range(n):
                for j in range(i + 1):
                    d = next(it)
                    dist[i][j] = dist[j][i] = d
        else:
            raise ValueError(f"unsupported EDGE_WEIGHT_FORMAT {fmt!r}")
        for i in range(n):
            dist[i][i] = 0
        return TSPInstance(tuple(tuple(row) for row in dist))

    raise ValueError(f"unsupported EDGE_WEIGHT_TYPE {weight_type!r}")


def parse_tsplib(path: Union[str, Path]) -> TSPInstance:
    """Load a ``.tsp`` file."""
    return parse_tsplib_text(Path(path).read_text())


def write_tsplib(
    inst: TSPInstance, path: Union[str, Path], *, name: str = "instance"
) -> None:
    """Write an instance as an EXPLICIT FULL_MATRIX TSPLIB file."""
    lines = [
        f"NAME: {name}",
        "TYPE: TSP",
        f"DIMENSION: {inst.n}",
        "EDGE_WEIGHT_TYPE: EXPLICIT",
        "EDGE_WEIGHT_FORMAT: FULL_MATRIX",
        "EDGE_WEIGHT_SECTION",
    ]
    lines.extend(" ".join(str(d) for d in row) for row in inst.dist)
    lines.append("EOF")
    Path(path).write_text("\n".join(lines) + "\n")
