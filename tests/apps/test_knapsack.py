"""Tests for 0/1 Knapsack: generator, bound admissibility, DP oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.knapsack import (
    KnapsackInstance,
    KnapsackNode,
    fractional_bound,
    knapsack_spec,
)
from repro.core.searchtypes import Optimisation
from repro.core.sequential import sequential_search
from repro.instances.library import random_knapsack


def dp_optimum(inst: KnapsackInstance) -> int:
    """Classic O(n*C) dynamic program as an oracle."""
    best = [0] * (inst.capacity + 1)
    for p, w in zip(inst.profits, inst.weights):
        for c in range(inst.capacity, w - 1, -1):
            best[c] = max(best[c], best[c - w] + p)
    return best[inst.capacity]


instances = st.builds(
    lambda n, seed, kind: random_knapsack(n, seed, kind=kind, max_weight=30),
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=500),
    st.sampled_from(["uncorrelated", "weak", "strong"]),
)


class TestInstanceValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            KnapsackInstance((1, 2), (1,), 5)

    def test_nonpositive_weight(self):
        with pytest.raises(ValueError):
            KnapsackInstance((1,), (0,), 5)

    def test_negative_capacity(self):
        with pytest.raises(ValueError):
            KnapsackInstance((1,), (1,), -1)

    def test_density_sorting(self):
        inst = KnapsackInstance.sorted_by_density([10, 30, 10], [10, 10, 5], 20)
        densities = [p / w for p, w in zip(inst.profits, inst.weights)]
        assert densities == sorted(densities, reverse=True)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            random_knapsack(5, 1, kind="exotic")


class TestGenerator:
    def test_children_respect_capacity(self):
        inst = KnapsackInstance((5, 4, 3), (4, 3, 2), 5)
        spec = knapsack_spec(inst)
        for child in spec.children_of(spec.root):
            assert child.weight <= inst.capacity

    def test_children_advance_index(self):
        inst = KnapsackInstance((5, 4, 3), (1, 1, 1), 10)
        spec = knapsack_spec(inst)
        indices = [c.next_index for c in spec.children_of(spec.root)]
        assert indices == [1, 2, 3]

    def test_each_subset_generated_once(self):
        inst = KnapsackInstance((1, 1, 1), (1, 1, 1), 3)
        spec = knapsack_spec(inst)
        seen = set()
        stack = [(spec.root, frozenset())]
        while stack:
            node, subset = stack.pop()
            assert subset not in seen or subset == frozenset()
            seen.add(subset)
            for child in spec.children_of(node):
                stack.append((child, subset | {child.next_index - 1}))
        assert len(seen) == 8  # all subsets fit


class TestBound:
    @settings(max_examples=50, deadline=None)
    @given(instances)
    def test_bound_admissible_at_root(self, inst):
        spec = knapsack_spec(inst)
        assert fractional_bound(inst, spec.root) >= dp_optimum(inst)

    @settings(max_examples=30, deadline=None)
    @given(instances)
    def test_bound_dominates_children(self, inst):
        # Monotonicity: a child's bound never exceeds its parent's.
        spec = knapsack_spec(inst)
        stack = [spec.root]
        while stack:
            node = stack.pop()
            parent_bound = fractional_bound(inst, node)
            for child in spec.children_of(node):
                assert fractional_bound(inst, child) <= parent_bound
                if child.next_index < inst.n:
                    stack.append(child)

    def test_bound_exact_when_everything_fits(self):
        inst = KnapsackInstance((3, 2), (1, 1), 10)
        spec = knapsack_spec(inst)
        assert fractional_bound(inst, spec.root) == 5


class TestSearchCorrectness:
    @settings(max_examples=50, deadline=None)
    @given(instances)
    def test_matches_dp(self, inst):
        res = sequential_search(knapsack_spec(inst), Optimisation())
        assert res.value == dp_optimum(inst)

    def test_zero_capacity(self):
        inst = KnapsackInstance((5,), (1,), 0)
        res = sequential_search(knapsack_spec(inst), Optimisation())
        assert res.value == 0

    def test_witness_consistent(self):
        inst = random_knapsack(10, 42, kind="strong", max_weight=20)
        res = sequential_search(knapsack_spec(inst), Optimisation())
        node = res.node
        assert node.profit == res.value
        assert node.weight <= inst.capacity

    def test_pruning_happens(self):
        inst = random_knapsack(14, 5, kind="strong", max_weight=40)
        res = sequential_search(knapsack_spec(inst), Optimisation())
        assert res.metrics.prunes > 0


class TestBinaryGeneratorVariant:
    """Take/skip branching: same optimum, different tree (§4.1 decoupling)."""

    from repro.apps.knapsack import knapsack_binary_spec

    @settings(max_examples=40, deadline=None)
    @given(instances)
    def test_same_optimum_as_multiway(self, inst):
        from repro.apps.knapsack import knapsack_binary_spec

        multi = sequential_search(knapsack_spec(inst), Optimisation())
        binary = sequential_search(knapsack_binary_spec(inst), Optimisation())
        assert multi.value == binary.value == dp_optimum(inst)

    def test_trees_differ(self):
        from repro.apps.knapsack import knapsack_binary_spec

        inst = random_knapsack(14, 9, kind="strong", max_weight=40)
        multi = sequential_search(knapsack_spec(inst), Optimisation())
        binary = sequential_search(knapsack_binary_spec(inst), Optimisation())
        assert multi.metrics.nodes != binary.metrics.nodes

    def test_binary_tree_bounded_depth(self):
        from repro.apps.knapsack import knapsack_binary_spec

        inst = random_knapsack(10, 10, kind="weak", max_weight=30)
        res = sequential_search(knapsack_binary_spec(inst), Optimisation())
        assert res.metrics.max_depth <= inst.n + 1

    def test_parallel_agrees(self):
        from repro import SkeletonParams, search
        from repro.apps.knapsack import knapsack_binary_spec

        inst = random_knapsack(14, 11, kind="strong", max_weight=40)
        spec = knapsack_binary_spec(inst)
        seq = sequential_search(spec, Optimisation())
        par = search(spec, skeleton="stacksteal", search_type="optimisation",
                     params=SkeletonParams(localities=1, workers_per_locality=4))
        assert par.value == seq.value
