"""Low-level utilities shared across the reproduction.

- :mod:`repro.util.bitset` — int-backed bitsets (the Python analogue of the
  paper's vectorised ``std::bitset<N>``).
- :mod:`repro.util.rng` — splittable, hash-based deterministic RNG used by
  UTS and the simulator.
- :mod:`repro.util.stats` — summary statistics used by the benchmark
  harnesses (geometric means, speedup tables).
"""

from repro.util.bitset import (
    bit_indices,
    bitset_from_iterable,
    count_bits,
    first_bit,
    highest_bit,
    mask_below,
    singleton,
    without_bit,
)
from repro.util.rng import SplitMix64, splittable_hash
from repro.util.stats import geometric_mean, relative_speedups, summarize_overheads

__all__ = [
    "bit_indices",
    "bitset_from_iterable",
    "count_bits",
    "first_bit",
    "highest_bit",
    "mask_below",
    "singleton",
    "without_bit",
    "SplitMix64",
    "splittable_hash",
    "geometric_mean",
    "relative_speedups",
    "summarize_overheads",
]
