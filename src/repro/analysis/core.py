"""Framework core: source model, suppressions, rule protocol, runner.

The analyzer's unit of work is a :class:`Project` — a set of parsed
:class:`SourceFile` objects under one root.  Rules are small objects
with a :meth:`Rule.check` generator; most override the per-file hook,
while cross-file rules (protocol exhaustiveness) override the project
hook directly.

Inline suppressions follow the repo-wide convention::

    do_racy_thing()  # repro: allow[lock-discipline] -- benign: <why>

The ``-- reason`` clause is mandatory; a suppression without one is
itself an error, and a suppression that matches no finding is reported
as a warning so stale waivers cannot accumulate silently (hygiene
checks run only when the full rule set is active, because a subset run
legitimately leaves other rules' suppressions unused).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.findings import Finding, Severity

__all__ = [
    "Comment",
    "Suppression",
    "SourceFile",
    "Project",
    "Rule",
    "AnalysisReport",
    "run_analysis",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([^\]]+)\]\s*(?:--\s*(\S.*?))?\s*$"
)
_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w|]*)")
_HOLDS_RE = re.compile(r"#\s*repro:\s*holds\[([A-Za-z_][\w|]*)\]")


@dataclass
class Comment:
    """One ``#`` comment token: position plus raw text."""

    line: int
    col: int
    text: str
    own_line: bool  # nothing but whitespace precedes it


@dataclass
class Suppression:
    """A parsed ``# repro: allow[rule,...] -- reason`` marker.

    ``line`` is the *effective* line: the comment's own line when it
    trails code, or the following line when the comment stands alone.
    """

    line: int
    comment_line: int
    rules: tuple[str, ...]
    reason: Optional[str]
    used: bool = False

    def matches(self, rule: str) -> bool:
        """Whether this waiver covers the given rule (or is ``*``)."""
        return "*" in self.rules or rule in self.rules


class SourceFile:
    """One parsed python file: text, AST, comments, annotations."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            self.syntax_error = exc
        self.comments = _scan_comments(text)
        self.suppressions = [
            s for s in map(_parse_suppression, self.comments) if s
        ]
        self._by_line: dict[int, list[Suppression]] = {}
        for sup in self.suppressions:
            self._by_line.setdefault(sup.line, []).append(sup)
        # `# guarded-by: spec` and `# repro: holds[spec]` annotations,
        # keyed by the line they sit on (used by lock-discipline).
        self.guards: dict[int, str] = {}
        self.holds: dict[int, str] = {}
        for comment in self.comments:
            m = _GUARDED_RE.search(comment.text)
            if m:
                self.guards[comment.line] = m.group(1)
            m = _HOLDS_RE.search(comment.text)
            if m:
                self.holds[comment.line] = m.group(1)

    def suppressions_at(self, line: int) -> list[Suppression]:
        """Suppressions whose coverage includes the given line."""
        return self._by_line.get(line, [])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SourceFile({self.rel!r})"


def _scan_comments(text: str) -> list[Comment]:
    """Extract comment tokens; tolerant of tokenize errors."""
    comments: list[Comment] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line_text = tok.line[: tok.start[1]]
            comments.append(
                Comment(
                    line=tok.start[0],
                    col=tok.start[1],
                    text=tok.string,
                    own_line=not line_text.strip(),
                )
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def _parse_suppression(comment: Comment) -> Optional[Suppression]:
    m = _SUPPRESS_RE.search(comment.text)
    if not m:
        return None
    rules = tuple(
        r.strip() for r in m.group(1).split(",") if r.strip()
    )
    reason = m.group(2)
    effective = comment.line + 1 if comment.own_line else comment.line
    return Suppression(
        line=effective,
        comment_line=comment.line,
        rules=rules,
        reason=reason.strip() if reason else None,
    )


class Project:
    """A root directory plus the source files selected for analysis."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = Path(root)
        self.files = list(files)
        self.by_rel = {f.rel: f for f in self.files}

    @classmethod
    def load(cls, root: Path, paths: Iterable[Path]) -> "Project":
        root = Path(root).resolve()
        files = []
        for path in sorted(set(Path(p).resolve() for p in paths)):
            try:
                rel = path.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            try:
                text = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            files.append(SourceFile(path, rel, text))
        return cls(root, files)

    def find_suffix(self, suffix: str) -> Optional[SourceFile]:
        """The unique file whose relative path ends with ``suffix``."""
        hits = [f for f in self.files if f.rel.endswith(suffix)]
        return hits[0] if len(hits) == 1 else None


class Rule:
    """Base class for checkers.

    Override :meth:`check_file` for per-file rules or :meth:`check`
    for whole-project rules.  ``name`` is the identifier used by
    ``--rules`` and ``allow[...]`` suppressions.
    """

    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        """Yield findings for the whole project (default: per file)."""
        for src in project.files:
            if src.tree is None:
                continue
            yield from self.check_file(src)

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        """Per-file hook for single-file rules; default yields nothing."""
        return ()


@dataclass
class AnalysisReport:
    """Everything `repro analyze` needs to render and gate."""

    findings: list[Finding]
    suppressed: int
    files: int
    rules: list[str]
    baselined: int = 0

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == Severity.ERROR)

    @property
    def warnings(self) -> int:
        return sum(
            1 for f in self.findings if f.severity == Severity.WARNING
        )

    def to_dict(self) -> dict:
        """The stable JSON schema emitted by ``--format json``."""
        return {
            "version": 1,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files": self.files,
                "errors": self.errors,
                "warnings": self.warnings,
                "suppressed": self.suppressed,
                "baselined": self.baselined,
            },
        }


def run_analysis(
    project: Project,
    rules: Sequence[Rule],
    *,
    check_suppression_hygiene: bool = True,
) -> AnalysisReport:
    """Run *rules* over *project* and fold in suppressions.

    Suppression hygiene (missing reasons, waivers that match nothing)
    is only checked when the caller says the full rule set ran —
    ``--rules`` subset runs would otherwise report false "unused"
    warnings for the rules that were skipped.
    """
    raw: list[Finding] = []
    for src in project.files:
        if src.syntax_error is not None:
            err = src.syntax_error
            raw.append(
                Finding(
                    path=src.rel,
                    line=err.lineno or 1,
                    col=(err.offset or 1) - 1,
                    rule="syntax-error",
                    message=f"file does not parse: {err.msg}",
                )
            )
    for rule in rules:
        raw.extend(rule.check(project))

    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        src = project.by_rel.get(finding.path)
        matched = None
        if src is not None:
            for sup in src.suppressions_at(finding.line):
                if sup.matches(finding.rule):
                    matched = sup
                    break
        if matched is not None:
            matched.used = True
            suppressed += 1
        else:
            kept.append(finding)

    if check_suppression_hygiene:
        for src in project.files:
            for sup in src.suppressions:
                if sup.reason is None:
                    kept.append(
                        Finding(
                            path=src.rel,
                            line=sup.comment_line,
                            col=0,
                            rule="suppression-hygiene",
                            message=(
                                "suppression is missing its"
                                " '-- reason' rationale"
                            ),
                        )
                    )
                elif not sup.used:
                    kept.append(
                        Finding(
                            path=src.rel,
                            line=sup.comment_line,
                            col=0,
                            rule="suppression-hygiene",
                            severity=Severity.WARNING,
                            message=(
                                "suppression matches no finding"
                                f" (allow[{','.join(sup.rules)}])"
                            ),
                        )
                    )

    kept.sort()
    return AnalysisReport(
        findings=kept,
        suppressed=suppressed,
        files=len(project.files),
        rules=[r.name for r in rules],
    )
