"""Knowledge management: delayed incumbent broadcast (§4.3).

YewPar shares bounds through HPX's PGAS: a strengthened incumbent is
broadcast to every locality, each of which keeps a possibly-stale local
copy.  Staleness is harmless for correctness — a stale bound only
*misses* pruning opportunities — which is exactly why the paper can
tolerate communication delays.

:class:`KnowledgeManager` models this: each locality has a local
incumbent view; a worker that strengthens its locality's view publishes
it, and the update arrives at other localities after the (remote)
broadcast latency.  Arrivals merge with ``combine`` (monoid max), so
out-of-order deliveries cannot regress a view.

Enumeration searches never publish: their accumulators stay worker-local
and are folded once at the end (commutativity makes this sound).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.searchtypes import SearchType
from repro.runtime.costmodel import CostModel
from repro.runtime.sim import Simulator
from repro.runtime.topology import Topology

__all__ = ["KnowledgeManager"]


class KnowledgeManager:
    """Per-locality incumbent views with simulated broadcast delay."""

    def __init__(
        self,
        stype: SearchType,
        initial: Any,
        topology: Topology,
        cost: CostModel,
        sim: Simulator,
        on_goal: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.stype = stype
        self.topology = topology
        self.cost = cost
        self.sim = sim
        self.on_goal = on_goal
        self._views: list[Any] = [initial for _ in range(topology.localities)]
        self._global = initial
        self.broadcasts = 0

    def view(self, locality: int) -> Any:
        """The incumbent as locality ``locality`` currently sees it."""
        return self._views[locality]

    @property
    def global_best(self) -> Any:
        """The true best knowledge published anywhere (authoritative result)."""
        return self._global

    def publish(self, locality: int, knowledge: Any) -> None:
        """A worker on ``locality`` strengthened the incumbent.

        The publishing locality's view updates after the local latency;
        other localities after the remote latency.  The global best
        updates immediately (it exists only for result extraction and
        goal detection, not for pruning decisions).
        """
        self._global = self.stype.combine(self._global, knowledge)
        self.broadcasts += 1
        if self.on_goal is not None and self.stype.is_goal(self._global):
            self.on_goal(self._global)
        for loc in range(self.topology.localities):
            latency = self.cost.broadcast_latency(loc == locality)
            self.sim.at(latency, self._make_arrival(loc, knowledge))

    def _make_arrival(self, locality: int, knowledge: Any) -> Callable[[], None]:
        def arrive() -> None:
            self._views[locality] = self.stype.combine(self._views[locality], knowledge)

        return arrive
