"""Tests for independent result certification (validate_result)."""

import pytest

from repro import search
from repro.core.results import SearchResult, validate_result
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search


class TestRealWitnesses:
    def test_maxclique_witness_certified(self):
        from repro.apps.maxclique import maxclique_spec
        from repro.instances.graphs import uniform_graph

        spec = maxclique_spec(uniform_graph(25, 0.5, seed=3))
        res = sequential_search(spec, Optimisation())
        assert validate_result(spec, res)

    def test_tsp_witness_certified(self):
        from repro.apps.tsp import tsp_spec
        from repro.instances.library import random_tsp

        spec = tsp_spec(random_tsp(8, seed=4))
        res = sequential_search(spec, Optimisation())
        assert validate_result(spec, res)

    def test_knapsack_witness_certified(self):
        from repro.apps.knapsack import knapsack_spec
        from repro.instances.library import random_knapsack

        spec = knapsack_spec(random_knapsack(12, seed=5))
        res = sequential_search(spec, Optimisation())
        assert validate_result(spec, res)

    def test_sip_witness_certified(self):
        from repro.apps.sip import sip_spec
        from repro.instances.library import random_sip

        inst = random_sip(6, 25, 0.3, seed=6, planted=True)
        spec = sip_spec(inst)
        res = sequential_search(spec, Decision(target=6))
        assert res.found
        assert validate_result(spec, res)

    def test_parallel_witness_certified(self):
        from repro import SkeletonParams
        from repro.apps.maxclique import maxclique_spec
        from repro.instances.graphs import uniform_graph

        spec = maxclique_spec(uniform_graph(25, 0.5, seed=3))
        res = search(spec, skeleton="stacksteal", search_type="optimisation",
                     params=SkeletonParams(localities=1, workers_per_locality=4))
        assert validate_result(spec, res)

    def test_enumeration_trivially_valid(self):
        from repro.apps.uts import UTSInstance, uts_spec

        spec = uts_spec(UTSInstance(b0=2.5, max_depth=5, seed=7))
        res = sequential_search(spec, Enumeration())
        assert validate_result(spec, res)


class TestForgedResults:
    def _spec(self):
        from repro.apps.maxclique import maxclique_spec
        from repro.instances.graphs import uniform_graph

        return maxclique_spec(uniform_graph(20, 0.5, seed=8))

    def test_inflated_value_rejected(self):
        spec = self._spec()
        res = sequential_search(spec, Optimisation())
        forged = SearchResult(kind="optimisation", value=res.value + 1, node=res.node)
        assert not validate_result(spec, forged)

    def test_non_clique_witness_rejected(self):
        from repro.apps.maxclique import CliqueNode

        spec = self._spec()
        # claim the first three vertices are a clique (almost surely not)
        fake = CliqueNode(0b111, 3, 0, 0)
        if spec.space.subgraph_is_clique(0b111):
            pytest.skip("vertices 0-2 happen to be a clique in this seed")
        forged = SearchResult(kind="optimisation", value=3, node=fake)
        assert not validate_result(spec, forged)

    def test_missing_witness_raises(self):
        spec = self._spec()
        forged = SearchResult(kind="optimisation", value=3, node=None)
        with pytest.raises(ValueError):
            validate_result(spec, forged)

    def test_decision_witness_below_value_rejected(self):
        spec = self._spec()
        res = sequential_search(spec, Decision(target=3))
        assert res.found
        forged = SearchResult(kind="decision", value=res.value + 2, node=res.node)
        assert not validate_result(spec, forged)
