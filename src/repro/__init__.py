"""repro — a Python reproduction of *YewPar: Skeletons for Exact
Combinatorial Search* (Archibald, Maier, Stewart, Trinder; PPoPP 2020).

Quick start::

    from repro import search
    from repro.apps.maxclique import maxclique_spec
    from repro.instances import load_instance

    graph = load_instance("uniform-60-0.5")
    result = search(maxclique_spec(graph), skeleton="stacksteal",
                    search_type="optimisation")
    print(result.value, result.node)

Package map:

- :mod:`repro.core` — Lazy Node Generators, search types, the 12 skeletons.
- :mod:`repro.runtime` — the simulated distributed cluster (HPX substitute).
- :mod:`repro.semantics` — the executable formal model (Section 3).
- :mod:`repro.apps` — the 7 search applications of the evaluation.
- :mod:`repro.instances` — seeded instance generators + DIMACS parsing.
"""

from typing import Any, Optional

from repro.core import (
    ALL_SKELETONS,
    validate_result,
    Decision,
    Enumeration,
    Incumbent,
    IterNodeGenerator,
    ListNodeGenerator,
    NodeGenerator,
    Optimisation,
    SearchMetrics,
    SearchResult,
    SearchSpec,
    SearchType,
    Skeleton,
    SkeletonParams,
    make_search_type,
    make_skeleton,
    sequential_search,
)

from repro.tuning import TuningReport, tune

__version__ = "1.0.0"

__all__ = [
    "search",
    "tune",
    "TuningReport",
    "Skeleton",
    "make_skeleton",
    "ALL_SKELETONS",
    "SearchSpec",
    "SearchResult",
    "SearchMetrics",
    "SearchType",
    "Enumeration",
    "Optimisation",
    "Decision",
    "Incumbent",
    "NodeGenerator",
    "IterNodeGenerator",
    "ListNodeGenerator",
    "SkeletonParams",
    "make_search_type",
    "sequential_search",
    "validate_result",
    "__version__",
]


def search(
    spec: SearchSpec,
    *,
    skeleton: str = "sequential",
    search_type: str = "optimisation",
    params: Optional[SkeletonParams] = None,
    **type_kwargs: Any,
) -> SearchResult:
    """One-call entry point: compose a skeleton and run it on ``spec``.

    ``skeleton`` is a coordination name (``sequential``,
    ``depthbounded``, ``stacksteal``, ``budget``); ``search_type`` is
    ``enumeration``, ``optimisation`` or ``decision`` (the latter takes
    ``target=...`` through ``type_kwargs``).
    """
    return make_skeleton(skeleton, search_type).search(spec, params, **type_kwargs)
