"""The asyncio network front door over the sharded service layer.

:class:`Gateway` binds an asyncio HTTP server (see
:mod:`repro.gateway.http`) to a :class:`~repro.gateway.shard.ShardRouter`
and exposes the service as five endpoints:

- ``POST /jobs`` — submit a :class:`~repro.service.jobs.JobSpec` (the
  same JSON ``repro submit`` writes).  Admission control maps straight
  onto the bounded submitter-fair queue: a full queue (or quota'd
  submitter) answers **429 with Retry-After** instead of blocking the
  connection — backpressure the client can see and pace against.
- ``GET /jobs/{id}`` — the job record.
- ``GET /jobs/{id}/events`` — chunked JSONL status stream, replaying
  history then following live: ``queued → leased → incumbent… →
  done/failed/cancelled/timeout`` (plus ``ping`` keep-alives).
- ``GET /jobs/{id}/result`` — the full :class:`SearchResult` once the
  job is ``DONE`` (202 while live, 409 for other terminal states).
- ``GET /metrics`` — Prometheus text exposition of every shard's
  service metrics and coordinator load stats.

Shutdown is a drain, not a guillotine: :meth:`Gateway.stop` flips the
gateway to *draining* (new submissions get 503), lets in-flight jobs
finish (their status streams complete normally), cancels still-queued
jobs so their streams terminate too, and only then closes the listener.
:class:`GatewayHandle` wraps the whole thing in a dedicated loop thread
for synchronous callers (the CLI, tests, benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from typing import Optional

from repro.gateway import http as H
from repro.gateway.prometheus import render_service
from repro.gateway.shard import ShardRouter
from repro.service.jobs import Job, JobSpec, JobState

__all__ = ["Gateway", "GatewayHandle", "job_dict"]


def job_dict(job: Job, shard: int) -> dict:
    """The JSON record of one job, as served by ``GET /jobs/{id}``."""
    out = {
        "job": job.id,
        "shard": shard,
        "key": job.key,
        "state": job.state.value,
        "from_cache": job.from_cache,
        "attempts": job.attempts,
    }
    if job.coalesced_into:
        out["coalesced_into"] = job.coalesced_into
    if job.error:
        out["error"] = job.error
    if job.result is not None:
        out["value"] = job.result.value
    lat = job.latency()
    if lat is not None:
        out["latency"] = lat
    return out


class Gateway:
    """The asyncio HTTP front door (all methods run on one loop).

    Args:
        router: the shard router to serve (started by :meth:`start`).
        host / port: listen address (port 0 picks a free port).
        retry_after: the ``Retry-After`` hint (seconds) on 429/503.
        max_body: request body bound in bytes.
        stream_ping: silent-gap seconds before a stream emits a
            keep-alive ``ping`` event (also how fast dead client
            sockets are noticed).
    """

    def __init__(
        self,
        router: ShardRouter,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        retry_after: float = 1.0,
        max_body: int = H.DEFAULT_MAX_BODY,
        stream_ping: float = 15.0,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self.retry_after = retry_after
        self.max_body = max_body
        self.stream_ping = stream_ping
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._started_at: Optional[float] = None
        self._requests: dict = {}  # (method, status) -> count
        self._streams_active = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Start the shard workers and bind the listener."""
        self.router.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        return self.host, self.port

    async def stop(self) -> None:
        """Graceful drain: 503 new submissions, let in-flight jobs
        finish, cancel queued ones, then close the listener."""
        self.draining = True
        loop = asyncio.get_running_loop()
        # router.close() blocks on worker threads finishing their
        # current jobs — run it off-loop so live status streams keep
        # flowing and /metrics stays scrapeable during the drain.
        await loop.run_in_executor(None, self.router.close)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- accounting ----------------------------------------------------------

    def _count(self, method: str, status: int) -> None:
        key = (method, status)
        self._requests[key] = self._requests.get(key, 0) + 1

    def gateway_stats(self) -> dict:
        """The gateway-level gauges rendered into ``/metrics``."""
        return {
            "shards": self.router.n_shards,
            "draining": int(self.draining),
            "streams_active": self._streams_active,
            "uptime_seconds": (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else None
            ),
        }

    # -- request handling ----------------------------------------------------

    _ROUTES = [
        ("POST", re.compile(r"^/jobs$"), "_post_job"),
        ("GET", re.compile(r"^/jobs/([^/]+)$"), "_get_job"),
        ("GET", re.compile(r"^/jobs/([^/]+)/events$"), "_stream_events"),
        ("GET", re.compile(r"^/jobs/([^/]+)/result$"), "_get_result"),
        ("GET", re.compile(r"^/metrics$"), "_get_metrics"),
        ("GET", re.compile(r"^/healthz$"), "_get_health"),
    ]

    async def _handle_connection(self, reader, writer) -> None:
        """Serve one request on one connection, then close it."""
        method = "?"
        try:
            try:
                request = await H.read_request(reader, max_body=self.max_body)
                if request is None:
                    return
                method = request.method
                await self._dispatch(request, writer)
            except H.HttpError as exc:
                await self._respond(
                    writer, method, exc.status, {"error": exc.message}
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away; nothing to say to nobody
            except Exception as exc:  # a handler bug must not kill the loop
                try:
                    await self._respond(
                        writer, method, 500,
                        {"error": f"{type(exc).__name__}: {exc}"},
                    )
                except ConnectionError:
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: H.Request, writer) -> None:
        for method, pattern, handler in self._ROUTES:
            match = pattern.match(request.path)
            if match is None:
                continue
            if request.method != method:
                raise H.HttpError(405, f"{request.path} is {method}-only")
            await getattr(self, handler)(request, writer, *match.groups())
            return
        raise H.HttpError(404, f"no such endpoint: {request.path}")

    async def _respond(
        self, writer, method: str, status: int, body, **kwargs
    ) -> None:
        self._count(method, status)
        writer.write(H.response_bytes(status, body, **kwargs))
        await writer.drain()

    # -- endpoints -----------------------------------------------------------

    async def _post_job(self, request: H.Request, writer) -> None:
        """``POST /jobs``: validate, route by hash, admit, report."""
        if self.draining:
            await self._respond(
                writer, "POST", 503, {"error": "gateway is draining"},
                extra_headers={"Retry-After": f"{self.retry_after:g}"},
            )
            return
        data = request.json()
        try:
            spec = JobSpec.from_dict(data)
        except (ValueError, TypeError, KeyError) as exc:
            raise H.HttpError(400, f"invalid job spec: {exc}") from None
        loop = asyncio.get_running_loop()
        try:
            shard, job = await loop.run_in_executor(
                None, self.router.submit, spec
            )
        except ValueError as exc:
            raise H.HttpError(400, str(exc)) from None
        body = job_dict(job, shard)
        if job.state is JobState.FAILED and (job.error or "").startswith(
            "rejected:"
        ):
            await self._respond(
                writer, "POST", 429, body,
                extra_headers={"Retry-After": f"{self.retry_after:g}"},
            )
            return
        status = 200 if job.terminal else 201
        await self._respond(writer, "POST", status, body)

    async def _get_job(self, request: H.Request, writer, job_id: str) -> None:
        """``GET /jobs/{id}``: the job record."""
        shard, job = self._find(job_id)
        await self._respond(writer, "GET", 200, job_dict(job, shard))

    async def _get_result(self, request: H.Request, writer, job_id: str) -> None:
        """``GET /jobs/{id}/result``: the full result of a DONE job
        (202 while live, 409 for failed/cancelled/timeout)."""
        shard, job = self._find(job_id)
        body = job_dict(job, shard)
        if job.state is JobState.DONE and job.result is not None:
            body["result"] = job.result.to_dict()
            await self._respond(writer, "GET", 200, body)
        elif not job.terminal:
            await self._respond(writer, "GET", 202, body)
        else:
            await self._respond(writer, "GET", 409, body)

    async def _stream_events(self, request: H.Request, writer, job_id: str) -> None:
        """``GET /jobs/{id}/events``: chunked JSONL status stream."""
        self._find(job_id)  # 404 before committing to a stream
        self._count("GET", 200)
        self._streams_active += 1
        try:
            await H.start_chunked(writer)
            async for event in self.router.broker.subscribe(
                job_id, poll_timeout=self.stream_ping
            ):
                await H.write_chunk(
                    writer, json.dumps(event, sort_keys=True) + "\n"
                )
            await H.end_chunked(writer)
        except (ConnectionError, OSError):
            pass  # client hung up mid-stream; subscription unwinds
        finally:
            self._streams_active -= 1

    async def _get_metrics(self, request: H.Request, writer) -> None:
        """``GET /metrics``: Prometheus text exposition, scrapeable
        mid-run (snapshots are consistent, see ServiceMetrics)."""
        loop = asyncio.get_running_loop()
        snapshots = await loop.run_in_executor(None, self.router.snapshots)
        load_stats = await loop.run_in_executor(None, self.router.load_stats)
        text = render_service(
            snapshots,
            load_stats=load_stats,
            gateway=self.gateway_stats(),
            requests=dict(self._requests),
        )
        await self._respond(
            writer, "GET", 200, text,
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _get_health(self, request: H.Request, writer) -> None:
        """``GET /healthz``: liveness + drain state."""
        await self._respond(
            writer, "GET", 200,
            {
                "status": "draining" if self.draining else "ok",
                "shards": self.router.n_shards,
            },
        )

    def _find(self, job_id: str) -> tuple[int, Job]:
        try:
            return self.router.job(job_id)
        except KeyError:
            raise H.HttpError(404, f"no such job: {job_id}") from None


class GatewayHandle:
    """A gateway running on a dedicated loop thread, for sync callers.

    The CLI, tests and benchmarks are synchronous; this owns the event
    loop thread the same way :class:`~repro.cluster.coordinator.ClusterHandle`
    does for the coordinator.
    """

    def __init__(self, gateway: Gateway) -> None:
        self.gateway = gateway
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the gateway; returns (host, port)."""
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

        self._thread = threading.Thread(target=_run, name="gateway", daemon=True)
        self._thread.start()
        started.wait()
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.start(), self._loop
        )
        return future.result(timeout=30.0)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port)."""
        return self.gateway.host, self.gateway.port

    @property
    def url(self) -> str:
        """The base URL clients should talk to."""
        host, port = self.address
        return f"http://{host}:{port}"

    def drain(self, *, timeout: float = 120.0) -> None:
        """Graceful shutdown: finish in-flight jobs, then stop serving.
        Idempotent."""
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.gateway.stop(), self._loop
        )
        future.result(timeout=timeout)

    def close(self, *, timeout: float = 120.0) -> None:
        """Drain (if not already) and stop the loop thread."""
        if self._loop is None:
            return
        try:
            self.drain(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop = None
            self._thread = None
