"""Ablation: Stack-Stealing chunked vs single-node steals (§4.2).

Listing 3 steals "one node, or all at the lowest depth if the chunked
flag is set".  Chunked steals move more work per message (fewer steal
round trips) at the cost of coarser load balance; single-node steals
track the search frontier more precisely but pay a message per subtree.

Expected shape: chunked stealing needs fewer steal operations per node
expanded; which variant wins on makespan is workload-dependent (deep
narrow trees favour single steals, wide ones favour chunks) — the bench
reports both so the trade-off is visible.
"""

from repro.core.params import SkeletonParams

from ._harness import fmt_row, run_parallel, sequential_baseline, write_result

INSTANCES = ["sanr100-1", "uts-geo-med", "knap-sim-30", "ns-genus-15"]
BASE = SkeletonParams(localities=4, workers_per_locality=15)


def test_ablation_chunked_steals(benchmark):
    results = {}

    def run_all():
        for name in INSTANCES:
            for chunked in (True, False):
                results[(name, chunked)] = run_parallel(
                    name, "stacksteal", BASE.with_(chunked=chunked)
                )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = [14, 9, 13, 13, 11, 11]
    lines = [
        f"Ablation: Stack-Stealing steal granularity ({BASE.workers} workers)",
        fmt_row(["instance", "mode", "vtime", "speedup", "steals", "failed"], widths),
    ]
    for name in INSTANCES:
        seq_time, _ = sequential_baseline(name)
        for chunked in (True, False):
            res = results[(name, chunked)]
            lines.append(
                fmt_row(
                    [
                        name,
                        "chunked" if chunked else "single",
                        f"{res.virtual_time:.0f}",
                        f"{seq_time / res.virtual_time:.1f}x",
                        res.metrics.steals,
                        res.metrics.failed_steals,
                    ],
                    widths,
                )
            )
    lines.append("chunked moves whole levels per message; single tracks the frontier")
    write_result("ablation_chunking", lines)

    for name in INSTANCES:
        chunked = results[(name, True)]
        single = results[(name, False)]
        # Both modes must complete the search with real parallelism.
        assert chunked.virtual_time > 0 and single.virtual_time > 0
