"""Gateway front-door benchmark: HTTP submit→result throughput and latency.

Not a paper table: this measures the repository's own network layer
(``repro.gateway``, docs/gateway.md) end to end over real sockets — 8
client threads pushing MaxClique jobs through ``POST /jobs`` and reading
them back via ``GET /jobs/{id}/result`` — at 1, 2 and 4 shards, for two
traffic mixes:

- **uncached**: every job is distinct (the budget parameter varies, so
  every content-addressed key differs).  Each submission runs a real
  bounded search; the gateway adds routing, admission and two HTTP round
  trips on top.
- **cached**: one spec is warmed once, then resubmitted repeatedly.
  Every submission is answered from the shard's result cache without
  touching a backend, so this is the ceiling the HTTP + routing layer
  itself imposes.

Per (mix, shards): wall-clock throughput and p50/p95 submit→result
latency, plus the summed ``executed`` counter as the dedup witness (the
cached mix must execute exactly one search no matter how many jobs flow).

Results go to ``results/gateway.txt`` (human table) and
``results/gateway.json`` (machine-readable).

Run directly: ``PYTHONPATH=src python benchmarks/bench_gateway.py``
"""

from __future__ import annotations

import json
import platform
import threading
import time

from _harness import RESULTS_DIR, SCALE, write_result

from repro.gateway import Gateway, GatewayClient, GatewayHandle, ShardRouter

CLIENTS = 8
UNCACHED_JOBS = max(CLIENTS, int(round(24 * SCALE)))
CACHED_JOBS = max(16, int(round(96 * SCALE)))
SHARD_COUNTS = (1, 2, 4)


def make_spec(i: int) -> dict:
    """A small real search; the budget parameter makes keys distinct."""
    return {
        "app": "maxclique",
        "instance": "brock90-1",
        "skeleton": "budget",
        "params": {"budget": 400 + i},
        "timeout": 120.0,
    }


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))]


def drive(url: str, specs: list[dict]) -> list[float]:
    """Push specs through CLIENTS threads; return submit→result latencies."""
    lock = threading.Lock()
    pending = list(enumerate(specs))
    latencies: list[float] = []
    failures: list[str] = []

    def worker() -> None:
        client = GatewayClient(url)
        while True:
            with lock:
                if not pending:
                    return
                index, spec = pending.pop()
            spec = dict(spec, submitter=f"bench-{index % CLIENTS}")
            t0 = time.perf_counter()
            record = client.submit_paced(spec, attempts=10_000)
            status, body = client.result(record["job"])
            while status == 202:
                time.sleep(0.002)
                status, body = client.result(record["job"])
            elapsed = time.perf_counter() - t0
            with lock:
                if status != 200:
                    failures.append(f"job {record['job']}: HTTP {status}")
                latencies.append(elapsed)

    threads = [threading.Thread(target=worker) for _ in range(CLIENTS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if failures:
        raise AssertionError("; ".join(failures))
    return latencies


def run_mix(n_shards: int, specs: list[dict], *, warm: dict | None = None):
    """One gateway lifetime; returns (wall, latencies, executed)."""
    handle = GatewayHandle(
        Gateway(ShardRouter(n_shards, queue_depth=4096))
    )
    handle.start()
    try:
        if warm is not None:
            drive(handle.url, [warm])
        t0 = time.perf_counter()
        latencies = drive(handle.url, specs)
        wall = time.perf_counter() - t0
        snaps = handle.gateway.router.snapshots()
        executed = sum(s.executed for s in snaps.values())
        return wall, latencies, executed
    finally:
        handle.close()


def main() -> None:
    rows = [
        f"{'mix':<9} {'shards':>6} {'jobs':>5} {'wall s':>7} "
        f"{'jobs/s':>7} {'p50 ms':>7} {'p95 ms':>7} {'executed':>8}"
    ]
    records = []
    for mix, jobs, warm in (
        ("uncached", [make_spec(i) for i in range(UNCACHED_JOBS)], None),
        ("cached", [make_spec(0)] * CACHED_JOBS, make_spec(0)),
    ):
        for n_shards in SHARD_COUNTS:
            wall, latencies, executed = run_mix(n_shards, jobs, warm=warm)
            if warm is not None:
                assert executed == 1, (
                    f"cached mix executed {executed} searches; dedup broke")
            p50 = percentile(latencies, 0.50) * 1e3
            p95 = percentile(latencies, 0.95) * 1e3
            rate = len(latencies) / wall
            rows.append(
                f"{mix:<9} {n_shards:>6} {len(latencies):>5} {wall:>7.2f} "
                f"{rate:>7.1f} {p50:>7.1f} {p95:>7.1f} {executed:>8}"
            )
            records.append({
                "mix": mix, "shards": n_shards, "jobs": len(latencies),
                "wall_s": round(wall, 3),
                "jobs_per_s": round(rate, 1),
                "p50_ms": round(p50, 2), "p95_ms": round(p95, 2),
                "executed": executed, "clients": CLIENTS,
            })

    header = [
        "gateway front-door benchmark (HTTP submit -> result, "
        f"{CLIENTS} client threads)",
        f"host: {platform.platform()}  python: {platform.python_version()}",
        "uncached: distinct keys, real budget-bounded searches;",
        "cached: one warmed spec resubmitted (executed must stay 1).",
        "",
    ]
    write_result("gateway", header + rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "gateway.json").write_text(
        json.dumps(records, indent=2) + "\n")


if __name__ == "__main__":
    main()
