"""The nondeterministic multi-threaded abstract machine (Sections 3.3–3.6).

A :class:`Configuration` is ``<sigma, Tasks, theta_1 .. theta_n>``:
global knowledge, a queue of pending tasks (subtrees), and ``n`` thread
states.  :class:`Machine` applies the reduction rules of Figure 2 under a
caller-controlled (seeded) interleaving, so property tests can explore
many schedules and check the correctness theorems:

- Theorem 3.1: enumeration runs end with the sum of objective values.
- Theorem 3.2: optimisation/decision runs end with an optimal incumbent.
- Theorem 3.3: every run terminates.

Per the paper, the overall relation is
``-> = (->T o ->N) | ->P | ->S`` per thread: a traversal step is always
immediately followed by a node-processing step; prune and spawn steps
stand alone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.semantics.monoids import CommutativeMonoid
from repro.semantics.tree import OrderedTree, Subtree
from repro.semantics.words import Word
from repro.util.rng import SplitMix64

__all__ = [
    "SearchProblem",
    "ThreadState",
    "Configuration",
    "Machine",
    "ENUMERATION",
    "OPTIMISATION",
    "DECISION",
]

ENUMERATION = "enumeration"
OPTIMISATION = "optimisation"
DECISION = "decision"


@dataclass(frozen=True)
class SearchProblem:
    """A search type instance: monoid, objective and (optional) pruning.

    ``prunes(u, v)`` implements the abstract relation ``u |> v`` ("the
    incumbent u justifies pruning v"); it must satisfy the admissibility
    conditions of Section 3.5, which tests verify for the concrete
    relations used.
    """

    kind: str
    monoid: CommutativeMonoid
    objective: Callable[[Word], object]
    prunes: Optional[Callable[[Word, Word], bool]] = None

    def __post_init__(self) -> None:
        if self.kind not in (ENUMERATION, OPTIMISATION, DECISION):
            raise ValueError(f"unknown search kind {self.kind!r}")
        if self.kind == ENUMERATION and self.prunes is not None:
            raise ValueError("enumeration searches do not prune")
        if self.kind == DECISION and self.monoid.greatest() is None:
            raise ValueError("decision searches need a bounded monoid")


@dataclass(frozen=True)
class ThreadState:
    """An active thread ``<S, v>^k``: task, current node, backtrack count."""

    task: Subtree
    node: Word
    backtracks: int = 0


@dataclass
class Configuration:
    """``<sigma, Tasks, theta_1, ..., theta_n>``.

    ``knowledge`` is a monoid accumulator for enumeration searches and an
    incumbent node for optimisation/decision searches.  ``threads[i] is
    None`` encodes the idle thread state.
    """

    knowledge: object
    tasks: deque = field(default_factory=deque)
    threads: list = field(default_factory=list)

    @classmethod
    def initial(
        cls, problem: SearchProblem, tree: OrderedTree, n_threads: int
    ) -> "Configuration":
        """``<sigma_0, [S_0], bot, ..., bot>`` per Section 3.3."""
        if n_threads < 1:
            raise ValueError("need at least one thread")
        if problem.kind == ENUMERATION:
            knowledge = problem.monoid.zero()
        else:
            knowledge = ()  # the root node is the initial incumbent
        return cls(
            knowledge=knowledge,
            tasks=deque([tree.whole()]),
            threads=[None] * n_threads,
        )

    def is_final(self) -> bool:
        """True for ``<sigma, [], bot...bot>`` — the search is complete."""
        return not self.tasks and all(t is None for t in self.threads)

    def live_nodes(self) -> int:
        """Total nodes in tasks plus unexplored nodes in threads.

        This is (the sum of) the termination measure of Theorem 3.3:
        every reduction strictly decreases the multiset it summarises.
        """
        total = sum(len(t) for t in self.tasks)
        for th in self.threads:
            if th is not None:
                total += th.task.unexplored_after(th.node)
        return total


class Machine:
    """Drives reductions over configurations.

    ``spawn_policy`` selects which derived spawn rule the machine uses
    (mirroring which coordination a skeleton implements):

    - ``None`` — no spawning (Sequential)
    - ``"any"`` — the generic (spawn) rule with a random unexplored u
    - ``"depth"`` — (spawn-depth) with parameter ``d_cutoff``
    - ``"budget"`` — (spawn-budget) with parameter ``k_budget``
    - ``"stack"`` — (spawn-stack), fires only on an empty task queue
    """

    def __init__(
        self,
        problem: SearchProblem,
        *,
        spawn_policy: Optional[str] = "any",
        d_cutoff: int = 0,
        k_budget: int = 0,
        seed: int = 0,
    ) -> None:
        if spawn_policy not in (None, "any", "depth", "budget", "stack"):
            raise ValueError(f"unknown spawn policy {spawn_policy!r}")
        self.problem = problem
        self.spawn_policy = spawn_policy
        self.d_cutoff = d_cutoff
        self.k_budget = k_budget
        self.rng = SplitMix64(seed)
        self.trace: list[str] = []

    # -- rule implementations ---------------------------------------------
    # Each returns the successor configuration, or None if not applicable.

    def _schedule(self, cfg: Configuration, i: int) -> Optional[Configuration]:
        if cfg.threads[i] is not None or not cfg.tasks:
            return None
        tasks = deque(cfg.tasks)
        task = tasks.popleft()
        threads = list(cfg.threads)
        threads[i] = ThreadState(task, task.root, 0)
        return Configuration(cfg.knowledge, tasks, threads)

    def _traverse(self, cfg: Configuration, i: int) -> Optional[Configuration]:
        """(expand), (backtrack) or (terminate) on an active thread."""
        th = cfg.threads[i]
        if th is None:
            return None
        nxt = th.task.next(th.node)
        threads = list(cfg.threads)
        if nxt is None:  # (terminate)
            threads[i] = None
        elif len(nxt) > len(th.node) and nxt[: len(th.node)] == th.node:  # (expand)
            threads[i] = ThreadState(th.task, nxt, th.backtracks)
        else:  # (backtrack)
            threads[i] = ThreadState(th.task, nxt, th.backtracks + 1)
        return Configuration(cfg.knowledge, deque(cfg.tasks), threads)

    def _process(self, cfg: Configuration, i: int) -> Configuration:
        """(accumulate), (strengthen)/(skip), or (noop)."""
        th = cfg.threads[i]
        if th is None:  # (noop)
            return cfg
        h, monoid = self.problem.objective, self.problem.monoid
        if self.problem.kind == ENUMERATION:  # (accumulate)
            knowledge = monoid.plus(cfg.knowledge, h(th.node))
        else:
            incumbent = cfg.knowledge
            if not monoid.leq(h(th.node), h(incumbent)):  # (strengthen)
                knowledge = th.node
            else:  # (skip)
                knowledge = incumbent
        return Configuration(knowledge, deque(cfg.tasks), list(cfg.threads))

    def _prune(self, cfg: Configuration, i: int) -> Optional[Configuration]:
        """(prune): remove subtree(S, v) \\ {v} when incumbent |> v."""
        if self.problem.kind == ENUMERATION or self.problem.prunes is None:
            return None
        th = cfg.threads[i]
        if th is None:
            return None
        incumbent = cfg.knowledge
        if not self.problem.prunes(incumbent, th.node):
            return None
        doomed = set(th.task.subtree(th.node).nodes) - {th.node}
        if not doomed:
            return None
        threads = list(cfg.threads)
        threads[i] = ThreadState(th.task.remove(doomed), th.node, th.backtracks)
        return Configuration(cfg.knowledge, deque(cfg.tasks), threads)

    def _shortcircuit(self, cfg: Configuration, i: int) -> Optional[Configuration]:
        """(shortcircuit): the incumbent hit the greatest element."""
        if self.problem.kind != DECISION:
            return None
        greatest = self.problem.monoid.greatest()
        if self.problem.objective(cfg.knowledge) != greatest:
            return None
        return Configuration(cfg.knowledge, deque(), [None] * len(cfg.threads))

    def _spawn(self, cfg: Configuration, i: int) -> Optional[Configuration]:
        th = cfg.threads[i]
        if th is None or self.spawn_policy is None:
            return None
        S, v = th.task, th.node

        if self.spawn_policy == "any":
            candidates = S.succ(v)
            if not candidates:
                return None
            u = candidates[self.rng.randrange(len(candidates))]
            return self._spawn_subtrees(cfg, i, [u], reset_backtracks=False)

        if self.spawn_policy == "depth":
            if len(v) >= self.d_cutoff:
                return None
            kids = [u for u in S.children(v) if S.tree.before(v, u)]
            kids = [u for u in kids if u in S]
            if not kids:
                return None
            return self._spawn_subtrees(cfg, i, kids, reset_backtracks=False)

        if self.spawn_policy == "budget":
            if th.backtracks < self.k_budget:
                return None
            low = S.lowest(v)
            if not low:
                return None
            return self._spawn_subtrees(cfg, i, low, reset_backtracks=True)

        if self.spawn_policy == "stack":
            if cfg.tasks:
                return None
            u = S.next_lowest(v)
            if u is None:
                return None
            return self._spawn_subtrees(cfg, i, [u], reset_backtracks=False)

        raise AssertionError(f"unreachable policy {self.spawn_policy!r}")

    def _spawn_subtrees(
        self, cfg: Configuration, i: int, roots: list[Word], *, reset_backtracks: bool
    ) -> Configuration:
        """Carve ``subtree(S, u)`` for each root u, enqueue in traversal order."""
        th = cfg.threads[i]
        S = th.task
        roots = sorted(roots, key=S.tree.traversal_key)
        tasks = deque(cfg.tasks)
        remaining = S
        for u in roots:
            sub = remaining.subtree(u)
            tasks.append(sub)
            remaining = remaining.remove(sub.nodes)
        threads = list(cfg.threads)
        threads[i] = ThreadState(
            remaining, th.node, 0 if reset_backtracks else th.backtracks
        )
        return Configuration(cfg.knowledge, tasks, threads)

    # -- the overall reduction relation -------------------------------------

    def step(self, cfg: Configuration) -> Optional[Configuration]:
        """One ``->`` reduction under a random applicable (thread, rule).

        Returns None iff the configuration is final (no rule applies).
        Note (noop) paired with an idle thread is *not* counted as
        progress; the paper's (noop) exists only to let ``->T o ->N``
        compose after (terminate).
        """
        n = len(cfg.threads)
        order = list(range(n))
        self.rng.shuffle(order)
        # Gather all applicable (thread, category) moves, then pick one at
        # random, so every interleaving has positive probability.
        moves: list[tuple[int, str]] = []
        for i in order:
            if cfg.threads[i] is None:
                if cfg.tasks:
                    moves.append((i, "traverse"))  # schedule then process(noop)
            else:
                moves.append((i, "traverse"))
                if self._prune(cfg, i) is not None:
                    moves.append((i, "prune"))
                if self._shortcircuit(cfg, i) is not None:
                    moves.append((i, "shortcircuit"))
                if self._spawn(cfg, i) is not None:
                    moves.append((i, "spawn"))
        if not moves:
            return None
        i, kind = moves[self.rng.randrange(len(moves))]
        if kind == "traverse":
            nxt = self._schedule(cfg, i)
            if nxt is None:
                nxt = self._traverse(cfg, i)
            nxt = self._process(nxt, i)
        elif kind == "prune":
            nxt = self._prune(cfg, i)
        elif kind == "shortcircuit":
            nxt = self._shortcircuit(cfg, i)
        else:
            nxt = self._spawn(cfg, i)
        self.trace.append(f"{kind}@{i}")
        return nxt

    def run(
        self, cfg: Configuration, *, max_steps: int = 1_000_000
    ) -> Configuration:
        """Reduce to a final configuration; raises if max_steps exceeded."""
        for _ in range(max_steps):
            nxt = self.step(cfg)
            if nxt is None:
                return cfg
            cfg = nxt
        raise RuntimeError(f"machine did not terminate within {max_steps} steps")

    def search(
        self, tree: OrderedTree, n_threads: int = 1, *, max_steps: int = 1_000_000
    ) -> object:
        """Convenience: run a full search and return the final knowledge."""
        cfg = Configuration.initial(self.problem, tree, n_threads)
        final = self.run(cfg, max_steps=max_steps)
        return final.knowledge
