"""thread-call-safety: publisher threads talk to the loop safely.

Almost every asyncio loop method is unsafe to call from another
thread; the two blessed bridges are ``loop.call_soon_threadsafe`` and
``asyncio.run_coroutine_threadsafe``.  The EventBroker publish path
and both cluster/gateway handles follow that contract — this rule
keeps it that way by flagging, in any *sync* function (one not nested
inside an ``async def``):

- ``<loop>.call_soon`` / ``call_later`` / ``call_at`` /
  ``create_task`` / ``ensure_future`` where the receiver looks like an
  event loop (``loop``, ``_loop``, ``*_loop``);
- module-level ``asyncio.create_task`` / ``asyncio.ensure_future``,
  which require a *running* loop and so only make sense on the loop
  thread (i.e. inside a coroutine).

A sync def nested inside an ``async def`` is a loop-thread callback
(e.g. a ``call_soon`` target) and is exempt.  Loop-*owner* methods
such as ``run_forever``/``run_until_complete``/``close`` are not
flagged — owning threads legitimately drive their own loop.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Rule, SourceFile
from repro.analysis.findings import Finding

__all__ = ["CallSafetyRule"]

UNSAFE_LOOP_METHODS = frozenset(
    {"call_soon", "call_later", "call_at", "create_task", "ensure_future"}
)

LOOP_BRIDGES = "call_soon_threadsafe / asyncio.run_coroutine_threadsafe"


def _receiver_name(node: ast.AST) -> Optional[str]:
    """Rightmost identifier of the receiver expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_loopish(name: Optional[str]) -> bool:
    if name is None:
        return False
    lowered = name.lower()
    return lowered == "loop" or lowered.endswith("_loop")


class CallSafetyRule(Rule):
    name = "thread-call-safety"
    description = (
        "sync (publisher-thread) code must reach the event loop via"
        " call_soon_threadsafe / run_coroutine_threadsafe only"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        """Check loop-touching calls in every sync function body."""
        yield from self._walk(src, src.tree.body, symbol="", in_sync=False)

    def _walk(
        self,
        src: SourceFile,
        body: Iterable[ast.stmt],
        *,
        symbol: str,
        in_sync: bool,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._visit(src, stmt, symbol=symbol, in_sync=in_sync)

    def _visit(
        self, src: SourceFile, node: ast.AST, *, symbol: str, in_sync: bool
    ) -> Iterator[Finding]:
        if isinstance(node, ast.AsyncFunctionDef):
            # Everything below runs on the loop thread.
            return
        if isinstance(node, ast.ClassDef):
            qualifier = (
                f"{symbol}.{node.name}" if symbol else node.name
            )
            yield from self._walk(
                src, node.body, symbol=qualifier, in_sync=False
            )
            return
        if isinstance(node, ast.FunctionDef):
            qualifier = f"{symbol}.{node.name}" if symbol else node.name
            yield from self._walk(
                src, node.body, symbol=qualifier, in_sync=True
            )
            return
        if in_sync and isinstance(node, ast.Call):
            yield from self._check_call(src, node, symbol)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(
                src, child, symbol=symbol, in_sync=in_sync
            )

    def _check_call(
        self, src: SourceFile, call: ast.Call, symbol: str
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in UNSAFE_LOOP_METHODS:
            return
        receiver = _receiver_name(func.value)
        if receiver == "asyncio" and func.attr in (
            "create_task",
            "ensure_future",
        ):
            yield Finding(
                path=src.rel,
                line=call.lineno,
                col=call.col_offset,
                rule=self.name,
                message=(
                    f"asyncio.{func.attr}() needs a running loop and"
                    " so cannot be called from a publisher thread;"
                    f" use {LOOP_BRIDGES}"
                ),
                symbol=symbol,
            )
        elif _is_loopish(receiver):
            yield Finding(
                path=src.rel,
                line=call.lineno,
                col=call.col_offset,
                rule=self.name,
                message=(
                    f"'{receiver}.{func.attr}()' is not thread-safe"
                    " outside the loop thread; use"
                    f" {LOOP_BRIDGES}"
                ),
                symbol=symbol,
            )
