"""Adaptive scaling policy: turn load signals into a target fleet size.

The policy is deliberately a pure object: :meth:`Adaptive.recommend`
takes a :class:`LoadSignals` snapshot and an explicit ``now`` timestamp
and returns the fleet size the deployment should converge to.  No
threads, no sleeps, no wall clock — the unit suite drives it with a
fake clock, and :class:`repro.deploy.deployment.ClusterDeployment`
drives it with ``time.monotonic()`` from its adapt loop.

Demand is measured in *runnable tasks*: the coordinator's queued +
leased task counts (one live job's outstanding work) plus the service
layer's job-queue depth (work that has not reached the coordinator
yet).  The raw series is jagged — a budget-restart search emits bursts
of offcut subtasks — so the policy applies two stabilisers, in the
spirit of dask's ``Adaptive``:

- asymmetric hysteresis: scale *up* immediately (latency on a burst is
  the thing elasticity exists to remove) but scale *down* only after
  raw demand has stayed below the current fleet size for a full
  ``down_cooldown`` window, and every recovery resets the window.  A
  square-wave load whose period is shorter than the cooldown therefore
  holds the fleet at its high-water mark instead of oscillating (each
  high phase resets the window before it can expire);
- an exponential moving average of the demand series shapes the
  *scale-down target*: when the window does expire the fleet drops to
  the smoothed demand level, not to whatever instantaneous trough
  happened to be polled.

The timing gate deliberately reads the raw series, not the EMA: gating
on smoothed demand means the damped signal can sit permanently just
below a previous peak, silently bleeding the fleet down one step per
cooldown even while the load keeps returning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["LoadSignals", "Adaptive"]


@dataclass(frozen=True)
class LoadSignals:
    """One snapshot of the demand signals the policy reads.

    Attributes:
        queued_tasks: tasks sitting in the coordinator's ready queue.
        leased_tasks: tasks currently leased to workers.
        service_queue_depth: jobs waiting in the service-layer
            :class:`~repro.service.queue.JobQueue` (0 when the
            deployment is used without the service layer).
        job_active: True while the coordinator is running a job; keeps
            at least one worker's worth of demand on the books even at
            the instant the queue reads empty mid-job.
    """

    queued_tasks: int = 0
    leased_tasks: int = 0
    service_queue_depth: int = 0
    job_active: bool = False

    def demand(self) -> float:
        """Runnable work, in tasks."""
        raw = self.queued_tasks + self.leased_tasks + self.service_queue_depth
        if self.job_active:
            raw = max(raw, 1)
        return float(raw)


class Adaptive:
    """Hysteretic demand-follower mapping load signals to a fleet size.

    Args:
        minimum: floor on the recommended fleet (>= 1: the fleet never
            scales to zero, so a new job always finds a worker).
        maximum: ceiling on the recommended fleet.
        target_per_worker: runnable tasks one worker is expected to
            absorb; the unsmoothed target is ``ceil(demand / this)``.
        smoothing: EMA coefficient in (0, 1] applied to the demand
            series; the smoothed level sets the scale-down *target*.
            1.0 disables smoothing.
        down_cooldown: seconds raw demand must stay below the current
            fleet size before a scale-down is recommended.
        up_cooldown: minimum seconds between successive scale-ups
            (0 = react instantly; bursts are the latency-sensitive
            direction).
    """

    def __init__(
        self,
        minimum: int = 1,
        maximum: int = 4,
        *,
        target_per_worker: float = 1.0,
        smoothing: float = 0.5,
        down_cooldown: float = 2.0,
        up_cooldown: float = 0.0,
    ) -> None:
        if minimum < 1:
            raise ValueError(f"minimum must be >= 1, got {minimum}")
        if maximum < minimum:
            raise ValueError(
                f"maximum ({maximum}) must be >= minimum ({minimum})"
            )
        if not (0.0 < smoothing <= 1.0):
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if target_per_worker <= 0:
            raise ValueError("target_per_worker must be positive")
        self.minimum = int(minimum)
        self.maximum = int(maximum)
        self.target_per_worker = float(target_per_worker)
        self.smoothing = float(smoothing)
        self.down_cooldown = float(down_cooldown)
        self.up_cooldown = float(up_cooldown)
        self._ema: Optional[float] = None
        self._current: Optional[int] = None
        self._last_up: Optional[float] = None
        self._below_since: Optional[float] = None

    def _clamp(self, n: int) -> int:
        return max(self.minimum, min(self.maximum, n))

    def desired(self) -> int:
        """The clamped target implied by the current smoothed demand,
        ignoring hysteresis (what the fleet would converge to if the
        current demand level held forever)."""
        if self._ema is None:
            return self.minimum
        return self._clamp(int(math.ceil(self._ema / self.target_per_worker)))

    def recommend(self, signals: LoadSignals, now: float) -> int:
        """Fold one load snapshot in and return the target fleet size.

        Deterministic in the sequence of ``(signals, now)`` pairs; call
        it from exactly one place (the deployment's adapt loop or a
        test's fake clock loop).
        """
        demand = signals.demand()
        if self._ema is None:
            self._ema = demand
        else:
            self._ema += self.smoothing * (demand - self._ema)
        # The gate compares raw demand against the fleet: a square wave
        # resets the window on every high phase no matter how the EMA
        # is damped, so period < cooldown pins the high-water mark.
        raw = self._clamp(int(math.ceil(demand / self.target_per_worker)))

        if self._current is None:
            # First observation: jump straight to the implied size.
            self._current = raw
            self._last_up = now
            return self._current

        if raw > self._current:
            # Scale up, subject only to the (usually zero) up cooldown.
            if self._last_up is None or now - self._last_up >= self.up_cooldown:
                self._current = raw
                self._last_up = now
            self._below_since = None
        elif raw < self._current:
            # Scale down only once demand has been low for the whole
            # cooldown window; a blip resets nothing, a recovery does.
            if self._below_since is None:
                self._below_since = now
            if now - self._below_since >= self.down_cooldown:
                # Drop to the smoothed level, not the polled trough.
                self._current = max(raw, self.desired())
                self._below_since = None
        else:
            self._below_since = None
        return self._current
