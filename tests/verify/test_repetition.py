"""Tests for the repetition oracle (``repro verify --repeat``).

Two satellites live here.  **Repetition stability**: every backend runs
the same seeded instance five times and the answer must not wobble —
with the replicable coordinations held to full bit-identical
fingerprints and the known value-stable-only cells documented as
``xfail``.  **Mutation sensitivity**: with the ``ordered-tiebreak``
mutation active the oracle must return a failing exit code at the
pinned seed, proving the witness really is inside the net.
"""

import json
import os

import pytest

from repro.core.results import SearchMetrics, SearchResult
from repro.verify.differential import run_config
from repro.verify.generators import Instance
from repro.verify.repetition import (
    REPLICABLE_BACKENDS,
    _cell_config,
    _diff,
    result_fingerprint,
    run_repetition,
)

# A maxclique cell small enough to run 5x per backend in-test but with
# real ties for arrival order to get wrong.
INSTANCE = Instance("maxclique", (14, 60, 3))
KNOBS = {"seed": 7, "d_cutoff": 2, "budget": 5, "share_poll": 16}

# Empirically pinned (see TestMutationSensitivity): at this seed the
# round-1 maxclique draw catches the ordered-tiebreak mutation in 20/20
# scan runs, and the clean harness passed 8/8.
PINNED_SEED = 1


def _repeat_runs(backend, coordination, workers, n=5):
    cfg = _cell_config(backend, coordination, workers, dict(KNOBS))
    return [run_config(INSTANCE, cfg) for _ in range(n)]


class TestFingerprint:
    def _result(self, node):
        return SearchResult(
            kind="optimisation", value=4, node=node,
            metrics=SearchMetrics(nodes=10, prunes=2, backtracks=9,
                                  max_depth=3),
        )

    def test_value_fingerprint_excludes_witness(self):
        a = result_fingerprint(self._result(("x",)))
        b = result_fingerprint(self._result(("y",)))
        assert a == b
        assert set(a) == {"value", "found"}

    def test_counts_fingerprint_pins_witness_and_counters(self):
        a = result_fingerprint(self._result(("x",)), counts=True)
        b = result_fingerprint(self._result(("y",)), counts=True)
        assert a != b
        assert set(a) == {
            "value", "found", "node", "nodes", "prunes", "backtracks",
            "max_depth",
        }
        assert a["nodes"] == 10

    def test_reassigned_is_outside_the_fingerprint(self):
        res = self._result(("x",))
        res.metrics.reassigned = 7
        other = self._result(("x",))
        assert result_fingerprint(res, counts=True) == result_fingerprint(
            other, counts=True
        )

    def test_diff_names_each_differing_field(self):
        a = {"value": "1", "nodes": 5}
        b = {"value": "1", "nodes": 6}
        lines = _diff("left", a, "right", b)
        assert len(lines) == 1
        assert "nodes differs" in lines[0]
        assert _diff("l", a, "r", a) == []


class TestCellConfig:
    def test_worker_count_maps_per_backend(self):
        sim = _cell_config("sim", "ordered", 4, dict(KNOBS))
        assert sim.knobs["workers_per_locality"] == 4
        proc = _cell_config("processes", "ordered", 3, dict(KNOBS))
        assert proc.knobs["n_processes"] == 3
        clu = _cell_config("cluster", "ordered", 2, dict(KNOBS))
        assert clu.knobs["cluster_workers"] == 2
        seq = _cell_config("sequential", "anything", 9, dict(KNOBS))
        assert seq.backend == "sequential"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            _cell_config("gpu", "ordered", 2, {})


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            run_repetition(backend="quantum")

    def test_chaos_only_on_cluster(self):
        with pytest.raises(ValueError, match="chaos"):
            run_repetition(backend="processes", chaos=True)

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError, match="repeat"):
            run_repetition(backend="sequential", repeat=0)


class TestAnswerStability:
    """Satellite: 5x repetition per backend on one seeded instance."""

    @pytest.mark.parametrize(
        "backend,coordination,workers",
        [
            ("sequential", "sequential", 1),
            ("sim", "ordered", 3),       # the simulator is deterministic
            ("processes", "ordered", 2),  # replicable by construction
        ],
    )
    def test_full_fingerprint_stable_5x(self, backend, coordination, workers):
        prints = [
            result_fingerprint(r, counts=True)
            for r in _repeat_runs(backend, coordination, workers)
        ]
        assert prints == [prints[0]] * 5

    def test_cluster_ordered_full_fingerprint_stable_5x(self):
        prints = [
            result_fingerprint(r, counts=True)
            for r in _repeat_runs("cluster", "ordered", 2)
        ]
        assert prints == [prints[0]] * 5

    def test_processes_budget_answer_stable_5x(self):
        # Budget is raced on purpose; the *answer* still must not move.
        prints = [
            result_fingerprint(r)
            for r in _repeat_runs("processes", "budget", 3)
        ]
        assert prints == [prints[0]] * 5

    @pytest.mark.xfail(
        reason="tracking: processes/budget node counts vary run-to-run "
        "(racy incumbent arrival changes what gets pruned); only the "
        "ordered coordination promises replicable counters",
        strict=False,
    )
    def test_processes_budget_counts_stable_5x(self):
        prints = [
            result_fingerprint(r, counts=True)
            for r in _repeat_runs("processes", "budget", 3)
        ]
        assert prints == [prints[0]] * 5

    @pytest.mark.xfail(
        reason="tracking: sim/ordered counts vary with the worker count "
        "(the simulated pool reorders expansion between ticks); the sim "
        "backend is held to the value-stability bar only",
        strict=False,
    )
    def test_sim_ordered_counts_stable_across_worker_counts(self):
        one = result_fingerprint(
            _repeat_runs("sim", "ordered", 1, n=1)[0], counts=True
        )
        four = result_fingerprint(
            _repeat_runs("sim", "ordered", 4, n=1)[0], counts=True
        )
        assert one == four

    def test_replicable_backends_constant(self):
        assert set(REPLICABLE_BACKENDS) == {"processes", "cluster"}


class TestHarness:
    def test_processes_ordered_rounds_pass(self, tmp_path):
        lines = []
        rc = run_repetition(
            backend="processes", coordination="ordered",
            seed=PINNED_SEED, rounds=2, repeat=3,
            artifact_dir=str(tmp_path), log=lines.append,
        )
        assert rc == 0
        assert list(tmp_path.iterdir()) == []  # artifacts only on failure
        assert any("stable" in line for line in lines)

    def test_cluster_round_includes_chaos_cell(self, tmp_path):
        lines = []
        rc = run_repetition(
            backend="cluster", coordination="ordered",
            seed=PINNED_SEED, rounds=1, repeat=2, worker_counts=(1, 2),
            artifact_dir=str(tmp_path), log=lines.append,
        )
        assert rc == 0
        # 1, 2 workers plus the pinned kill_worker cell.
        assert any("3 cell(s) stable" in line for line in lines)


class TestMutationSensitivity:
    """Satellite: the repetition oracle catches the planted tie-break bug."""

    def test_ordered_tiebreak_mutation_is_caught(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_MUTATION", "ordered-tiebreak")
        lines = []
        rc = run_repetition(
            backend="processes", coordination="ordered",
            seed=PINNED_SEED, rounds=2, repeat=3,
            artifact_dir=str(tmp_path), log=lines.append,
        )
        assert rc == 1
        assert any("FAIL" in line for line in lines)
        # Round 0 is enumeration (witness-free, mutation invisible);
        # the optimisation round writes the artifact.
        path = tmp_path / "repeat-r1-processes-ordered.json"
        assert path.exists()
        artifact = json.loads(path.read_text())
        assert artifact["issues"]
        assert any("node differs" in issue for issue in artifact["issues"])
        assert artifact["reference"]["node"] is not None

    def test_clean_harness_passes(self):
        # Guard against the mutation leaking into the environment: the
        # identical call must be green with the switch unset.
        assert os.environ.get("REPRO_VERIFY_MUTATION") is None
        rc = run_repetition(
            backend="processes", coordination="ordered",
            seed=PINNED_SEED, rounds=2, repeat=3,
        )
        assert rc == 0
