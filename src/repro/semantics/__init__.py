"""Executable formal model of parallel backtracking search (paper Section 3).

The paper models search trees as non-empty prefix-closed sets of words
over an alphabet, search types as folds into commutative monoids, and
parallel search as a nondeterministic small-step reduction over
configurations ``<sigma, Tasks, theta_1 .. theta_n>`` (Figure 2).  This
package implements that model *directly* — materialised trees, the
thirteen reduction rules, and an abstract machine that applies them under
arbitrary interleavings — so that the correctness theorems (3.1–3.3) can
be checked by property-based testing, and so the production skeletons in
:mod:`repro.core` can be validated against the semantics.
"""

from repro.semantics.words import (
    EPSILON,
    Word,
    is_prefix,
    is_proper_prefix,
    parent,
    strict_extensions,
)
from repro.semantics.tree import OrderedTree, Subtree
from repro.semantics.monoids import (
    BoundedMaxMonoid,
    CommutativeMonoid,
    MaxMonoid,
    SumMonoid,
)
from repro.semantics.generators import OrderedTreeGenerator, tree_of_generator
from repro.semantics.machine import (
    Configuration,
    Machine,
    SearchProblem,
    ThreadState,
)

__all__ = [
    "EPSILON",
    "Word",
    "is_prefix",
    "is_proper_prefix",
    "parent",
    "strict_extensions",
    "OrderedTree",
    "Subtree",
    "CommutativeMonoid",
    "SumMonoid",
    "MaxMonoid",
    "BoundedMaxMonoid",
    "OrderedTreeGenerator",
    "tree_of_generator",
    "Configuration",
    "Machine",
    "SearchProblem",
    "ThreadState",
]
