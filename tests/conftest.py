"""Shared fixtures: a tiny explicit-tree search application.

``toy_spec`` builds a SearchSpec over an explicit dict tree — the
simplest possible Lazy Node Generator — with per-node objective values
and the tightest admissible bound (max objective over the subtree).
Used to unit-test coordinations without dragging a real application in.
"""

from __future__ import annotations

import pytest

from repro.core.nodegen import ListNodeGenerator
from repro.core.space import SearchSpec


class ToyTree:
    """Explicit tree: children lists + objective values per node."""

    def __init__(self, children: dict, values: dict) -> None:
        self.children = children
        self.values = values
        self.bounds = {}
        self._compute_bounds("root")

    def _compute_bounds(self, node):
        best = self.values[node]
        for c in self.children.get(node, []):
            best = max(best, self._compute_bounds(c))
        self.bounds[node] = best
        return best

    def all_nodes(self):
        out, stack = [], ["root"]
        while stack:
            n = stack.pop()
            out.append(n)
            stack.extend(reversed(self.children.get(n, [])))
        return out


def make_toy_spec(children: dict, values: dict, *, with_bound: bool = True) -> SearchSpec:
    tree = ToyTree(children, values)
    return SearchSpec(
        name="toy",
        space=tree,
        root="root",
        generator=lambda space, node: ListNodeGenerator(
            list(space.children.get(node, []))
        ),
        objective=lambda node: tree.values[node],
        upper_bound=(lambda space, node: space.bounds[node]) if with_bound else None,
    )


@pytest.fixture
def toy_spec():
    r"""A small irregular tree::

            root(0)
           /   |   \
         a(1) b(5)  c(2)
        /  \          \
      aa(3) ab(2)     ca(7)
                        \
                        caa(4)
    """
    children = {
        "root": ["a", "b", "c"],
        "a": ["aa", "ab"],
        "c": ["ca"],
        "ca": ["caa"],
    }
    values = {"root": 0, "a": 1, "b": 5, "c": 2, "aa": 3, "ab": 2, "ca": 7, "caa": 4}
    return make_toy_spec(children, values)


@pytest.fixture
def toy_spec_unbounded():
    children = {"root": ["a", "b"], "a": ["aa"]}
    values = {"root": 0, "a": 1, "b": 2, "aa": 3}
    return make_toy_spec(children, values, with_bound=False)


@pytest.fixture(scope="session", autouse=True)
def _lock_order_trace():
    """Opt-in dynamic lock-order tracing for the whole test session.

    With ``REPRO_LOCK_TRACE=1`` in the environment (the CI conformance
    job sets it), every ``threading.Lock``/``RLock`` created during the
    run is traced and the session fails if the acquisition-order graph
    ever contains a cycle — a latent deadlock, even if the schedule
    that would trigger it never ran.
    """
    from repro.analysis import lockorder

    graph = lockorder.maybe_install_from_env()
    if graph is None:
        yield None
        return
    try:
        yield graph
    finally:
        lockorder.uninstall()
        graph.assert_acyclic()
