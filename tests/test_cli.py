"""Tests for the YewPar-style command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestMaxClique:
    def test_library_instance_sequential(self):
        code, out = run_cli("maxclique", "--instance", "sanr90-1")
        assert code == 0
        assert "value: 11" in out
        assert "search type: optimisation" in out

    def test_decision_bound(self):
        code, out = run_cli(
            "maxclique", "--instance", "sanr90-1", "--decisionBound", "11"
        )
        assert code == 0
        assert "found: True" in out

    def test_decision_bound_unsat(self):
        code, out = run_cli(
            "maxclique", "--instance", "sanr90-1", "--decisionBound", "30"
        )
        assert "found: False" in out

    def test_parallel_run_reports_virtual_time(self):
        code, out = run_cli(
            "maxclique", "--instance", "sanr90-1",
            "--skeleton", "depthbounded", "-d", "2",
            "--localities", "2", "--workers", "4",
        )
        assert code == 0
        assert "virtual time:" in out
        assert "workers: 8" in out

    def test_dimacs_file(self, tmp_path):
        from repro.instances.dimacs import write_dimacs
        from repro.instances.graphs import planted_clique

        path = tmp_path / "g.clq"
        write_dimacs(planted_clique(30, 0.3, 8, seed=1), path)
        code, out = run_cli("maxclique", "-f", str(path))
        assert code == 0
        assert "value: 8" in out

    def test_wrong_app_instance_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("maxclique", "--instance", "tsp-rand-12")


class TestOtherApps:
    def test_knapsack(self):
        code, out = run_cli("knapsack", "--instance", "knap-strong-28",
                            "--skeleton", "stacksteal", "--workers", "4")
        assert code == 0
        assert "value: 8265" in out

    def test_tsp(self):
        code, out = run_cli("tsp", "--instance", "tsp-rand-11")
        assert code == 0
        assert "search type: optimisation" in out

    def test_sip_decision(self):
        code, out = run_cli("sip", "--instance", "sip-planted-18-65")
        assert code == 0
        assert "found: True" in out

    def test_uts(self):
        code, out = run_cli("uts", "--shape", "geometric", "--b0", "3",
                            "--depth", "5", "--tree-seed", "2")
        assert code == 0
        assert "search type: enumeration" in out

    def test_ns_count_genus(self):
        code, out = run_cli("ns", "--genus", "8", "--count-genus")
        assert code == 0
        assert "value: 67" in out  # A007323(8)

    def test_ns_whole_tree(self):
        code, out = run_cli("ns", "--genus", "4")
        assert "value: 15" in out  # 1+1+2+4+7


class TestMisc:
    def test_list(self):
        code, out = run_cli("list")
        assert code == 0
        assert "maxclique:" in out
        assert "sanr90-1" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            run_cli()

    def test_random_skeleton_accepted(self):
        code, out = run_cli(
            "maxclique", "--instance", "sanr90-1",
            "--skeleton", "random", "--spawn-probability", "0.05",
            "--workers", "4",
        )
        assert code == 0
        assert "value: 11" in out


class TestTraceFlag:
    def test_trace_prints_gantt(self):
        code, out = run_cli(
            "maxclique", "--instance", "sanr90-1",
            "--skeleton", "stacksteal", "--workers", "4", "--trace",
        )
        assert code == 0
        assert "util|" in out

    def test_trace_ignored_for_sequential(self):
        code, out = run_cli("maxclique", "--instance", "sanr90-1", "--trace")
        assert code == 0
        assert "util|" not in out


class TestTuneCommand:
    def test_tune_prints_recommendation(self):
        code, out = run_cli("tune", "--instance", "brock100-1",
                            "--localities", "1", "--workers", "4")
        assert code == 0
        assert "recommendation:" in out
        assert "stacksteal" in out


class TestServiceCommands:
    def submit(self, jobfile, *extra):
        return run_cli(
            "submit", "--jobfile", str(jobfile),
            "--app", "maxclique", "--instance", "brock90-1", *extra,
        )

    def test_submit_appends_json_lines(self, tmp_path):
        import json

        jobfile = tmp_path / "jobs.jsonl"
        code, out = self.submit(jobfile, "--priority", "3")
        assert code == 0
        assert "key=" in out
        code, _ = self.submit(jobfile, "--submitter", "alice")
        assert code == 0
        lines = jobfile.read_text().splitlines()
        assert len(lines) == 2
        spec = json.loads(lines[0])
        assert spec["instance"] == "brock90-1"
        assert spec["priority"] == 3

    def test_submit_rejects_bad_param(self, tmp_path):
        with pytest.raises(SystemExit):
            self.submit(tmp_path / "jobs.jsonl", "--param", "notkeyvalue")

    def test_serve_runs_jobs_and_reports_metrics(self, tmp_path):
        jobfile = tmp_path / "jobs.jsonl"
        self.submit(jobfile)
        self.submit(jobfile, "--submitter", "bob")  # duplicate → coalesced
        run_cli("submit", "--jobfile", str(jobfile),
                "--app", "kclique", "--instance", "kclique-planted-80")
        code, out = run_cli("serve", "--jobfile", str(jobfile), "--pool", "2")
        assert code == 0
        assert "DONE" in out
        assert "(cache)" in out
        assert "service metrics:" in out
        assert "hit rate" in out

    def test_serve_writes_results_jsonl(self, tmp_path):
        import json

        from repro.core.results import result_from_dict

        jobfile = tmp_path / "jobs.jsonl"
        results = tmp_path / "out.jsonl"
        self.submit(jobfile)
        code, _ = run_cli("serve", "--jobfile", str(jobfile),
                          "--results", str(results))
        assert code == 0
        records = [json.loads(l) for l in results.read_text().splitlines()]
        assert len(records) == 1
        assert records[0]["state"] == "DONE"
        back = result_from_dict(records[0]["result"])
        assert back.value == 14

    def test_serve_reports_bad_lines_and_fails(self, tmp_path):
        jobfile = tmp_path / "jobs.jsonl"
        self.submit(jobfile)
        with open(jobfile, "a") as fh:
            fh.write('{"app": "maxclique", "instance": "no-such-instance"}\n')
            fh.write("not json at all\n")
        code, out = run_cli("serve", "--jobfile", str(jobfile))
        assert code == 1
        assert "rejected" in out
        assert "DONE" in out  # the good job still ran

    def test_serve_respects_timeout(self, tmp_path):
        jobfile = tmp_path / "jobs.jsonl"
        run_cli("submit", "--jobfile", str(jobfile),
                "--app", "ns", "--instance", "ns-genus-16",
                "--timeout", "0.15")
        code, out = run_cli("serve", "--jobfile", str(jobfile))
        assert code == 0  # TIMEOUT is a reported outcome, not a CLI failure
        assert "TIMEOUT" in out

    def test_serve_comment_and_blank_lines_ignored(self, tmp_path):
        jobfile = tmp_path / "jobs.jsonl"
        with open(jobfile, "w") as fh:
            fh.write("# a comment\n\n")
        self.submit(jobfile)
        code, out = run_cli("serve", "--jobfile", str(jobfile))
        assert code == 0
        assert "DONE" in out


class TestVerifyCommand:
    def test_verify_sequential_conforms(self):
        code, out = run_cli(
            "verify", "--backend", "sequential", "--seed", "11", "--rounds", "2"
        )
        assert code == 0
        assert "all 2 round(s) conform" in out

    def test_verify_failure_writes_artifacts_and_exits_1(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_VERIFY_MUTATION", "incumbent-ordering")
        code, out = run_cli(
            "verify", "--backend", "sim", "--seed", "3", "--rounds", "4",
            "--artifacts", str(tmp_path / "arts"),
        )
        assert code == 1
        assert "FAIL" in out
        assert list((tmp_path / "arts").glob("fail-*.json"))

    def test_verify_rejects_chaos_without_cluster(self):
        with pytest.raises(SystemExit):
            run_cli("verify", "--backend", "sim", "--chaos", "--rounds", "1")


class TestGatewayCommands:
    def test_submit_wait_requires_url(self):
        with pytest.raises(SystemExit, match="--wait requires --url"):
            run_cli("submit", "--app", "maxclique", "--instance", "brock90-1",
                    "--wait", "--jobfile", "-")

    def test_submit_url_unreachable_fails_cleanly(self):
        code, out = run_cli(
            "submit", "--url", "http://127.0.0.1:9", "--app", "maxclique",
            "--instance", "brock90-1",
        )
        assert code == 1
        assert "submit failed" in out

    def test_submit_url_rejects_non_http_schemes(self):
        with pytest.raises(SystemExit, match="http"):
            run_cli("submit", "--url", "ftp://example.org", "--app",
                    "maxclique", "--instance", "brock90-1")

    def test_gateway_top_unreachable_exits_1(self):
        code, out = run_cli(
            "gateway-top", "--url", "http://127.0.0.1:9", "--once"
        )
        assert code == 1
        assert "cannot scrape" in out

    def test_gateway_validates_flag_combinations(self):
        with pytest.raises(SystemExit, match="--shards"):
            run_cli("gateway", "--shards", "0")
        with pytest.raises(SystemExit, match="--adaptive requires"):
            run_cli("gateway", "--adaptive")
        with pytest.raises(SystemExit, match="--max-workers"):
            run_cli("gateway", "--adaptive", "--backend", "cluster",
                    "--min-workers", "3", "--max-workers", "1")

    def test_submit_and_wait_against_a_live_gateway(self):
        from repro.gateway import Gateway, GatewayHandle, ShardRouter

        handle = GatewayHandle(Gateway(ShardRouter(2), port=0))
        handle.start()
        try:
            code, out = run_cli(
                "submit", "--url", handle.url, "--app", "maxclique",
                "--instance", "brock90-1", "--skeleton", "budget",
                "--param", "budget=500", "--wait",
            )
            assert code == 0
            assert "queued maxclique/brock90-1" in out
            assert "done" in out
            assert "value:" in out
            # a second submission is served from the cache
            code, out = run_cli(
                "submit", "--url", handle.url, "--app", "maxclique",
                "--instance", "brock90-1", "--skeleton", "budget",
                "--param", "budget=500",
            )
            assert code == 0
            assert "cached" in out
        finally:
            handle.close()
