"""Numerical Semigroups — enumeration by genus (paper §5.1, [17]).

A *numerical semigroup* is a cofinite subset of the naturals containing
0 and closed under addition; its *genus* is the number of naturals it
misses.  Fromentin & Hivert organise all numerical semigroups into a
tree: the root is N itself (genus 0), and the children of a semigroup S
are the semigroups ``S \\ {g}`` for each minimal generator ``g`` of S
greater than S's Frobenius number (its largest gap).  Every semigroup
appears exactly once, at depth = genus, so counting semigroups of genus
g is counting tree nodes at depth g (OEIS A007323: 1, 1, 2, 4, 7, 12,
23, 39, 67, 118, ...).

The search is extremely *narrow near the root* (the root has a single
child) — the paper calls NS out as the application that defeats static
work generation and needs dynamic coordinations (§5.5).

Representation: elements as an int bitmask over ``0..limit`` where
``limit = 3*max_genus + 2`` (minimal generators of a genus-g semigroup
never exceed 3g+1, since any element above F + multiplicity is
reducible and F <= 2g-1, multiplicity <= g+1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.nodegen import IterNodeGenerator, NodeGenerator
from repro.core.space import SearchSpec
from repro.util.bitset import bit_indices, mask_below

__all__ = [
    "SemigroupInstance",
    "SemigroupNode",
    "SemigroupGen",
    "semigroups_spec",
    "minimal_generators",
    "GENUS_COUNTS",
]

# A007323, for validation: number of numerical semigroups of genus g.
GENUS_COUNTS = (
    1, 1, 2, 4, 7, 12, 23, 39, 67, 118, 204, 343, 592, 1001, 1693, 2857,
    4806, 8045, 13467, 22464, 37396, 62194, 103246, 170963, 282828, 467224,
)


@dataclass(frozen=True)
class SemigroupInstance:
    """Enumeration bounded at ``max_genus`` (the tree depth cutoff)."""

    max_genus: int

    def __post_init__(self) -> None:
        if self.max_genus < 0:
            raise ValueError("max_genus must be non-negative")

    @property
    def limit(self) -> int:
        """Elements are tracked on ``0..limit`` inclusive."""
        return 3 * self.max_genus + 2


@dataclass(frozen=True, slots=True)
class SemigroupNode:
    """A numerical semigroup: element mask up to limit, Frobenius, genus."""

    elements: int  # bitmask; bit e set <=> e in S (for e <= limit)
    frobenius: int  # largest gap; -1 for N itself
    genus: int


def minimal_generators(elements: int, limit: int) -> list[int]:
    """Minimal generators of S: nonzero elements not a sum of two
    nonzero elements, ascending.

    For each candidate e, checks whether some nonzero a in S with
    ``e - a`` also in S exists; scanning a <= e/2 suffices by symmetry.
    """
    gens: list[int] = []
    nonzero = elements & ~1  # drop 0
    for e in bit_indices(nonzero):
        reducible = False
        for a in bit_indices(nonzero & mask_below(e // 2 + 1)):
            if a == 0 or a >= e:
                break
            if nonzero >> (e - a) & 1:
                reducible = True
                break
        if not reducible:
            gens.append(e)
    return gens


def _children(inst: SemigroupInstance, node: SemigroupNode) -> Iterator[SemigroupNode]:
    if node.genus >= inst.max_genus:
        return
    for g in minimal_generators(node.elements, inst.limit):
        if g > node.frobenius:
            yield SemigroupNode(
                elements=node.elements & ~(1 << g),
                frobenius=g,  # removing g > F makes g the largest gap
                genus=node.genus + 1,
            )


class SemigroupGen(NodeGenerator[SemigroupInstance, SemigroupNode]):
    """Children remove one minimal generator above the Frobenius number."""

    __slots__ = ("_inner",)

    def __init__(self, inst: SemigroupInstance, parent: SemigroupNode) -> None:
        self._inner = IterNodeGenerator(_children(inst, parent))

    def has_next(self) -> bool:
        return self._inner.has_next()

    def next(self) -> SemigroupNode:
        return self._inner.next()


def semigroups_spec(
    inst: SemigroupInstance, *, name: str = "semigroups", count_genus: int | None = None
) -> SearchSpec:
    """NS :class:`SearchSpec`; pair with Enumeration.

    With ``count_genus`` the objective counts only semigroups of that
    exact genus (the paper's "how many of genus g"); by default it
    counts every semigroup of genus <= max_genus (tree size).
    """
    if count_genus is not None and count_genus > inst.max_genus:
        raise ValueError("count_genus exceeds the enumeration depth")
    root = SemigroupNode(
        elements=mask_below(inst.limit + 1),  # N: everything present
        frobenius=-1,
        genus=0,
    )
    if count_genus is None:
        objective = lambda node: 1  # noqa: E731
    else:
        objective = lambda node: 1 if node.genus == count_genus else 0  # noqa: E731
    return SearchSpec(
        name=name,
        space=inst,
        root=root,
        generator=SemigroupGen,
        objective=objective,
    )
