"""Tests for the simulated cluster executor.

The key contract: every parallel coordination, on any topology and seed,
computes the same search outcome as the Sequential skeleton — while the
metrics show the coordination actually happened (spawns, steals).
"""

import pytest

from repro.core.params import SkeletonParams
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.core.tasks import BUDGET, DEPTH, STACK
from repro.runtime.costmodel import CostModel
from repro.runtime.executor import SimulatedCluster, virtual_sequential_time
from repro.runtime.topology import Topology

from tests.conftest import make_toy_spec


def wide_spec(width=6, depth=3):
    """A regular tree: width^depth leaves, every node value 1."""
    children = {}
    values = {"root": 1}

    def grow(name, d):
        if d == depth:
            return
        kids = [f"{name}/{i}" for i in range(width)]
        children[name] = kids
        for k in kids:
            values[k] = 1
            grow(k, d + 1)

    grow("root", 0)
    return make_toy_spec(children, values, with_bound=False)


def cluster(localities=2, workers=3, **cost_kwargs):
    return SimulatedCluster(
        Topology(localities=localities, workers_per_locality=workers),
        CostModel(**cost_kwargs) if cost_kwargs else None,
    )


POLICIES = [
    (DEPTH, SkeletonParams(d_cutoff=2)),
    (BUDGET, SkeletonParams(budget=3)),
    (STACK, SkeletonParams(chunked=True)),
    (STACK, SkeletonParams(chunked=False)),
]


class TestEnumerationEquivalence:
    @pytest.mark.parametrize("policy,params", POLICIES)
    def test_counts_match_sequential(self, policy, params):
        spec = wide_spec()
        seq = sequential_search(spec, Enumeration())
        res = cluster().run(spec, Enumeration(), policy, params)
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes  # no pruning -> same tree

    @pytest.mark.parametrize("policy,params", POLICIES)
    def test_single_worker_cluster(self, policy, params):
        spec = wide_spec(width=3, depth=3)
        seq = sequential_search(spec, Enumeration())
        res = cluster(localities=1, workers=1).run(spec, Enumeration(), policy, params)
        assert res.value == seq.value


class TestOptimisationEquivalence:
    @pytest.mark.parametrize("policy,params", POLICIES)
    def test_optimum_matches_sequential(self, toy_spec, policy, params):
        seq = sequential_search(toy_spec, Optimisation())
        res = cluster().run(toy_spec, Optimisation(), policy, params)
        assert res.value == seq.value == 7

    @pytest.mark.parametrize("policy,params", POLICIES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_optimum_stable_across_seeds(self, toy_spec, policy, params, seed):
        res = cluster().run(toy_spec, Optimisation(), policy, params.with_(seed=seed))
        assert res.value == 7


class TestDecisionEquivalence:
    @pytest.mark.parametrize("policy,params", POLICIES)
    def test_found(self, toy_spec, policy, params):
        res = cluster().run(toy_spec, Decision(target=5), policy, params)
        assert res.found is True
        assert res.value == 5

    @pytest.mark.parametrize("policy,params", POLICIES)
    def test_refuted(self, policy, params):
        spec = wide_spec(width=3, depth=2)  # all values 1
        res = cluster().run(spec, Decision(target=2), policy, params)
        assert res.found is False

    def test_goal_stops_simulation_early(self, toy_spec):
        res = cluster().run(toy_spec, Decision(target=5), DEPTH, SkeletonParams(d_cutoff=1))
        full = cluster().run(toy_spec, Optimisation(), DEPTH, SkeletonParams(d_cutoff=1))
        assert res.metrics.nodes <= full.metrics.nodes


class TestDeterminism:
    @pytest.mark.parametrize("policy,params", POLICIES)
    def test_same_seed_same_run(self, policy, params):
        spec = wide_spec(width=4, depth=3)
        a = cluster().run(spec, Enumeration(), policy, params)
        b = cluster().run(spec, Enumeration(), policy, params)
        assert a.virtual_time == b.virtual_time
        assert a.metrics.steals == b.metrics.steals
        assert a.per_worker_busy == b.per_worker_busy

    def test_different_seeds_change_schedule(self):
        # Stack-Stealing picks victims at random, so the seed must be
        # able to change the schedule (on a 2-locality pool topology the
        # only remote choice is forced, hence the stack policy here).
        spec = wide_spec(width=4, depth=4)
        params = SkeletonParams(chunked=False)
        times = {
            cluster(localities=1, workers=6)
            .run(spec, Enumeration(), STACK, params.with_(seed=s))
            .virtual_time
            for s in range(8)
        }
        assert len(times) > 1  # victim selection actually randomises


class TestCoordinationBehaviour:
    def test_depthbounded_spawns_all_nodes_above_cutoff(self):
        spec = wide_spec(width=3, depth=3)
        res = cluster().run(spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=2))
        # nodes at depths 1 and 2: 3 + 9
        assert res.metrics.spawns == 12

    def test_budget_spawn_counts_grow_as_budget_shrinks(self):
        spec = wide_spec(width=4, depth=4)
        lo = cluster().run(spec, Enumeration(), BUDGET, SkeletonParams(budget=2))
        hi = cluster().run(spec, Enumeration(), BUDGET, SkeletonParams(budget=500))
        assert lo.metrics.spawns > hi.metrics.spawns

    def test_stack_steals_happen(self):
        spec = wide_spec(width=5, depth=4)
        res = cluster().run(spec, Enumeration(), STACK, SkeletonParams())
        assert res.metrics.steals > 0

    def test_parallel_beats_sequential_virtual_time(self):
        spec = wide_spec(width=5, depth=4)  # 781 nodes
        seq_time, _ = virtual_sequential_time(spec, Enumeration())
        res = cluster(localities=1, workers=8).run(
            spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=1)
        )
        assert res.virtual_time < seq_time

    def test_more_workers_not_slower_on_regular_tree(self):
        spec = wide_spec(width=5, depth=4)
        params = SkeletonParams(d_cutoff=2)
        t2 = cluster(localities=1, workers=2).run(spec, Enumeration(), DEPTH, params).virtual_time
        t8 = cluster(localities=1, workers=8).run(spec, Enumeration(), DEPTH, params).virtual_time
        assert t8 < t2

    def test_busy_time_bounded_by_makespan(self):
        spec = wide_spec(width=4, depth=3)
        res = cluster().run(spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=1))
        assert all(b <= res.virtual_time + 1e-9 for b in res.per_worker_busy)

    def test_remote_latency_hurts(self):
        spec = wide_spec(width=4, depth=4)
        params = SkeletonParams(d_cutoff=2)
        fast = SimulatedCluster(
            Topology(4, 2), CostModel(steal_latency_remote=2.0, broadcast_latency_remote=2.0)
        ).run(spec, Enumeration(), DEPTH, params)
        slow = SimulatedCluster(
            Topology(4, 2), CostModel(steal_latency_remote=500.0, broadcast_latency_remote=500.0)
        ).run(spec, Enumeration(), DEPTH, params)
        assert slow.virtual_time > fast.virtual_time


class TestVirtualSequentialTime:
    def test_prices_nodes_and_backtracks(self, toy_spec):
        cost = CostModel(node_cost=1.0, framework_node_overhead=0.0, backtrack_cost=0.5)
        t, res = virtual_sequential_time(toy_spec, Enumeration(), cost)
        assert t == pytest.approx(
            res.metrics.nodes * 1.0 + res.metrics.backtracks * 0.5
        )

    def test_specialised_is_cheaper(self, toy_spec):
        generic, _ = virtual_sequential_time(toy_spec, Enumeration())
        special, _ = virtual_sequential_time(toy_spec, Enumeration(), specialised=True)
        assert special < generic


class TestGuards:
    def test_sequential_policy_rejected_on_cluster(self, toy_spec):
        with pytest.raises(ValueError):
            cluster().run(toy_spec, Enumeration(), "seq", SkeletonParams())


class TestEnumerationMonoidAcrossWorkers:
    """Regression: per-worker accumulators must merge with the monoid
    plus — a leaf-indicator objective (solution counting) must give the
    same count on any topology."""

    def test_solution_counting_parallel(self):
        spec = wide_spec(width=3, depth=3)  # 27 leaves at depth 3
        stype = Enumeration(objective=lambda n: 1 if n.count("/") == 3 else 0)
        seq = sequential_search(spec, stype)
        assert seq.value == 27
        for policy, params in POLICIES:
            res = cluster().run(spec, stype, policy, params)
            assert res.value == 27, policy

    def test_custom_max_monoid_parallel(self):
        spec = wide_spec(width=3, depth=3)
        stype = Enumeration(plus=max, zero=-1, objective=lambda n: len(n))
        seq = sequential_search(spec, stype)
        for policy, params in POLICIES:
            res = cluster().run(spec, stype, policy, params)
            assert res.value == seq.value, policy
