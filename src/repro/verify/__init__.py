"""repro.verify — the differential conformance harness.

The paper's correctness claim (Thm 3.1-3.3) is that every skeleton
computes the same fold as the sequential semantics; this package is the
machinery that checks the claim continuously instead of on a handful of
hand-picked library instances:

- :mod:`repro.verify.generators` — seeded random instances for every
  application family, with greedy shrinking to a minimal failure;
- :mod:`repro.verify.oracle` — the sequential driver and the semantics
  machine as dual oracles, plus the per-search-type invariants a
  backend result must satisfy;
- :mod:`repro.verify.differential` — drives each backend over the same
  instances under seeded knob sweeps and diffs the results;
- :mod:`repro.verify.chaos` — seeded :class:`FaultPlan` schedules that
  exercise the cluster's epoch/re-lease fault tolerance reproducibly;
- :mod:`repro.verify.repetition` — the repetition oracle: the same
  cell N times across worker counts (and one chaos round), demanding
  stable values everywhere and bit-identical search fingerprints from
  the ordered coordination.

Entry point: ``repro verify`` (see :mod:`repro.cli`),
:func:`repro.verify.differential.run_verify`, or
``repro verify --repeat N`` /
:func:`repro.verify.repetition.run_repetition`.
"""

from repro.verify.chaos import FaultPlan
from repro.verify.differential import run_verify
from repro.verify.generators import Instance, instance_spec
from repro.verify.oracle import OracleReport, build_report, check_result
from repro.verify.repetition import result_fingerprint, run_repetition

__all__ = [
    "FaultPlan",
    "Instance",
    "OracleReport",
    "build_report",
    "check_result",
    "instance_spec",
    "result_fingerprint",
    "run_repetition",
    "run_verify",
]
