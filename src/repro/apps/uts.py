"""Unbalanced Tree Search (UTS) — synthetic enumeration workload [30].

UTS counts the nodes of a synthetic tree whose shape is derived from a
splittable hash: each node's child count is a pure function of the
node's hash state, so the tree is identical no matter which worker
expands which subtree — the property that makes UTS the standard
load-balancing stress test (the paper, §5.1, uses it to evaluate the
enumeration skeletons on extremely irregular workloads).

Two tree shapes from the original benchmark:

- **geometric**: child counts follow a geometric distribution with mean
  ``b0``, cut off below ``max_depth`` (expected size ~ b0 * max_depth
  branching structure, highly irregular depth profile);
- **binomial**: the root has ``b0`` children; every other node has
  ``m`` children with probability ``q`` and none otherwise (``q*m < 1``
  keeps it finite), giving extreme subtree-size variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.nodegen import IterNodeGenerator, NodeGenerator
from repro.core.space import SearchSpec
from repro.util.rng import splittable_hash

__all__ = ["UTSInstance", "UTSNode", "UTSGen", "uts_spec", "uts_spec_from_params"]

_GEOMETRIC = "geometric"
_BINOMIAL = "binomial"


@dataclass(frozen=True)
class UTSInstance:
    """Parameters of a UTS tree; ``seed`` fixes the tree exactly."""

    shape: str = _GEOMETRIC
    b0: float = 4.0  # root/expected branching factor
    max_depth: int = 6  # geometric shape only
    m: int = 8  # binomial: children on a "success" node
    q: float = 0.1  # binomial: success probability (q*m < 1)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.shape not in (_GEOMETRIC, _BINOMIAL):
            raise ValueError(f"unknown UTS shape {self.shape!r}")
        if self.b0 <= 0:
            raise ValueError("b0 must be positive")
        if self.shape == _GEOMETRIC and self.max_depth < 0:
            raise ValueError("max_depth must be non-negative")
        if self.shape == _BINOMIAL and not (0 <= self.q * self.m < 1):
            raise ValueError("binomial UTS requires 0 <= q*m < 1 (finite tree)")


@dataclass(frozen=True, slots=True)
class UTSNode:
    """A UTS node: hash state + depth; children derive from these only."""

    state: int
    depth: int


def _uniform(state: int) -> float:
    """Map a 64-bit hash state to a uniform float in [0, 1)."""
    return (state >> 11) * (1.0 / (1 << 53))


def _num_children(inst: UTSInstance, node: UTSNode) -> int:
    if inst.shape == _GEOMETRIC:
        if node.depth >= inst.max_depth:
            return 0
        u = _uniform(node.state)
        # Geometric with mean b0: P(children >= k) = (b0/(b0+1))^k.
        ratio = inst.b0 / (inst.b0 + 1.0)
        if u >= 1.0:
            return 0
        return int(math.floor(math.log(1.0 - u) / math.log(ratio)))
    # binomial
    if node.depth == 0:
        return max(1, int(round(inst.b0)))
    return inst.m if _uniform(node.state) < inst.q else 0


def _children(inst: UTSInstance, node: UTSNode) -> Iterator[UTSNode]:
    count = _num_children(inst, node)
    for i in range(count):
        yield UTSNode(state=splittable_hash(node.state, i), depth=node.depth + 1)


class UTSGen(NodeGenerator[UTSInstance, UTSNode]):
    """Children hashed from (parent state, child index) — order-independent."""

    __slots__ = ("_inner",)

    def __init__(self, inst: UTSInstance, parent: UTSNode) -> None:
        self._inner = IterNodeGenerator(_children(inst, parent))

    def has_next(self) -> bool:
        return self._inner.has_next()

    def next(self) -> UTSNode:
        return self._inner.next()


def uts_spec_from_params(
    shape: str,
    b0: float,
    max_depth: int,
    m: int,
    q: float,
    seed: int,
    name: str = "uts",
) -> SearchSpec:
    """Top-level picklable spec factory for the multiprocessing backends:
    rebuilds :func:`uts_spec` from the instance's plain parameters."""
    return uts_spec(
        UTSInstance(shape=shape, b0=b0, max_depth=max_depth, m=m, q=q, seed=seed),
        name=name,
    )


def uts_spec(inst: UTSInstance, *, name: str = "uts") -> SearchSpec:
    """UTS :class:`SearchSpec`; pair with Enumeration (counts nodes)."""
    root = UTSNode(state=splittable_hash(inst.seed, 0), depth=0)
    return SearchSpec(
        name=name,
        space=inst,
        root=root,
        generator=UTSGen,
        objective=lambda node: 1,
    )
