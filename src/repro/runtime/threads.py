"""Real shared-memory execution with Python threads.

The simulator (:mod:`repro.runtime.executor`) is the primary engine for
*studying* coordination behaviour; this module is the pragmatic engine
for *using* the skeletons on a real machine: a Depth-Bounded run over a
``concurrent.futures`` thread pool with a lock-protected shared
incumbent.

GIL caveat (and why this backend is Depth-Bounded only): CPython runs
one thread's bytecode at a time, so pure-Python node processing gains
no wall-clock speedup from threads — fine-grained coordinations like
Stack-Stealing would only add locking overhead (this is the repro
band's "GIL cripples fine-grained parallel tree search").  Coarse
Depth-Bounded tasks still benefit when node evaluation releases the GIL
(numpy/scipy bound functions, C extensions), and the backend is the
honest way to demonstrate the skeleton API on real threads.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.params import SkeletonParams
from repro.core.results import SearchMetrics, SearchResult
from repro.core.searchtypes import Incumbent, SearchType
from repro.core.space import SearchSpec
from repro.core.tasks import SEQ, SearchTask, SpawnedTask

__all__ = ["threaded_depthbounded_search"]


class _SharedKnowledge:
    """Lock-protected incumbent (or per-task accumulators for enumeration)."""

    def __init__(self, stype: SearchType, spec: SearchSpec) -> None:
        self.stype = stype
        self.lock = threading.Lock()
        self.value = stype.initial_knowledge(spec)  # guarded-by: lock
        self.goal = threading.Event()

    def read(self):
        with self.lock:
            return self.value

    def merge(self, knowledge) -> None:
        with self.lock:
            self.value = self.stype.combine(self.value, knowledge)
            if self.stype.is_goal(self.value):
                self.goal.set()


def _expand_roots(
    spec: SearchSpec, stype: SearchType, d_cutoff: int
) -> tuple[list[SpawnedTask], SearchMetrics, object]:
    """Sequentially split off every subtree at the cutoff depth.

    Runs the same Depth-Bounded task the simulator runs, but drains it
    in-line; the returned spawned list is the parallel workload.
    """
    params = SkeletonParams(d_cutoff=d_cutoff)
    task = SearchTask(spec, stype, spec.root, policy="depth", params=params)
    knowledge = stype.initial_knowledge(spec)
    spawned: list[SpawnedTask] = []
    metrics = SearchMetrics()
    while not task.finished:
        knowledge, out = task.step(knowledge)
        metrics.nodes += int(out.processed)
        metrics.weighted_nodes += out.weight if out.processed else 0
        metrics.prunes += int(out.pruned)
        metrics.backtracks += int(out.backtracked)
        spawned.extend(out.spawned)
        metrics.spawns += len(out.spawned)
        if out.goal:
            break
    return spawned, metrics, knowledge


def _run_subtree(
    spec: SearchSpec,
    stype: SearchType,
    spawn: SpawnedTask,
    shared: _SharedKnowledge,
) -> SearchMetrics:
    """One worker task: search a subtree sequentially, syncing knowledge.

    The shared incumbent is re-read every ``sync_every`` steps — the
    thread-pool analogue of the simulator's delayed bound broadcast.
    """
    task = SearchTask(
        spec, stype, spawn.root, policy=SEQ, root_depth=spawn.depth
    )
    metrics = SearchMetrics()
    # Enumeration folds a fresh local accumulator (merged at the end);
    # optimisation/decision start from the current shared incumbent.
    if stype.kind == "enumeration":
        knowledge = stype.initial_knowledge(spec)
    else:
        knowledge = shared.read()
    steps = 0
    while not task.finished and not shared.goal.is_set():
        knowledge, out = task.step(knowledge)
        metrics.nodes += int(out.processed)
        metrics.weighted_nodes += out.weight if out.processed else 0
        metrics.prunes += int(out.pruned)
        metrics.backtracks += int(out.backtracked)
        if out.improved or out.goal:
            shared.merge(knowledge)
        steps += 1
        if steps % 64 == 0 and stype.kind != "enumeration":
            knowledge = stype.combine(knowledge, shared.read())
    if stype.kind == "enumeration":
        shared.merge(knowledge)
    return metrics


def threaded_depthbounded_search(
    spec: SearchSpec,
    stype: SearchType,
    *,
    n_threads: int = 4,
    d_cutoff: int = 2,
) -> SearchResult:
    """Depth-Bounded search over a real thread pool.

    Semantically identical to the simulated Depth-Bounded skeleton;
    see the module docstring for when it actually helps wall time.
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    started = time.perf_counter()
    shared = _SharedKnowledge(stype, spec)
    spawned, metrics, root_knowledge = _expand_roots(spec, stype, d_cutoff)
    shared.merge(root_knowledge)

    if spawned and not shared.goal.is_set():
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            for worker_metrics in pool.map(
                lambda sp: _run_subtree(spec, stype, sp, shared), spawned
            ):
                metrics.merge(worker_metrics)
    elapsed = time.perf_counter() - started

    knowledge = shared.read()
    if isinstance(knowledge, Incumbent):
        return SearchResult(
            kind=stype.kind,
            value=knowledge.value,
            node=knowledge.node,
            found=shared.goal.is_set() if stype.kind == "decision" else None,
            metrics=metrics,
            wall_time=elapsed,
            workers=n_threads,
        )
    return SearchResult(
        kind=stype.kind,
        value=knowledge,
        metrics=metrics,
        wall_time=elapsed,
        workers=n_threads,
    )
