"""Bitset-adjacency graphs.

The paper represents graphs as vectors mapping each vertex to the bitset
of its neighbours (Listing 1), which makes the inner loops of clique
search single ``&`` operations.  :class:`Graph` is that representation:
``adj[v]`` is an int bitset of ``v``'s neighbours.  Graphs are simple
and undirected; self-loops are rejected.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.util.bitset import bit_indices, count_bits, mask_below

__all__ = ["Graph"]


class Graph:
    """An undirected graph on vertices ``0 .. n-1`` with bitset adjacency."""

    __slots__ = ("n", "adj", "_inv_adj")

    def __init__(self, n: int, adj: list[int] | None = None) -> None:
        if n < 0:
            raise ValueError("vertex count must be non-negative")
        self.n = n
        self.adj: list[int] = list(adj) if adj is not None else [0] * n
        self._inv_adj: list[int] | None = None
        if len(self.adj) != n:
            raise ValueError(f"adjacency vector has {len(self.adj)} entries for {n} vertices")
        universe = mask_below(n)
        for v, bits in enumerate(self.adj):
            if bits & ~universe:
                raise ValueError(f"vertex {v} adjacent to out-of-range vertices")
            if bits >> v & 1:
                raise ValueError(f"self-loop at vertex {v}")

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Graph":
        g = cls(n)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def add_edge(self, u: int, v: int) -> None:
        """Insert the undirected edge (u, v); rejects loops/out-of-range."""
        if u == v:
            raise ValueError(f"self-loop at vertex {u}")
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError(f"edge ({u},{v}) out of range for n={self.n}")
        self.adj[u] |= 1 << v
        self.adj[v] |= 1 << u
        self._inv_adj = None

    def inverted_adj(self) -> list[int]:
        """Cached ``~adj[v]`` masks (invalidated by :meth:`add_edge`).

        The greedy-colouring inner loop removes a vertex's neighbours
        from the candidate set on every iteration; precomputing the
        complements turns that into a single ``&`` per iteration.
        """
        inv = self._inv_adj
        if inv is None:
            inv = self._inv_adj = [~bits for bits in self.adj]
        return inv

    def has_edge(self, u: int, v: int) -> bool:
        """True if u and v are adjacent."""
        return bool(self.adj[u] >> v & 1)

    def degree(self, v: int) -> int:
        """Number of neighbours of v."""
        return count_bits(self.adj[v])

    def neighbours(self, v: int) -> Iterator[int]:
        """Iterate the neighbours of v in increasing order."""
        return bit_indices(self.adj[v])

    def edges(self) -> Iterator[tuple[int, int]]:
        """Each undirected edge once, as (u, v) with u < v."""
        for u in range(self.n):
            for v in bit_indices(self.adj[u] >> (u + 1) << (u + 1)):
                yield (u, v)

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(self.degree(v) for v in range(self.n)) // 2

    def density(self) -> float:
        """Fraction of possible edges present (0 for n < 2)."""
        if self.n < 2:
            return 0.0
        return 2 * self.edge_count() / (self.n * (self.n - 1))

    def complement(self) -> "Graph":
        """The complement graph on the same vertices."""
        universe = mask_below(self.n)
        return Graph(
            self.n,
            [universe & ~self.adj[v] & ~(1 << v) for v in range(self.n)],
        )

    def subgraph_is_clique(self, vertices: int) -> bool:
        """True if the bitset ``vertices`` induces a clique."""
        for v in bit_indices(vertices):
            others = vertices & ~(1 << v)
            if others & ~self.adj[v]:
                return False
        return True

    def relabel(self, order: list[int]) -> "Graph":
        """The same graph with vertex ``order[i]`` renamed to ``i``.

        Clique algorithms conventionally sort vertices by non-increasing
        degree first (the heuristic order of [26]); relabelling bakes
        that order in so bitset iteration follows it.
        """
        if sorted(order) != list(range(self.n)):
            raise ValueError("order must be a permutation of the vertices")
        position = [0] * self.n
        for i, v in enumerate(order):
            position[v] = i
        g = Graph(self.n)
        for u, v in self.edges():
            g.add_edge(position[u], position[v])
        return g

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Graph) and self.n == other.n and self.adj == other.adj

    def __repr__(self) -> str:
        return f"Graph(n={self.n}, m={self.edge_count()})"
