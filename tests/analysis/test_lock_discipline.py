"""lock-discipline rule: guarded fields stay under their lock."""

from __future__ import annotations

from repro.analysis.core import run_analysis
from repro.analysis.rules.lock_discipline import LockDisciplineRule


def check(project):
    return run_analysis(
        project, [LockDisciplineRule()], check_suppression_hygiene=False
    )


CLEAN = """\
import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # guarded-by: _lock

    def get(self):
        with self._lock:
            return self.value

    def set(self, v):
        with self._lock:
            self.value = v
"""


class TestClean:
    def test_locked_accesses_pass(self, project_from):
        assert check(project_from({"box.py": CLEAN})).findings == []

    def test_unguarded_fields_ignored(self, project_from):
        src = CLEAN.replace("  # guarded-by: _lock", "")
        assert check(project_from({"box.py": src})).findings == []


class TestViolations:
    def test_unlocked_read_flagged(self, project_from):
        src = CLEAN + "\n    def peek(self):\n        return self.value\n"
        report = check(project_from({"box.py": src}))
        (finding,) = report.findings
        assert finding.rule == "lock-discipline"
        assert "'value' read outside" in finding.message
        assert finding.symbol == "Box.peek"

    def test_unlocked_write_flagged(self, project_from):
        src = CLEAN + "\n    def reset(self):\n        self.value = 0\n"
        (finding,) = check(project_from({"box.py": src})).findings
        assert "'value' written outside" in finding.message

    def test_wrong_lock_flagged(self, project_from):
        src = (
            "import threading\n"
            "\n\nclass Box:\n"
            "    def __init__(self):\n"
            "        self._a = threading.Lock()\n"
            "        self._b = threading.Lock()\n"
            "        self.value = 0  # guarded-by: _a\n"
            "\n"
            "    def bad(self):\n"
            "        with self._b:\n"
            "            return self.value\n"
        )
        (finding,) = check(project_from({"box.py": src})).findings
        assert "'value' read outside 'with self._a:'" in finding.message

    def test_closure_does_not_inherit_lock(self, project_from):
        # A callback defined inside `with self._lock:` runs later, when
        # the lock is long released — accesses inside it must be flagged.
        src = CLEAN + (
            "\n    def sneaky(self):\n"
            "        with self._lock:\n"
            "            def cb():\n"
            "                return self.value\n"
            "            return cb\n"
        )
        (finding,) = check(project_from({"box.py": src})).findings
        assert finding.symbol == "Box.sneaky"


class TestEscapeHatches:
    def test_locked_suffix_method_assumes_lock(self, project_from):
        src = CLEAN + (
            "\n    def _drain_locked(self):\n"
            "        return self.value\n"
        )
        assert check(project_from({"box.py": src})).findings == []

    def test_holds_comment_assumes_named_lock(self, project_from):
        src = CLEAN + (
            "\n    def _drain(self):  # repro: holds[_lock]\n"
            "        return self.value\n"
        )
        assert check(project_from({"box.py": src})).findings == []

    def test_alternative_locks_either_suffices(self, project_from):
        src = (
            "import threading\n"
            "\n\nclass Sched:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._work = threading.Condition(self._lock)\n"
            "        self.jobs = {}  # guarded-by: _lock|_work\n"
            "\n"
            "    def via_lock(self):\n"
            "        with self._lock:\n"
            "            return len(self.jobs)\n"
            "\n"
            "    def via_cond(self):\n"
            "        with self._work:\n"
            "            return len(self.jobs)\n"
        )
        assert check(project_from({"sched.py": src})).findings == []


class TestCallerContract:
    CALLER = """\
class Cache:
    def __init__(self):
        self.entries = {}  # guarded-by: caller
"""

    def test_lock_free_container_passes(self, project_from):
        assert check(project_from({"cache.py": self.CALLER})).findings == []

    def test_threading_machinery_flagged(self, project_from):
        src = (
            "import threading\n\n\n" + self.CALLER
            + "        self._t = threading.Thread(target=print)\n"
        )
        (finding,) = check(project_from({"cache.py": src})).findings
        assert "caller-guarded fields (entries)" in finding.message
        assert "threading.Thread" in finding.message


class TestSuppressed:
    def test_inline_waiver_with_reason(self, project_from):
        src = CLEAN + (
            "\n    def peek(self):\n"
            "        return self.value"
            "  # repro: allow[lock-discipline] -- benign stale read\n"
        )
        report = check(project_from({"box.py": src}))
        assert report.findings == []
        assert report.suppressed == 1
