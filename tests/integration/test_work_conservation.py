"""Property tests: the cluster neither loses nor duplicates work.

For enumeration searches (no pruning), every coordination on every
topology must process each tree node exactly once — the operational
counterpart of the semantics' node-conservation invariant (the proof
core of Theorem 3.1).  Hypothesis generates random irregular trees and
random topologies; the cluster's summed objective and node count must
equal the sequential run's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nodegen import ListNodeGenerator
from repro.core.params import SkeletonParams
from repro.core.searchtypes import Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.core.space import SearchSpec
from repro.core.tasks import BUDGET, DEPTH, ORDERED, RANDOM, STACK
from repro.runtime.executor import SimulatedCluster
from repro.runtime.topology import Topology


@st.composite
def random_tree_specs(draw):
    """A random irregular tree as a SearchSpec with per-node values."""
    rng_seed = draw(st.integers(min_value=0, max_value=2**31))
    max_children = draw(st.integers(min_value=1, max_value=4))
    depth_limit = draw(st.integers(min_value=1, max_value=5))
    # Deterministic pseudo-random tree from the seed: child counts from
    # a hash of the node path.
    children: dict = {}
    values: dict = {"r": 1 + (rng_seed % 7)}

    def grow(name, depth):
        if depth == depth_limit:
            children[name] = []
            return
        count = hash((name, rng_seed)) % (max_children + 1)
        kids = [f"{name}.{i}" for i in range(count)]
        children[name] = kids
        for k in kids:
            values[k] = 1 + (hash((k, rng_seed, "v")) % 7)
            grow(k, depth + 1)

    grow("r", 0)
    return SearchSpec(
        name="random-tree",
        space=None,
        root="r",
        generator=lambda _, node: ListNodeGenerator(list(children[node])),
        objective=lambda node: values[node],
    )


topologies = st.tuples(
    st.integers(min_value=1, max_value=3), st.integers(min_value=1, max_value=4)
)

policies = st.sampled_from([DEPTH, BUDGET, STACK, RANDOM, ORDERED])


class TestWorkConservation:
    @settings(max_examples=60, deadline=None)
    @given(random_tree_specs(), topologies, policies, st.integers(0, 1000))
    def test_every_node_processed_exactly_once(self, spec, topo, policy, seed):
        seq = sequential_search(spec, Enumeration())
        params = SkeletonParams(
            localities=topo[0],
            workers_per_locality=topo[1],
            d_cutoff=2,
            budget=2,
            spawn_probability=0.25,
            seed=seed,
        )
        cluster = SimulatedCluster(Topology(topo[0], topo[1]))
        res = cluster.run(spec, Enumeration(), policy, params)
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    @settings(max_examples=40, deadline=None)
    @given(random_tree_specs(), topologies, policies, st.integers(0, 1000))
    def test_optimisation_finds_global_max(self, spec, topo, policy, seed):
        seq = sequential_search(spec, Optimisation())
        params = SkeletonParams(
            localities=topo[0],
            workers_per_locality=topo[1],
            d_cutoff=1,
            budget=3,
            spawn_probability=0.2,
            seed=seed,
        )
        cluster = SimulatedCluster(Topology(topo[0], topo[1]))
        res = cluster.run(spec, Optimisation(), policy, params)
        assert res.value == seq.value

    @settings(max_examples=30, deadline=None)
    @given(random_tree_specs(), policies, st.integers(0, 100))
    def test_busy_never_exceeds_makespan(self, spec, policy, seed):
        params = SkeletonParams(
            localities=2, workers_per_locality=3, d_cutoff=2, budget=2,
            spawn_probability=0.2, seed=seed,
        )
        cluster = SimulatedCluster(Topology(2, 3))
        res = cluster.run(spec, Enumeration(), policy, params)
        assert all(b <= res.virtual_time + 1e-9 for b in res.per_worker_busy)
