"""Content-addressed result cache with LRU eviction, TTL and coalescing.

Searches are deterministic given a :class:`~repro.service.jobs.JobSpec`
identity (the library instances are seeded), so results are cacheable
by the spec's canonical hash.  Two mechanisms deduplicate work:

- **The result cache** (:meth:`ResultCache.get`/:meth:`~ResultCache.put`):
  completed results, LRU-evicted at ``capacity``, optionally expiring
  ``ttl`` seconds after insertion (for deployments that want bounded
  staleness, e.g. while instance generators evolve).
- **The in-flight registry** (:meth:`~ResultCache.lead`/
  :meth:`~ResultCache.join`/:meth:`~ResultCache.finish`): a duplicate
  submitted *while its twin is still queued or running* is not queued
  again; it joins the twin (the *leader*) as a follower and is resolved
  with the leader's result the moment it lands — request coalescing, as
  in any CDN or dogpile-protected cache.

Hit/miss counters live here so the service metrics snapshot can report
a hit rate; coalesced fan-outs count as hits (they were served without
a search).  The cache itself is not thread-safe; the scheduler guards
it with its own lock.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable, Optional

from repro.core.results import SearchResult

__all__ = ["ResultCache"]


class ResultCache:
    """LRU + TTL result cache, keyed by canonical job hash."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None for no expiry)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[str, tuple[SearchResult, float]] = OrderedDict()  # guarded-by: caller
        # key -> (leader, followers)
        self._inflight: dict[str, tuple[str, list[str]]] = {}  # guarded-by: caller
        self.hits = 0  # guarded-by: caller
        self.misses = 0  # guarded-by: caller

    # -- the result store ----------------------------------------------------

    def get(self, key: str) -> Optional[SearchResult]:
        """The cached result for ``key``, or None (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is not None:
            result, stored_at = entry
            if self.ttl is None or self._clock() - stored_at < self.ttl:
                self._entries.move_to_end(key)
                self.hits += 1
                return result
            del self._entries[key]  # expired
        self.misses += 1
        return None

    def put(self, key: str, result: SearchResult) -> None:
        """Store ``result``, evicting the least recently used on overflow."""
        self._entries[key] = (result, self._clock())
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        if self.ttl is not None and self._clock() - entry[1] >= self.ttl:
            return False
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> Optional[float]:
        """hits / lookups, or None before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None

    def record_coalesced_hit(self) -> None:
        """Count a coalesced fan-out as a cache hit: the follower was
        served a result without a search, which is the quantity the hit
        rate is meant to measure."""
        self.hits += 1

    # -- the in-flight registry (coalescing) ---------------------------------

    def lead(self, key: str, job_id: str) -> None:
        """Register ``job_id`` as the leader now computing ``key``."""
        if key in self._inflight:
            raise ValueError(f"key {key[:12]}… already has a leader")
        self._inflight[key] = (job_id, [])

    def leader_of(self, key: str) -> Optional[str]:
        """The job id currently computing ``key``, if any."""
        entry = self._inflight.get(key)
        return entry[0] if entry else None

    def join(self, key: str, follower_id: str) -> str:
        """Attach a duplicate submission to the in-flight leader.

        Returns the leader's job id; the follower will be resolved by
        :meth:`finish` when the leader lands.
        """
        leader, followers = self._inflight[key]
        followers.append(follower_id)
        return leader

    def drop_follower(self, key: str, follower_id: str) -> bool:
        """Detach a follower (it was cancelled while waiting)."""
        entry = self._inflight.get(key)
        if entry is None or follower_id not in entry[1]:
            return False
        entry[1].remove(follower_id)
        return True

    def finish(self, key: str) -> list[str]:
        """Close the in-flight entry for ``key``; returns its followers.

        The caller (scheduler) fans the leader's outcome out to the
        returned follower job ids.  Idempotent: a key with no in-flight
        entry returns an empty list.
        """
        entry = self._inflight.pop(key, None)
        return entry[1] if entry else []
