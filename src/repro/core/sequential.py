"""Sequential search coordination (Listing 2).

A single worker performs the depth-first traversal from the root node
with no spawn rules — the reference against which every parallel
skeleton's speedup is measured.

Two drivers are provided:

- :func:`sequential_search` — the production path: a direct
  transcription of Listing 2 over the generator stack, with the
  per-step dispatch inlined.  This is what the Sequential skeleton
  runs, and what Table 1 times against the hand-specialised solver.
- :func:`sequential_search_stepped` — the same search driven through
  the resumable :class:`SearchTask` state machine the simulator uses.
  Slower, but the equivalence tests (`tests/core/test_sequential.py`)
  pin both drivers to identical results and metrics, which is what
  licenses the simulator's claim to explore the real tree.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.results import SearchMetrics, SearchResult
from repro.core.searchtypes import Incumbent, SearchType
from repro.core.space import SearchSpec
from repro.core.tasks import SEQ, SearchTask

__all__ = ["sequential_search", "sequential_search_stepped"]


def _package(
    kind: str,
    knowledge,
    goal: bool,
    metrics: SearchMetrics,
    elapsed: float,
) -> SearchResult:
    if isinstance(knowledge, Incumbent):
        return SearchResult(
            kind=kind,
            value=knowledge.value,
            node=knowledge.node,
            found=goal if kind == "decision" else None,
            metrics=metrics,
            wall_time=elapsed,
            workers=1,
        )
    return SearchResult(
        kind=kind, value=knowledge, metrics=metrics, wall_time=elapsed, workers=1
    )


def sequential_search(
    spec: SearchSpec,
    stype: SearchType,
    *,
    max_steps: Optional[int] = None,
) -> SearchResult:
    """Run a complete sequential search of ``spec`` under ``stype``.

    ``max_steps`` optionally bounds the number of node expansions plus
    backtracks (a guard for tests against pathological instances);
    exceeding it raises RuntimeError.
    """
    # Hot loop: bind everything once.  This is Listing 2 verbatim —
    # process the root, then expand/backtrack over a generator stack.
    process = stype.process
    should_prune = stype.should_prune
    is_goal = stype.is_goal
    generator = spec.generator
    space = spec.space
    metrics = SearchMetrics()
    started = time.perf_counter()
    budget = max_steps if max_steps is not None else -1

    node_size = spec.node_size
    knowledge, _ = process(spec, spec.root, knowledge=stype.initial_knowledge(spec))
    metrics.nodes = 1
    metrics.weighted_nodes = node_size(spec.root) if node_size is not None else 1
    goal = False
    if is_goal(knowledge):
        goal = True
    elif should_prune(spec, spec.root, knowledge):
        metrics.prunes = 1
    else:
        stack = [generator(space, spec.root)]
        steps = 0
        nodes = 1
        # Most specs have no node_size; weighted accounting is hoisted
        # out of the loop entirely for them (weighted == nodes then).
        weighted = metrics.weighted_nodes if node_size is not None else 0
        prunes = 0
        backtracks = 0
        max_depth = 1
        weigh = node_size is not None
        while stack:
            gen = stack[-1]
            if gen.has_next():
                child = gen.next()
                knowledge, _ = process(spec, child, knowledge)
                nodes += 1
                if weigh:
                    weighted += node_size(child)
                if is_goal(knowledge):
                    goal = True
                    break
                if should_prune(spec, child, knowledge):
                    prunes += 1
                else:
                    stack.append(generator(space, child))
                    if len(stack) > max_depth:
                        max_depth = len(stack)
            else:
                stack.pop()
                backtracks += 1
            steps += 1
            if steps == budget:
                raise RuntimeError(
                    f"sequential search of {spec.name!r} exceeded {max_steps} steps"
                )
        metrics.nodes = nodes
        metrics.weighted_nodes = weighted if weigh else nodes
        metrics.prunes = prunes
        metrics.backtracks = backtracks
        metrics.max_depth = max_depth

    return _package(
        stype.kind, knowledge, goal, metrics, time.perf_counter() - started
    )


def sequential_search_stepped(
    spec: SearchSpec,
    stype: SearchType,
    *,
    max_steps: Optional[int] = None,
) -> SearchResult:
    """The same search, driven through the SearchTask state machine."""
    task = SearchTask(spec, stype, spec.root, policy=SEQ)
    knowledge = stype.initial_knowledge(spec)
    metrics = SearchMetrics()
    started = time.perf_counter()
    steps = 0
    goal = False
    while not task.finished:
        knowledge, out = task.step(knowledge)
        steps += 1
        if out.processed:
            metrics.nodes += 1
            metrics.weighted_nodes += out.weight
        if out.pruned:
            metrics.prunes += 1
        if out.backtracked:
            metrics.backtracks += 1
        if len(task.stack) > metrics.max_depth:
            metrics.max_depth = len(task.stack)
        if out.goal:
            goal = True
            break
        if max_steps is not None and steps >= max_steps:
            raise RuntimeError(
                f"sequential search of {spec.name!r} exceeded {max_steps} steps"
            )
    return _package(
        stype.kind, knowledge, goal, metrics, time.perf_counter() - started
    )
