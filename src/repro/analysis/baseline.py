"""Committed-baseline support for `repro analyze`.

A baseline is a JSON file of known finding fingerprints.  Gating works
on *new* findings only: anything already in the baseline is reported in
the summary but does not fail the run, which lets the analyzer land on
a codebase with pre-existing findings and ratchet them down over time.
The repo's own baseline (``analysis-baseline.json``) is kept empty —
every real finding is either fixed or carries an inline suppression
with a rationale.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.analysis.core import AnalysisReport
from repro.analysis.findings import Severity

__all__ = ["load_baseline", "save_baseline", "apply_baseline"]

BASELINE_VERSION = 1


def load_baseline(path: Union[str, Path]) -> set[str]:
    """Read a baseline file; returns the set of known fingerprints."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file: {path}")
    return {
        entry["fingerprint"]
        for entry in data.get("findings", [])
        if isinstance(entry, dict) and "fingerprint" in entry
    }


def save_baseline(path: Union[str, Path], report: AnalysisReport) -> int:
    """Write the report's error findings as the new baseline.

    Warnings are never baselined — they do not gate, so freezing them
    would only hide hygiene drift.  Returns the number of entries.
    """
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "symbol": f.symbol,
            "message": f.message,
        }
        for f in report.findings
        if f.severity == Severity.ERROR
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def apply_baseline(
    report: AnalysisReport, known: set[str]
) -> AnalysisReport:
    """Split baselined findings out of *report* (in place) and return it."""
    fresh = []
    baselined = 0
    for finding in report.findings:
        if finding.fingerprint in known:
            baselined += 1
        else:
            fresh.append(finding)
    report.findings = fresh
    report.baselined = baselined
    return report
