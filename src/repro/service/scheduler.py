"""The scheduler: a worker pool draining the job queue.

The flow of one submission::

    submit ──► cache hit? ──────────────► DONE (served from cache)
        └────► twin in flight? ─────────► wait as follower (coalesced)
        └────► queue.push (admission) ──► PENDING ──► worker pops
                                                    ──► backend.execute
                                                    ──► DONE/FAILED/TIMEOUT

Two execution backends implement :class:`Backend`:

- :class:`InProcessBackend` — runs searches in the scheduler's own
  worker threads.  This is the simulator-era backend: deterministic,
  cheap, and the right tool when the "search" is itself a simulated
  cluster run.  Timeouts are cooperative — the sequential skeleton is
  driven through the resumable :class:`SearchTask` machine with a
  periodic deadline/cancel check; simulated parallel skeletons run to
  completion and are marked ``TIMEOUT`` after the fact if they blew
  their deadline (documented best-effort, the thread cannot be killed).
- :class:`ProcessBackend` — one real OS process per attempt via
  :func:`repro.runtime.processes.run_job_in_subprocess`.  Preemptive:
  timeout and cancellation terminate the child, so a runaway search
  cannot poison the pool.

Jobs whose params select ``backend="processes"`` additionally fan the
*search itself* out over worker processes inside the attempt — static
depth-bounded task farming, or the dynamic budget-splitting backend
(:func:`repro.runtime.processes.multiprocessing_budget_search`), whose
worker/split counts surface in the service metrics footer.

Either way the scheduler enforces the same policy: per-job timeout,
cancellation (queued jobs never start; running jobs are interrupted
best-effort), and **one retry on worker crash** — a crash is an
infrastructure failure, a second identical crash is treated as the
job's own fault and reported ``FAILED``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Protocol

from repro.core.results import SearchMetrics, SearchResult
from repro.core.searchtypes import Incumbent
from repro.core.tasks import SEQ, SearchTask
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.queue import AdmissionError, JobQueue

__all__ = [
    "Backend",
    "InProcessBackend",
    "ProcessBackend",
    "JobTimeout",
    "JobCancelled",
    "WorkerCrash",
    "Scheduler",
]


class JobTimeout(Exception):
    """The job exceeded its wall-clock timeout."""


class JobCancelled(Exception):
    """The job's cancel event fired while it was running."""


class WorkerCrash(Exception):
    """The worker executing the job died or raised; retryable once."""


class Backend(Protocol):
    """Executes one job attempt; raises the exceptions above on failure."""

    def execute(
        self,
        job: Job,
        *,
        deadline: Optional[float],
        cancel: Optional[threading.Event],
    ) -> SearchResult:
        """Run one attempt of ``job``; raise JobTimeout / JobCancelled /
        WorkerCrash instead of returning on the corresponding outcome."""
        ...


# How many task steps the cooperative driver runs between deadline and
# cancellation checks.  Small enough for sub-second responsiveness on
# any real instance, large enough to keep the check off the hot path.
_CHECK_EVERY = 256


class InProcessBackend:
    """Run searches inside the scheduler's worker threads."""

    def execute(
        self,
        job: Job,
        *,
        deadline: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
    ) -> SearchResult:
        """Run the attempt in this thread.  Sequential jobs honour the
        deadline/cancel cooperatively; simulated parallel runs cannot be
        preempted and get a late TIMEOUT verdict instead."""
        from repro.runtime.processes import run_library_search

        spec = job.spec
        try:
            if spec.skeleton == "sequential" and (deadline or cancel):
                return self._cooperative_sequential(job, deadline, cancel)
            result = run_library_search(**spec.run_payload())
        except (JobTimeout, JobCancelled):
            raise
        except Exception as exc:
            raise WorkerCrash(f"{type(exc).__name__}: {exc}") from exc
        if deadline is not None and time.monotonic() > deadline:
            # A simulated run cannot be preempted mid-flight; the late
            # verdict is still TIMEOUT so the SLO is reported honestly.
            raise JobTimeout
        return result

    @staticmethod
    def _cooperative_sequential(
        job: Job,
        deadline: Optional[float],
        cancel: Optional[threading.Event],
    ) -> SearchResult:
        """Sequential search via the stepped task machine, checking the
        deadline and cancel event every ``_CHECK_EVERY`` steps and
        reporting incumbent improvements through ``job.on_incumbent``."""
        from repro.core.searchtypes import make_search_type
        from repro.instances.library import spec_for

        spec = job.spec
        search_spec, default_type, default_kwargs = spec_for(spec.instance)
        stype_name = spec.search_type or default_type
        kwargs = dict(default_kwargs) if stype_name == default_type else {}
        kwargs.update(spec.stype_kwargs)
        stype = make_search_type(stype_name, **kwargs)

        task = SearchTask(search_spec, stype, search_spec.root, policy=SEQ)
        knowledge = stype.initial_knowledge(search_spec)
        metrics = SearchMetrics()
        started = time.perf_counter()
        steps = 0
        goal = False
        last_value = (
            knowledge.value if isinstance(knowledge, Incumbent) else None
        )
        while not task.finished:
            knowledge, out = task.step(knowledge)
            steps += 1
            if (
                job.on_incumbent is not None
                and isinstance(knowledge, Incumbent)
                and knowledge.value != last_value
            ):
                last_value = knowledge.value
                job.on_incumbent(knowledge.value)
            if out.processed:
                metrics.nodes += 1
                metrics.weighted_nodes += out.weight
            if out.pruned:
                metrics.prunes += 1
            if out.backtracked:
                metrics.backtracks += 1
            if len(task.stack) > metrics.max_depth:
                metrics.max_depth = len(task.stack)
            if out.goal:
                goal = True
                break
            if steps % _CHECK_EVERY == 0:
                if cancel is not None and cancel.is_set():
                    raise JobCancelled
                if deadline is not None and time.monotonic() >= deadline:
                    raise JobTimeout
        elapsed = time.perf_counter() - started
        if isinstance(knowledge, Incumbent):
            return SearchResult(
                kind=stype.kind,
                value=knowledge.value,
                node=knowledge.node,
                found=goal if stype.kind == "decision" else None,
                metrics=metrics,
                wall_time=elapsed,
                workers=1,
            )
        return SearchResult(
            kind=stype.kind,
            value=knowledge,
            metrics=metrics,
            wall_time=elapsed,
            workers=1,
        )


class ProcessBackend:
    """One OS process per attempt — preemptive timeout and cancel."""

    def __init__(self, *, poll_interval: float = 0.02) -> None:
        self.poll_interval = poll_interval

    def execute(
        self,
        job: Job,
        *,
        deadline: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
    ) -> SearchResult:
        """Run the attempt in a dedicated child process, terminating it
        on deadline or cancellation."""
        from repro.runtime.processes import run_job_in_subprocess

        timeout = None if deadline is None else max(0.0, deadline - time.monotonic())
        status, value = run_job_in_subprocess(
            job.spec.run_payload(),
            timeout=timeout,
            cancel=cancel,
            poll_interval=self.poll_interval,
        )
        if status == "ok":
            return value
        if status == "timeout":
            raise JobTimeout
        if status == "cancelled":
            raise JobCancelled
        raise WorkerCrash(str(value))


class Scheduler:
    """Submission front door + worker pool over a :class:`JobQueue`.

    Args:
        backend: execution backend (default :class:`InProcessBackend`).
        queue: admission-controlled queue (default: depth 256).
        cache: result cache (default: 256 entries, no TTL).
        n_workers: worker pool size for :meth:`run_until_idle` /
            :meth:`start`.
        metrics: a :class:`ServiceMetrics` to report into.
        clock: time source for latencies/timeouts (injectable in tests).
        name: prefix for generated job ids (``name="s0-"`` yields
            ``s0-j0001``) — lets a shard router hand out globally
            unique ids across many schedulers.
        on_event: lifecycle event sink, called as
            ``on_event(job, event, data)`` with ``event`` one of
            ``queued / coalesced / rejected / leased / incumbent /
            done / failed / cancelled / timeout``.  Fired from worker
            threads, sometimes with the scheduler lock held: sinks must
            be fast and must not call back into the scheduler.
    """

    def __init__(
        self,
        *,
        backend: Optional[Backend] = None,
        queue: Optional[JobQueue] = None,
        cache: Optional[ResultCache] = None,
        n_workers: int = 2,
        metrics: Optional[ServiceMetrics] = None,
        clock: Callable[[], float] = time.monotonic,
        name: str = "",
        on_event: Optional[Callable[[Job, str, dict], None]] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.backend: Backend = backend if backend is not None else InProcessBackend()
        # The queue and cache are single-threaded structures; every use
        # must hold the scheduler lock (directly or via the condition,
        # which wraps the same RLock).
        self.queue = queue if queue is not None else JobQueue()  # guarded-by: _lock|_work
        self.cache = cache if cache is not None else ResultCache()  # guarded-by: _lock|_work
        self.n_workers = n_workers
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._clock = clock
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}  # guarded-by: _lock|_work
        self._running = 0  # guarded-by: _lock|_work
        self._seq = 0  # guarded-by: _lock|_work
        self.name = name
        self.on_event = on_event
        self._stopping = False  # guarded-by: _lock|_work
        self._threads: list[threading.Thread] = []

    def _emit(self, job: Job, event: str, **data) -> None:
        """Report a lifecycle event to the sink (never raises)."""
        if self.on_event is None:
            return
        try:
            self.on_event(job, event, data)
        except Exception:  # a broken sink must not kill a worker
            pass

    # -- submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        """Admit one job; returns its (possibly already terminal) record.

        Raises ValueError for malformed specs (unknown instance, app
        mismatch) — caller errors.  Backpressure does *not* raise: a
        rejected job comes back ``FAILED`` with the admission reason in
        ``job.error`` and is counted in the ``rejected`` metric, so a
        batch submitter can keep going and report per-job outcomes.
        """
        self._validate(spec)
        with self._lock:
            self._seq += 1
            job = Job(
                spec, id=f"{self.name}j{self._seq:04d}", submitted_at=self._clock()
            )
            self._jobs[job.id] = job
            self.metrics.job_submitted()

            cached = self.cache.get(spec.key)
            if cached is not None:
                job.from_cache = True
                job.result = cached
                self._finish(job, JobState.DONE)
                return job

            leader = self.cache.leader_of(spec.key)
            if leader is not None:
                job.coalesced_into = self.cache.join(spec.key, job.id)
                self.metrics.job_coalesced()
                self._emit(job, "coalesced", leader=job.coalesced_into)
                return job  # stays PENDING until the leader lands

            if self._stopping:
                job.error = "rejected: scheduler is draining"
                self.metrics.job_rejected()
                self._emit(job, "rejected", reason="scheduler is draining")
                self._finish(job, JobState.FAILED)
                return job
            try:
                self.queue.push(job)
            except AdmissionError as exc:
                job.error = f"rejected: {exc.reason}"
                self.metrics.job_rejected()
                self._emit(job, "rejected", reason=exc.reason)
                self._finish(job, JobState.FAILED)
                return job
            self.cache.lead(spec.key, job.id)
            self._emit(job, "queued", queue_depth=self.queue.depth())
            self._work.notify()
            return job

    @staticmethod
    def _validate(spec: JobSpec) -> None:
        from repro.instances.library import _entry

        try:
            entry = _entry(spec.instance)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        if entry.app != spec.app:
            raise ValueError(
                f"instance {spec.instance!r} belongs to application "
                f"{entry.app!r}, not {spec.app!r}"
            )

    def job(self, job_id: str) -> Job:
        """Look up a job record by id."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> list[Job]:
        """All job records, in submission order.

        Takes the scheduler lock: gateway threads call this while
        worker threads insert new records, and iterating a dict that
        grows concurrently raises ``RuntimeError: dictionary changed
        size during iteration``.
        """
        with self._lock:
            # Ids are f"{name}j{seq:04d}"; sort on the numeric tail so
            # prefixed (sharded) ids like "s0-j0001" order correctly.
            return [
                self._jobs[k]
                for k in sorted(
                    self._jobs, key=lambda k: int(k.rsplit("j", 1)[-1])
                )
            ]

    # -- cancellation --------------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a job.  Queued jobs never run; running jobs are
        interrupted best-effort (preemptively under the process
        backend).  Returns True if cancellation took or was initiated."""
        with self._lock:
            job = self._jobs[job_id]
            if job.terminal:
                return False
            if job.state is JobState.PENDING:
                if job.coalesced_into is not None:
                    self.cache.drop_follower(job.key, job.id)
                    self._finish(job, JobState.CANCELLED)
                    return True
                # Queued leader: tombstone it (queue.pop skips it) and
                # promote its first follower, if any, into the queue so
                # the coalesced work still happens.
                self._finish(job, JobState.CANCELLED)
                followers = self.cache.finish(job.key)
                self._promote(followers)
                return True
            # RUNNING: signal the backend.
            if job.cancel_event is not None:
                job.cancel_event.set()
                return True
            return False

    def _promote(self, follower_ids: list[str]) -> None:  # repro: holds[_lock]
        """Re-queue the first live follower as the new leader for its
        key; later followers re-join it (lock held by caller)."""
        live = [
            self._jobs[fid]
            for fid in follower_ids
            if not self._jobs[fid].terminal
        ]
        if not live:
            return
        new_leader, rest = live[0], live[1:]
        new_leader.coalesced_into = None
        try:
            self.queue.push(new_leader)
        except AdmissionError as exc:
            new_leader.error = f"rejected: {exc.reason}"
            self.metrics.job_rejected()
            self._emit(new_leader, "rejected", reason=exc.reason)
            self._finish(new_leader, JobState.FAILED)
            self._promote([j.id for j in rest])
            return
        self.cache.lead(new_leader.key, new_leader.id)
        self._emit(new_leader, "queued", queue_depth=self.queue.depth())
        self._work.notify()
        for job in rest:
            job.coalesced_into = self.cache.join(job.key, job.id)

    # -- long-running service mode -------------------------------------------

    def start(self) -> None:
        """Start ``n_workers`` long-lived worker threads that serve the
        queue until :meth:`stop` — the mode a network front door runs
        the scheduler in, where submissions arrive concurrently and
        forever rather than from a finite job file."""
        with self._lock:
            if self._threads:
                raise RuntimeError("scheduler already started")
            self._stopping = False
        self._threads = [
            threading.Thread(
                target=self._serve_loop,
                name=f"{self.name or 'svc-'}worker-{i}",
                daemon=True,
            )
            for i in range(self.n_workers)
        ]
        for t in self._threads:
            t.start()

    def _serve_loop(self) -> None:
        while True:
            with self._work:
                job = self.queue.pop()
                while job is None and not self._stopping:
                    self._work.wait(timeout=0.2)
                    job = self.queue.pop()
                if job is None:
                    return
            self._run_job(job)

    def stop(self, *, timeout: Optional[float] = 30.0) -> None:
        """Drain and stop the long-lived workers.

        In-flight jobs run to completion; jobs still *queued* are
        cancelled (``error="cancelled: scheduler shutting down"``) so
        their submitters' status streams terminate instead of hanging,
        and new submissions are rejected from this point on.
        Idempotent.
        """
        with self._work:
            self._stopping = True
            while True:
                job = self.queue.pop()
                if job is None:
                    break
                job.error = "cancelled: scheduler shutting down"
                self._finish(job, JobState.CANCELLED)
                for fid in self.cache.finish(job.key):
                    follower = self._jobs[fid]
                    if follower.terminal:
                        continue
                    follower.error = (
                        f"coalesced with {job.id}, cancelled at shutdown"
                    )
                    self._finish(follower, JobState.CANCELLED)
            self._work.notify_all()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = []

    # -- execution -----------------------------------------------------------

    def run_until_idle(self) -> list[Job]:
        """Drain the queue with ``n_workers`` worker threads; returns all
        job records once every submitted job is terminal."""
        workers = [
            threading.Thread(target=self._worker_loop, name=f"svc-worker-{i}")
            for i in range(self.n_workers)
        ]
        for t in workers:
            t.start()
        for t in workers:
            t.join()
        return self.jobs()

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                job = self.queue.pop()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            if job.state is not JobState.PENDING:  # cancelled in the gap
                return
            job.cancel_event = threading.Event()
            job.on_incumbent = lambda value: self._emit(
                job, "incumbent", value=value
            )
            job.transition(JobState.RUNNING, now=self._clock())
            self._running += 1
            self.metrics.job_executed()
        self._emit(job, "leased", worker=threading.current_thread().name)
        spec = job.spec
        deadline = (
            None if spec.timeout is None else time.monotonic() + spec.timeout
        )
        result: Optional[SearchResult] = None
        outcome = JobState.DONE
        for attempt in (1, 2):
            job.attempts = attempt
            try:
                result = self.backend.execute(
                    job, deadline=deadline, cancel=job.cancel_event
                )
                outcome = JobState.DONE
                break
            except JobTimeout:
                outcome = JobState.TIMEOUT
                job.error = (
                    f"timeout: exceeded {spec.timeout:.3f}s"
                    if spec.timeout is not None
                    else "timeout"
                )
                break
            except JobCancelled:
                outcome = JobState.CANCELLED
                job.error = "cancelled while running"
                break
            except WorkerCrash as exc:
                job.error = f"worker crash: {exc}"
                if attempt == 1:
                    self.metrics.job_retried()
                    continue  # the one retry
                outcome = JobState.FAILED
        with self._lock:
            self._running -= 1
            if outcome is JobState.DONE and result is not None:
                job.result = result
                job.error = None
                self.cache.put(job.key, result)
            self._finish(job, outcome)
            followers = self.cache.finish(job.key)
            self._resolve_followers(job, followers)

    def _resolve_followers(  # repro: holds[_lock]
        self, leader: Job, follower_ids: list[str]
    ) -> None:
        """Fan the leader's outcome out to coalesced followers (lock held).

        A DONE leader serves its followers from the cache (each counts
        as a cache hit — that is the point of coalescing).  A leader
        that failed, timed out or was cancelled takes its followers with
        it: they asked for the identical computation, so re-running it
        would fail identically (retries already happened on the leader).
        """
        for fid in follower_ids:
            follower = self._jobs[fid]
            if follower.terminal:
                continue
            if leader.state is JobState.DONE:
                follower.result = leader.result
                follower.from_cache = True
                self.cache.record_coalesced_hit()
                self._finish(follower, JobState.DONE)
            else:
                follower.error = (
                    f"coalesced with {leader.id}, which ended "
                    f"{leader.state.value}: {leader.error or ''}".rstrip(": ")
                )
                terminal = (
                    leader.state
                    if leader.state in (JobState.CANCELLED,)
                    else JobState.FAILED
                )
                self._finish(follower, terminal)

    def _finish(self, job: Job, state: JobState) -> None:
        job.transition(state, now=self._clock())
        self.metrics.job_finished(job)
        data: dict = {"state": state.value, "from_cache": job.from_cache}
        if job.result is not None:
            data["value"] = job.result.value
        if job.error:
            data["error"] = job.error
        lat = job.latency()
        if lat is not None:
            data["latency"] = lat
        self._emit(job, state.value.lower(), **data)

    # -- reporting -----------------------------------------------------------

    def metrics_snapshot(self) -> MetricsSnapshot:
        """The service-level metrics snapshot (queue, cache, latencies)."""
        with self._lock:
            return self.metrics.snapshot(
                queue_depth=self.queue.depth(),
                running=self._running,
                cache=self.cache,
            )
