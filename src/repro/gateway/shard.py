"""Sharded coordinators behind one front door.

One scheduler/coordinator pair runs one job at a time well; production
traffic wants N of them.  :class:`ShardRouter` owns N independent
shards — each a full :class:`~repro.service.scheduler.Scheduler` with
its own bounded queue, result cache, metrics and execution backend —
and routes every submission by its **content-addressed job hash**:

    shard(spec) = int(spec.key[:16], 16) % n_shards

The routing rule is the deduplication story at scale: two clients
submitting the identical search always land on the *same* shard, so
they hit that shard's result cache or coalesce onto its in-flight twin
(one execution, two results), while *independent* jobs scatter across
shards and run concurrently.  The hash is deterministic across
processes and restarts, so a load balancer in front of several gateways
could apply the same rule.

Job ids are globally unique: shard ``i`` issues ``s{i}-j{seq}``, and the
router parses the prefix back out on lookup, so ``GET /jobs/{id}`` needs
no global registry.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Optional

from repro.gateway.events import EventBroker
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobSpec
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.queue import JobQueue
from repro.service.scheduler import Backend, Scheduler

__all__ = ["Shard", "ShardRouter", "shard_of_key"]


def shard_of_key(key: str, n_shards: int) -> int:
    """The deterministic shard index for a canonical job hash."""
    return int(key[:16], 16) % n_shards


class Shard:
    """One scheduler shard: queue + cache + metrics + backend + workers."""

    def __init__(
        self,
        index: int,
        *,
        backend: Optional[Backend],
        broker: Optional[EventBroker],
        pool: int,
        queue_depth: int,
        per_submitter: Optional[int],
        cache_size: int,
        cache_ttl: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.index = index
        self.backend = backend
        self.broker = broker
        on_event = None
        if broker is not None:
            def on_event(job: Job, event: str, data: dict) -> None:
                broker.publish(job.id, event, shard=index, **data)
        self.scheduler = Scheduler(
            backend=backend,
            queue=JobQueue(max_depth=queue_depth, max_per_submitter=per_submitter),
            cache=ResultCache(capacity=cache_size, ttl=cache_ttl),
            n_workers=pool,
            metrics=ServiceMetrics(),
            clock=clock,
            name=f"s{index}-",
            on_event=on_event,
        )

    def snapshot(self) -> MetricsSnapshot:
        """This shard's consistent service-metrics snapshot."""
        return self.scheduler.metrics_snapshot()

    def load_stats(self) -> Optional[dict]:
        """The backend's coordinator load snapshot, if it has one."""
        loader = getattr(self.backend, "load_stats", None)
        if loader is None:
            return None
        try:
            return loader()
        except Exception:
            return None  # a mid-teardown coordinator is not a scrape error

    def close(self) -> None:
        """Stop workers and close the backend (idempotent)."""
        self.scheduler.stop()
        closer = getattr(self.backend, "close", None)
        if closer is not None:
            closer()


class ShardRouter:
    """Route submissions across N scheduler shards by job hash.

    Args:
        n_shards: shard count (the modulus of the routing rule).
        backend_factory: called with each shard index to build that
            shard's execution backend; None gives every shard the
            default in-process backend.  Per-shard backends are what
            isolate cluster coordinators from one another.
        pool: scheduler worker threads per shard.
        queue_depth / per_submitter: per-shard admission bounds.
        cache_size / cache_ttl: per-shard result cache shape.
        broker: the event hub status streams subscribe to.
        clock: scheduler time source (injectable in tests).
    """

    def __init__(
        self,
        n_shards: int = 1,
        *,
        backend_factory: Optional[Callable[[int], Optional[Backend]]] = None,
        pool: int = 2,
        queue_depth: int = 256,
        per_submitter: Optional[int] = None,
        cache_size: int = 256,
        cache_ttl: Optional[float] = None,
        broker: Optional[EventBroker] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.broker = broker if broker is not None else EventBroker()
        self.shards = [
            Shard(
                i,
                backend=backend_factory(i) if backend_factory else None,
                broker=self.broker,
                pool=pool,
                queue_depth=queue_depth,
                per_submitter=per_submitter,
                cache_size=cache_size,
                cache_ttl=cache_ttl,
                clock=clock,
            )
            for i in range(n_shards)
        ]
        self._started = False

    @property
    def n_shards(self) -> int:
        """How many shards are behind this router."""
        return len(self.shards)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start every shard's long-lived worker pool."""
        for shard in self.shards:
            shard.scheduler.start()
        self._started = True

    def close(self) -> None:
        """Drain in-flight jobs, cancel queued ones, stop every shard."""
        for shard in self.shards:
            shard.close()
        self._started = False

    # -- routing -------------------------------------------------------------

    def route(self, spec: JobSpec) -> int:
        """The shard index this spec's hash routes to."""
        return shard_of_key(spec.key, len(self.shards))

    def submit(self, spec: JobSpec) -> tuple[int, Job]:
        """Admit one job on its hash-routed shard."""
        index = self.route(spec)
        return index, self.shards[index].scheduler.submit(spec)

    def job(self, job_id: str) -> tuple[int, Job]:
        """Look up ``(shard_index, job)`` by global id; raises KeyError."""
        if not job_id.startswith("s") or "-" not in job_id:
            raise KeyError(job_id)
        prefix = job_id.split("-", 1)[0][1:]
        if not prefix.isdigit():
            raise KeyError(job_id)
        index = int(prefix)
        if index >= len(self.shards):
            raise KeyError(job_id)
        return index, self.shards[index].scheduler.job(job_id)

    # -- reporting -----------------------------------------------------------

    def snapshots(self) -> Mapping[str, MetricsSnapshot]:
        """Shard label -> consistent metrics snapshot, for ``/metrics``."""
        return {str(s.index): s.snapshot() for s in self.shards}

    def load_stats(self) -> Mapping[str, dict]:
        """Shard label -> coordinator load stats (cluster shards only)."""
        out = {}
        for shard in self.shards:
            stats = shard.load_stats()
            if stats is not None:
                out[str(shard.index)] = stats
        return out

    def in_flight(self) -> int:
        """Jobs currently queued or running across all shards."""
        total = 0
        for shard in self.shards:
            snap = shard.snapshot()
            total += snap.queue_depth + snap.running
        return total
