"""Table 2: 18 alternate parallelisations — worst/random/best speedups.

The paper runs 6 applications x 3 skeletons on 120 workers (8
localities), sweeping each skeleton's tuning parameter (d_cutoff 0..8,
budget 1e4..1e7) and reporting worst / random / best geometric-mean
speedup over the Sequential skeleton.  Headlines: no skeleton wins
everywhere; bad parameters are catastrophic (0.89x vs 91.7x for
MaxClique Depth-Bounded); Stack-Stealing's lack of knobs makes it the
safe default; NS defeats Depth-Bounded entirely (narrow root).

This bench reproduces the full matrix at library scale, plus a fourth
row per application for the Ordered coordination (Replicable BnB),
which pays a sequential phase-1 prefix and in-order finalisation for
its determinism guarantee — the interesting question is how much.
Budgets are scaled to the instances (our searches backtrack thousands,
not billions, of times).  Expected shape: wide worst-to-best spread
for Depth-Bounded and Budget, narrow spread for Stack-Stealing, and
Depth-Bounded near 1x on NS.

A cell that raises is recorded and fails the bench at the end — a
coordination that cannot run an application is a finding, never a
silent hole in the matrix.
"""

from repro.core.params import SkeletonParams
from repro.core.tasks import STACK

from ._harness import FULL, fmt_row, sequential_baseline, run_parallel, table2_suite, write_result
from repro.util.stats import SweepSummary

LOCALITIES = 8
WORKERS = 15  # x 8 localities = 120 workers, as in the paper

APPS = ["maxclique", "tsp", "knapsack", "sip", "ns", "uts"]

if FULL:
    D_CUTOFFS = [1, 2, 3, 4, 5, 6]
    BUDGETS = [10, 50, 250, 1000, 5000]
    CHUNKED = [True, False]
else:
    D_CUTOFFS = [1, 2, 4]
    BUDGETS = [20, 200, 2000]
    CHUNKED = [True, False]


SKELETONS = ("depthbounded", "stacksteal", "budget", "ordered")


def sweep_points(skeleton: str):
    if skeleton in ("depthbounded", "ordered"):
        return [("d_cutoff", d) for d in D_CUTOFFS]
    if skeleton == "budget":
        return [("budget", b) for b in BUDGETS]
    return [("chunked", c) for c in CHUNKED]


def test_table2_parallelisations(benchmark):
    rows: list[tuple[str, str, float, float, float]] = []
    errors: list[str] = []

    def run_all():
        for app in APPS:
            baselines = {
                name: sequential_baseline(name)[0] for name in table2_suite(app)
            }
            for skeleton in SKELETONS:
                summary = SweepSummary(rng_seed=hash((app, skeleton)) & 0xFFFF)
                for name in table2_suite(app):
                    for knob, value in sweep_points(skeleton):
                        params = SkeletonParams(
                            localities=LOCALITIES,
                            workers_per_locality=WORKERS,
                        ).with_(**{knob: value})
                        try:
                            res = run_parallel(name, skeleton, params)
                        except Exception as exc:  # noqa: BLE001
                            errors.append(
                                f"{app}/{skeleton}/{name} {knob}={value}: "
                                f"{type(exc).__name__}: {exc}"
                            )
                            continue
                        summary.add(name, value, baselines[name] / res.virtual_time)
                rows.append(
                    (app, skeleton, summary.worst(), summary.random(), summary.best())
                )

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = [10, 14, 9, 9, 9]
    lines = [
        f"Table 2: alternate parallelisations, {LOCALITIES * WORKERS} workers "
        f"({LOCALITIES} localities)",
        "geometric-mean speedup over the Sequential skeleton",
        fmt_row(["app", "skeleton", "worst", "random", "best"], widths),
    ]
    for app, skeleton, worst, random_, best in rows:
        lines.append(
            fmt_row(
                [app, skeleton, f"{worst:.2f}", f"{random_:.2f}", f"{best:.2f}"],
                widths,
            )
        )
    # The paper's "All" summary block: geo-mean across applications.
    from repro.util.stats import geometric_mean as _geo

    for skeleton in SKELETONS:
        per_app = [r for r in rows if r[1] == skeleton]
        lines.append(
            fmt_row(
                [
                    "All",
                    skeleton,
                    f"{_geo([r[2] for r in per_app]):.2f}",
                    f"{_geo([r[3] for r in per_app]):.2f}",
                    f"{_geo([r[4] for r in per_app]):.2f}",
                ],
                widths,
            )
        )
    lines.append(
        "paper shape: wide worst/best spread for Depth-Bounded & Budget, "
        "narrow for Stack-Stealing; Ordered pays its determinism tax; "
        "no skeleton best everywhere"
    )
    write_result("table2_parallelisations", lines)

    # Every cell either produced a speedup or is listed here: a
    # coordination that cannot run an application fails the matrix.
    assert not errors, "\n".join(errors)

    by_key = {(app, sk): (w, r, b) for app, sk, w, r, b in rows}
    # Stack-Stealing's worst-to-best spread is narrower than
    # Depth-Bounded's (it has almost nothing to mis-tune).
    dbspread = [by_key[(a, "depthbounded")][2] / by_key[(a, "depthbounded")][0] for a in APPS]
    ssspread = [by_key[(a, "stacksteal")][2] / by_key[(a, "stacksteal")][0] for a in APPS]
    assert sum(ssspread) < sum(dbspread)
    # Every app has at least one skeleton with a real best-case speedup.
    for app in APPS:
        assert max(by_key[(app, sk)][2] for sk in SKELETONS) > 2.0, app
    # The acceptance cell: on the irregular UTS trees, knob-free
    # stack-stealing must beat even budget's best-tuned point.
    assert by_key[("uts", "stacksteal")][0] > by_key[("uts", "budget")][2]
