"""Unit and property tests for int-backed bitsets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    bit_indices,
    bitset_from_iterable,
    count_bits,
    first_bit,
    highest_bit,
    mask_below,
    singleton,
    without_bit,
)

small_sets = st.frozensets(st.integers(min_value=0, max_value=200), max_size=40)


class TestConstruction:
    def test_empty(self):
        assert bitset_from_iterable([]) == 0

    def test_single(self):
        assert bitset_from_iterable([3]) == 0b1000

    def test_multiple(self):
        assert bitset_from_iterable([0, 2, 5]) == 0b100101

    def test_duplicates_collapse(self):
        assert bitset_from_iterable([1, 1, 1]) == 0b10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bitset_from_iterable([-1])

    def test_singleton(self):
        assert singleton(0) == 1
        assert singleton(7) == 128

    def test_singleton_negative_rejected(self):
        with pytest.raises(ValueError):
            singleton(-2)

    def test_mask_below(self):
        assert mask_below(0) == 0
        assert mask_below(1) == 1
        assert mask_below(4) == 0b1111

    def test_mask_below_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_below(-1)


class TestQueries:
    def test_count_empty(self):
        assert count_bits(0) == 0

    def test_count(self):
        assert count_bits(0b101101) == 4

    def test_first_bit_empty(self):
        assert first_bit(0) == -1

    def test_first_bit(self):
        assert first_bit(0b101000) == 3

    def test_highest_bit_empty(self):
        assert highest_bit(0) == -1

    def test_highest_bit(self):
        assert highest_bit(0b101000) == 5

    def test_without_bit(self):
        assert without_bit(0b1110, 2) == 0b1010

    def test_without_absent_bit_is_noop(self):
        assert without_bit(0b1010, 0) == 0b1010

    def test_bit_indices_order(self):
        assert list(bit_indices(0b101101)) == [0, 2, 3, 5]

    def test_bit_indices_empty(self):
        assert list(bit_indices(0)) == []


class TestProperties:
    @given(small_sets)
    def test_roundtrip(self, s):
        assert set(bit_indices(bitset_from_iterable(s))) == set(s)

    @given(small_sets)
    def test_count_matches_cardinality(self, s):
        assert count_bits(bitset_from_iterable(s)) == len(s)

    @given(small_sets)
    def test_first_and_highest_are_min_max(self, s):
        bits = bitset_from_iterable(s)
        if s:
            assert first_bit(bits) == min(s)
            assert highest_bit(bits) == max(s)
        else:
            assert first_bit(bits) == -1

    @given(small_sets, small_sets)
    def test_intersection_is_set_intersection(self, a, b):
        bits = bitset_from_iterable(a) & bitset_from_iterable(b)
        assert set(bit_indices(bits)) == a & b

    @given(small_sets, small_sets)
    def test_union_is_set_union(self, a, b):
        bits = bitset_from_iterable(a) | bitset_from_iterable(b)
        assert set(bit_indices(bits)) == a | b

    @given(small_sets, st.integers(min_value=0, max_value=200))
    def test_without_bit_removes(self, s, i):
        bits = without_bit(bitset_from_iterable(s), i)
        assert set(bit_indices(bits)) == s - {i}

    @given(st.integers(min_value=0, max_value=300))
    def test_mask_below_contains_exactly_prefix(self, n):
        assert set(bit_indices(mask_below(n))) == set(range(n))

    @given(small_sets)
    def test_iteration_ascending(self, s):
        out = list(bit_indices(bitset_from_iterable(s)))
        assert out == sorted(out)
