"""The seven search applications of the evaluation (paper Section 5.1).

Enumeration: :mod:`repro.apps.uts` (Unbalanced Tree Search),
:mod:`repro.apps.semigroups` (Numerical Semigroups).
Optimisation: :mod:`repro.apps.maxclique` (Maximum Clique),
:mod:`repro.apps.knapsack` (0/1 Knapsack), :mod:`repro.apps.tsp`
(Travelling Salesperson).
Decision: :mod:`repro.apps.sip` (Subgraph Isomorphism),
:mod:`repro.apps.kclique` (k-Clique).

Each module exports a ``*_spec`` factory building a
:class:`repro.core.SearchSpec` from instance data — the Lazy Node
Generator plus objective/bound for that problem — so any of the 12
skeletons can run it (Figure 3).
"""

from repro.apps.graph import Graph
from repro.apps.kclique import kclique_spec, solve_kclique
from repro.apps.knapsack import KnapsackInstance, knapsack_spec
from repro.apps.maxclique import maxclique_spec, sequential_maxclique_specialised
from repro.apps.semigroups import SemigroupInstance, semigroups_spec
from repro.apps.sip import SIPInstance, sip_spec, solve_sip
from repro.apps.tsp import TSPInstance, tour_length, tsp_spec
from repro.apps.uts import UTSInstance, uts_spec

__all__ = [
    "Graph",
    "kclique_spec",
    "solve_kclique",
    "KnapsackInstance",
    "knapsack_spec",
    "maxclique_spec",
    "sequential_maxclique_specialised",
    "SemigroupInstance",
    "semigroups_spec",
    "SIPInstance",
    "sip_spec",
    "solve_sip",
    "TSPInstance",
    "tour_length",
    "tsp_spec",
    "UTSInstance",
    "uts_spec",
]
