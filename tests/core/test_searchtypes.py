"""Tests for the Enumeration / Optimisation / Decision search types."""

import pytest

from repro.core.searchtypes import (
    Decision,
    Enumeration,
    Incumbent,
    Optimisation,
    make_search_type,
)

from .conftest import make_toy_spec


@pytest.fixture
def spec(toy_spec):
    return toy_spec


class TestEnumeration:
    def test_initial_zero(self, spec):
        assert Enumeration().initial_knowledge(spec) == 0

    def test_process_accumulates(self, spec):
        e = Enumeration()
        k, improved = e.process(spec, "b", 10)
        assert k == 15
        assert improved is False  # accumulators are never broadcast

    def test_combine_is_monoid_plus(self):
        assert Enumeration().combine(3, 4) == 7

    def test_custom_monoid(self, spec):
        # max-monoid enumeration: a histogram-style fold
        e = Enumeration(plus=max, zero=-1)
        k, _ = e.process(spec, "ca", 3)
        assert k == 7

    def test_never_prunes(self, spec):
        assert not Enumeration().should_prune(spec, "a", 0)

    def test_never_goal(self):
        assert not Enumeration().is_goal(123)


class TestOptimisation:
    def test_initial_is_root_incumbent(self, spec):
        inc = Optimisation().initial_knowledge(spec)
        assert inc == Incumbent(0, "root")

    def test_strengthen(self, spec):
        o = Optimisation()
        inc, improved = o.process(spec, "b", Incumbent(1, "a"))
        assert improved
        assert inc == Incumbent(5, "b")

    def test_skip_on_equal(self, spec):
        o = Optimisation()
        inc, improved = o.process(spec, "ab", Incumbent(2, "c"))
        assert not improved
        assert inc == Incumbent(2, "c")

    def test_combine_keeps_max(self):
        o = Optimisation()
        assert o.combine(Incumbent(3, "x"), Incumbent(5, "y")) == Incumbent(5, "y")
        assert o.combine(Incumbent(5, "y"), Incumbent(3, "x")) == Incumbent(5, "y")

    def test_prune_when_bound_cannot_beat(self, spec):
        o = Optimisation()
        # subtree under "a" maxes at 3; incumbent 5 dominates
        assert o.should_prune(spec, "a", Incumbent(5, "b"))

    def test_no_prune_when_bound_can_beat(self, spec):
        o = Optimisation()
        assert not o.should_prune(spec, "c", Incumbent(5, "b"))  # bound 7 > 5

    def test_no_prune_without_bound_function(self, toy_spec_unbounded):
        o = Optimisation()
        assert not o.should_prune(toy_spec_unbounded, "a", Incumbent(100, "b"))

    def test_never_goal(self):
        assert not Optimisation().is_goal(Incumbent(10, "x"))


class TestDecision:
    def test_initial_clips_to_target(self, spec):
        d = Decision(target=3)
        inc = d.initial_knowledge(spec)
        assert inc.value == 0

    def test_process_clips(self, spec):
        d = Decision(target=3)
        inc, improved = d.process(spec, "ca", Incumbent(0, "root"))
        assert inc.value == 3  # h=7 clipped to target
        assert improved

    def test_goal_at_target(self):
        d = Decision(target=3)
        assert d.is_goal(Incumbent(3, "w"))
        assert not d.is_goal(Incumbent(2, "w"))

    def test_prune_when_target_unreachable(self, spec):
        d = Decision(target=9)
        # bound of "a" subtree is 3 < 9: cannot ever reach the target
        assert d.should_prune(spec, "a", Incumbent(0, "root"))

    def test_prune_when_cannot_improve_incumbent(self, spec):
        d = Decision(target=7)
        assert d.should_prune(spec, "a", Incumbent(5, "b"))

    def test_no_prune_when_target_reachable(self, spec):
        d = Decision(target=7)
        assert not d.should_prune(spec, "c", Incumbent(0, "root"))

    def test_combine(self):
        d = Decision(target=5)
        assert d.combine(Incumbent(1, "a"), Incumbent(4, "b")).value == 4


class TestFactory:
    def test_enumeration(self):
        assert make_search_type("enumeration").kind == "enumeration"

    def test_optimisation(self):
        assert make_search_type("optimisation").kind == "optimisation"

    def test_decision(self):
        st = make_search_type("decision", target=4)
        assert st.kind == "decision"
        assert st.target == 4

    def test_decision_requires_target(self):
        with pytest.raises(ValueError):
            make_search_type("decision")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_search_type("approximation")
