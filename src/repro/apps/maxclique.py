"""Maximum Clique — the paper's flagship optimisation application.

Implements the state-of-the-art branch-and-bound algorithm of Listing 1
(McCreesh & Prosser's MCSa1 [26]): nodes carry the current clique, the
candidate set, and a greedy-colouring upper bound; the Lazy Node
Generator colours the parent's candidates and yields children in
*reverse colour order* (heuristically best first), pruning any child
whose ``size + colour bound`` cannot beat the incumbent.

Besides the skeleton-ready :func:`maxclique_spec`, the module provides
:func:`sequential_maxclique_specialised` — a hand-specialised in-place
recursive solver of the same algorithm.  It plays the role of the
hand-written C++ implementation [25] in Table 1: comparing its wall time
against the Sequential skeleton measures the cost of the generator
abstraction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.apps.graph import Graph
from repro.core.nodegen import NodeGenerator
from repro.core.space import SearchSpec
from repro.util.bitset import bit_indices, count_bits, mask_below

__all__ = [
    "CliqueNode",
    "CliqueGen",
    "greedy_colour",
    "maxclique_spec",
    "degree_order",
    "sequential_maxclique_specialised",
    "SpecialisedResult",
]


def degree_order(graph: Graph) -> list[int]:
    """Vertices by non-increasing degree (ties by index) — the standard
    initial heuristic order for clique search [26]."""
    return sorted(range(graph.n), key=lambda v: (-graph.degree(v), v))


def greedy_colour(graph: Graph, candidates: int) -> tuple[list[int], list[int]]:
    """Greedy sequential colouring of the subgraph induced by ``candidates``.

    Returns ``(p_vertex, p_colour)`` exactly as in Listing 1:
    ``p_vertex`` enumerates the candidate vertices colour class by
    colour class, and ``p_colour[i]`` is the number of colours used to
    colour ``p_vertex[0..i]`` — an upper bound on the clique extension
    possible within ``p_vertex[0..i]``.  Iterating ``p_vertex`` in
    *reverse* visits the highest-colour (heuristically best) vertex
    first.
    """
    p_vertex: list[int] = []
    p_colour: list[int] = []
    # Hot helper: called once per tree node.  The loop works on the
    # lowest set bit directly (no repeated ``1 << v`` shifts — clearing
    # is an xor with the isolated bit) and removes same-colour-class
    # neighbours with the graph's precomputed ``~adj`` masks.
    inv_adj = graph.inverted_adj()
    vertex_append = p_vertex.append
    colour_append = p_colour.append
    uncoloured = candidates
    colour = 0
    while uncoloured:
        colour += 1
        available = uncoloured
        while available:
            low = available & -available  # isolated lowest bit
            v = low.bit_length() - 1
            vertex_append(v)
            colour_append(colour)
            uncoloured ^= low
            # same colour class must be independent
            available = (available ^ low) & inv_adj[v]
    return p_vertex, p_colour


class CliqueNode:
    """A search-tree node: current clique, candidates, and colour bound.

    ``bound`` is the number of colours the parent's colouring used up to
    this vertex — an admissible bound on how many vertices can still
    join the clique (Listing 1's ``Node::bound``).

    A plain __slots__ class rather than a dataclass: one is allocated
    per tree node, so constructor cost is squarely on Table 1's
    "overhead of generality" path.
    """

    __slots__ = ("clique", "size", "candidates", "bound")

    def __init__(self, clique: int, size: int, candidates: int, bound: int) -> None:
        self.clique = clique  # bitset of clique vertices
        self.size = size  # == popcount(clique), cached
        self.candidates = candidates  # bitset of vertices adjacent to all of clique
        self.bound = bound  # colour bound on extensions

    def vertices(self) -> list[int]:
        """The clique as a sorted vertex list."""
        return list(bit_indices(self.clique))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CliqueNode)
            and self.clique == other.clique
            and self.candidates == other.candidates
        )

    def __hash__(self) -> int:
        return hash((self.clique, self.candidates))

    def __repr__(self) -> str:
        return (
            f"CliqueNode(size={self.size}, clique={bin(self.clique)}, "
            f"bound={self.bound})"
        )


class CliqueGen(NodeGenerator[Graph, CliqueNode]):
    """Lazy Node Generator for Maximum Clique (Listing 1's ``Gen``)."""

    __slots__ = ("graph", "parent", "p_vertex", "p_colour", "remaining", "k")

    def __init__(self, graph: Graph, parent: CliqueNode) -> None:
        self.graph = graph
        self.parent = parent
        self.remaining = parent.candidates
        self.p_vertex, self.p_colour = greedy_colour(graph, self.remaining)
        self.k = count_bits(self.remaining)

    def has_next(self) -> bool:
        return self.k > 0

    def next(self) -> CliqueNode:
        self.k -= 1
        v = self.p_vertex[self.k]
        self.remaining &= ~(1 << v)
        return CliqueNode(
            self.parent.clique | (1 << v),
            self.parent.size + 1,
            self.remaining & self.graph.adj[v],
            self.p_colour[self.k],
        )


def _root_node(graph: Graph) -> CliqueNode:
    candidates = mask_below(graph.n)
    _, p_colour = greedy_colour(graph, candidates)
    root_bound = p_colour[-1] if p_colour else 0
    return CliqueNode(clique=0, size=0, candidates=candidates, bound=root_bound)


def maxclique_spec(graph: Graph, *, name: str = "maxclique", order_by_degree: bool = True) -> SearchSpec:
    """Build the MaxClique :class:`SearchSpec` for ``graph``.

    With ``order_by_degree`` the graph is relabelled into non-increasing
    degree order first, which is part of the published algorithm's
    heuristic; disable it only for tests that need fixed labels.
    Works unchanged for the k-Clique decision variant — pair it with a
    ``Decision(target=k)`` search type (see :mod:`repro.apps.kclique`).
    """
    if order_by_degree:
        graph = graph.relabel(degree_order(graph))
    return SearchSpec(
        name=name,
        space=graph,
        root=_root_node(graph),
        generator=CliqueGen,
        objective=lambda node: node.size,
        upper_bound=lambda g, node: node.size + node.bound,
        witness_check=lambda g, node: (
            g.subgraph_is_clique(node.clique)
            and count_bits(node.clique) == node.size
        ),
    )


@dataclass
class SpecialisedResult:
    """Outcome of the hand-specialised solver (Table 1 baseline)."""

    size: int
    clique: int  # bitset in the *relabelled* vertex numbering
    nodes: int
    prunes: int
    wall_time: float


def sequential_maxclique_specialised(
    graph: Graph, *, order_by_degree: bool = True, target: Optional[int] = None
) -> SpecialisedResult:
    """Hand-written MaxClique: same algorithm, no framework.

    In-place recursion, no node objects, no generator allocation — the
    Python analogue of the hand-crafted C++ implementation the paper
    compares against in Table 1.  Explores the same tree in the same
    order as the Sequential skeleton over :func:`maxclique_spec` (tests
    assert identical node counts), so any runtime difference is pure
    abstraction overhead.

    ``target`` turns it into the k-clique decision solver: the search
    stops as soon as a clique of ``target`` vertices is found.
    """
    if order_by_degree:
        graph = graph.relabel(degree_order(graph))
    adj = graph.adj
    best_size = 0
    best_clique = 0
    nodes = 0
    prunes = 0
    done = False

    def expand(clique: int, size: int, candidates: int) -> None:
        nonlocal best_size, best_clique, nodes, prunes, done
        p_vertex, p_colour = greedy_colour(graph, candidates)
        remaining = candidates
        for k in range(len(p_vertex) - 1, -1, -1):
            if done:
                return
            v = p_vertex[k]
            remaining &= ~(1 << v)
            child_clique = clique | (1 << v)
            child_size = size + 1
            nodes += 1
            if child_size > best_size:
                best_size = child_size
                best_clique = child_clique
                if target is not None and best_size >= target:
                    done = True
                    return
            if child_size + p_colour[k] <= best_size or (
                target is not None and child_size + p_colour[k] < target
            ):
                prunes += 1
                continue
            child_candidates = remaining & adj[v]
            if child_candidates:
                expand(child_clique, child_size, child_candidates)

    started = time.perf_counter()
    nodes += 1  # the root is a visited node, matching the skeleton count
    expand(0, 0, mask_below(graph.n))
    elapsed = time.perf_counter() - started
    return SpecialisedResult(
        size=best_size, clique=best_clique, nodes=nodes, prunes=prunes, wall_time=elapsed
    )
