"""Instance generation and parsing.

The paper evaluates on ~30 standard challenge instances (DIMACS clique
graphs, finite-geometry k-clique instances, knapsack/TSP/SIP suites).
Those exact files cannot be shipped here, so :mod:`repro.instances`
provides *seeded synthetic generators* in the same families — uniform
random, Brockington-style camouflaged planted cliques, p_hat-style wide
degree spreads, san-style planted cliques — scaled so the searches are
hard enough to exercise every coordination but small enough for
laptop-scale Python runs.  A DIMACS ``.clq`` parser is included for
users with the original files (see DESIGN.md §2 for the substitution
rationale).

:mod:`repro.instances.library` is the named registry the tests,
examples and benchmark harnesses draw from.
"""

from repro.instances.dimacs import parse_dimacs, write_dimacs
from repro.instances.knapfile import parse_knapsack, write_knapsack
from repro.instances.tsplib import parse_tsplib, write_tsplib
from repro.instances.graphs import (
    brock_like,
    cycle_graph,
    p_hat_like,
    planted_clique,
    uniform_graph,
)
from repro.instances.library import (
    instance_names,
    load_instance,
    suite,
)

__all__ = [
    "parse_dimacs",
    "write_dimacs",
    "parse_knapsack",
    "write_knapsack",
    "parse_tsplib",
    "write_tsplib",
    "uniform_graph",
    "planted_clique",
    "brock_like",
    "p_hat_like",
    "cycle_graph",
    "load_instance",
    "instance_names",
    "suite",
]
