"""Tests for the Lazy Node Generator protocol."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.nodegen import IterNodeGenerator, ListNodeGenerator


class TestListNodeGenerator:
    def test_empty(self):
        gen = ListNodeGenerator([])
        assert not gen.has_next()

    def test_yields_in_order(self):
        gen = ListNodeGenerator([1, 2, 3])
        assert [gen.next(), gen.next(), gen.next()] == [1, 2, 3]
        assert not gen.has_next()

    def test_next_past_end_raises(self):
        gen = ListNodeGenerator([1])
        gen.next()
        with pytest.raises(StopIteration):
            gen.next()

    def test_has_next_is_idempotent(self):
        gen = ListNodeGenerator([1])
        assert gen.has_next() and gen.has_next()
        assert gen.next() == 1

    def test_drain(self):
        gen = ListNodeGenerator([1, 2, 3])
        gen.next()
        assert gen.drain() == [2, 3]
        assert gen.drain() == []

    def test_iter_protocol(self):
        assert list(ListNodeGenerator([4, 5])) == [4, 5]


class TestIterNodeGenerator:
    def test_wraps_python_generator(self):
        gen = IterNodeGenerator(x * x for x in range(4))
        assert list(gen) == [0, 1, 4, 9]

    def test_has_next_does_not_consume(self):
        gen = IterNodeGenerator(iter([7, 8]))
        assert gen.has_next()
        assert gen.has_next()
        assert gen.next() == 7
        assert gen.next() == 8
        assert not gen.has_next()

    def test_laziness(self):
        """Elements are only pulled when probed/asked — the point of the API."""
        pulled = []

        def source():
            for i in range(5):
                pulled.append(i)
                yield i

        gen = IterNodeGenerator(source())
        assert pulled == []
        gen.has_next()
        assert pulled == [0]  # one lookahead element, no more
        gen.next()
        assert pulled == [0]

    def test_next_without_probe(self):
        gen = IterNodeGenerator(iter([1]))
        assert gen.next() == 1

    def test_next_past_end_raises(self):
        gen = IterNodeGenerator(iter([]))
        with pytest.raises(StopIteration):
            gen.next()

    def test_drain_after_partial_consumption(self):
        gen = IterNodeGenerator(iter(range(5)))
        gen.next()
        assert gen.drain() == [1, 2, 3, 4]

    @given(st.lists(st.integers(), max_size=30))
    def test_equivalent_to_list_generator(self, items):
        a = IterNodeGenerator(iter(items))
        b = ListNodeGenerator(items)
        assert list(a) == list(b) == items
