"""The three search types: Enumeration, Decision, Optimisation (§3.2).

Each search type is the pure "node processing + pruning" logic of the
semantics, factored out of the coordinations exactly as the reduction
rules of Figure 2 are factored: coordinations call :meth:`process` after
every traversal step ((accumulate)/(strengthen)/(skip)), and consult
:meth:`should_prune`/:meth:`is_goal` for the (prune) and (shortcircuit)
rules.

Knowledge representation:

- Enumeration: a monoid accumulator.  Parallel workers fold *local*
  accumulators which are combined at the end — commutativity of the
  monoid is what makes this correct under any interleaving (Thm 3.1).
- Optimisation / Decision: an :class:`Incumbent` — the best (value, node)
  pair seen.  Parallel workers see possibly-stale copies; staleness can
  only delay pruning, never change the result (§4.3).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from repro.core.space import SearchSpec

__all__ = [
    "Incumbent",
    "SearchType",
    "Enumeration",
    "Optimisation",
    "Decision",
    "make_search_type",
]

# Deliberate-bug switch for the conformance harness's mutation test
# (docs/verify.md).  When the environment names a mutation, the matching
# code path below misbehaves on purpose so the harness can prove it
# would catch that class of bug.  ``combine`` is only called on the
# parallel merge paths (simulator knowledge store, process/cluster
# result merges) — never by ``sequential_search`` — so the sequential
# oracle stays sound while every parallel backend is corrupted.
_MUTATION_ENV = "REPRO_VERIFY_MUTATION"


def _active_mutation() -> str:
    return os.environ.get(_MUTATION_ENV, "")


@dataclass(frozen=True)
class Incumbent:
    """The best node seen so far, with its objective value."""

    value: int
    node: Any


class SearchType:
    """Abstract search type; see module docstring."""

    kind: str = "?"

    def initial_knowledge(self, spec: SearchSpec) -> Any:
        """The knowledge a search starts from (zero / root incumbent)."""
        raise NotImplementedError

    def process(self, spec: SearchSpec, node: Any, knowledge: Any) -> tuple[Any, bool]:
        """Process one visited node.

        Returns ``(new_knowledge, improved)`` where ``improved`` is True
        iff the knowledge strictly changed in a way other workers should
        hear about (an incumbent strengthening; never for enumeration,
        whose accumulators stay local).
        """
        raise NotImplementedError

    def combine(self, a: Any, b: Any) -> Any:
        """Merge knowledge from two workers (monoid plus / incumbent max)."""
        raise NotImplementedError

    def should_prune(self, spec: SearchSpec, node: Any, knowledge: Any) -> bool:
        """(prune): may the subtree under ``node`` be discarded?"""
        return False

    def is_goal(self, knowledge: Any) -> bool:
        """(shortcircuit): has knowledge reached the greatest element?"""
        return False


class Enumeration(SearchType):
    """Fold the objective over every node of the tree (paper §3.2).

    ``plus``/``zero`` define the commutative monoid M (default: integer
    addition) and must be pure: ``plus`` is used both to accumulate node
    values and to merge per-worker accumulators at the end of a parallel
    run, so it must be a genuine M x M -> M operation.  ``objective``
    optionally overrides the spec's objective as the map h : node -> M
    (e.g. ``lambda node: 1`` to count nodes, or an indicator for
    counting solutions only).
    """

    kind = "enumeration"

    def __init__(self, plus=None, zero: Any = 0, objective=None) -> None:
        self._plus = plus if plus is not None else (lambda a, b: a + b)
        self._zero = zero
        self._objective = objective
        # The stock sum-the-objective monoid can be rebuilt by name in a
        # worker process; custom monoids capture behaviour that cannot,
        # which the multiprocessing backends check before shipping.
        self.is_default = plus is None and objective is None and zero == 0

    def initial_knowledge(self, spec: SearchSpec) -> Any:
        """The monoid zero (accumulators start empty)."""
        return self._zero

    def process(self, spec: SearchSpec, node: Any, knowledge: Any) -> tuple[Any, bool]:
        h = self._objective if self._objective is not None else spec.objective
        return self._plus(knowledge, h(node)), False

    def combine(self, a: Any, b: Any) -> Any:
        return self._plus(a, b)


class Optimisation(SearchType):
    """Track the node maximising the objective; prune with the bound."""

    kind = "optimisation"

    def initial_knowledge(self, spec: SearchSpec) -> Incumbent:
        """The root node as the initial incumbent (paper §3.3)."""
        return Incumbent(spec.objective(spec.root), spec.root)

    def process(
        self, spec: SearchSpec, node: Any, knowledge: Incumbent
    ) -> tuple[Incumbent, bool]:
        value = spec.objective(node)
        if value > knowledge.value:  # (strengthen)
            return Incumbent(value, node), True
        return knowledge, False  # (skip)

    def combine(self, a: Incumbent, b: Incumbent) -> Incumbent:
        if _active_mutation() == "incumbent-ordering":
            # Deliberate bug (mutation test): last-write-wins instead of
            # best-wins — the classic incumbent-ordering race where a
            # later, weaker publish clobbers a stronger incumbent.
            return b
        return a if a.value >= b.value else b

    def should_prune(self, spec: SearchSpec, node: Any, knowledge: Incumbent) -> bool:
        # Admissibility (§3.5): bound(node) dominates h of every
        # descendant, so bound <= incumbent value means nothing below
        # node can strengthen the incumbent.
        if not spec.can_prune:
            return False
        return spec.bound(node) <= knowledge.value


class Decision(SearchType):
    """Find any node whose objective reaches ``target`` (bounded order).

    The knowledge order is ``{0..target}`` with max; :meth:`is_goal`
    implements the (shortcircuit) rule.  Pruning is justified either
    because a subtree cannot beat the incumbent, or — stronger, and
    specific to decision searches — because it cannot reach the target
    at all.
    """

    kind = "decision"

    def __init__(self, target: int) -> None:
        self.target = target

    def initial_knowledge(self, spec: SearchSpec) -> Incumbent:
        """The root incumbent, clipped into the bounded order."""
        return Incumbent(self._clip(spec.objective(spec.root)), spec.root)

    def _clip(self, value: int) -> int:
        # h maps into the bounded order {0..target} (paper: min(|v|, k)).
        return min(value, self.target)

    def process(
        self, spec: SearchSpec, node: Any, knowledge: Incumbent
    ) -> tuple[Incumbent, bool]:
        value = self._clip(spec.objective(node))
        if value > knowledge.value:
            return Incumbent(value, node), True
        return knowledge, False

    def combine(self, a: Incumbent, b: Incumbent) -> Incumbent:
        return a if a.value >= b.value else b

    def should_prune(self, spec: SearchSpec, node: Any, knowledge: Incumbent) -> bool:
        if not spec.can_prune:
            return False
        bound = spec.bound(node)
        return bound < self.target or bound <= knowledge.value

    def is_goal(self, knowledge: Incumbent) -> bool:
        return knowledge.value >= self.target


def make_search_type(kind: str, **kwargs: Any) -> SearchType:
    """Construct a search type by name.

    ``kind`` is one of ``"enumeration"``, ``"optimisation"``,
    ``"decision"``; Decision requires ``target=...``.
    """
    if kind == "enumeration":
        return Enumeration(**kwargs)
    if kind == "optimisation":
        return Optimisation(**kwargs)
    if kind == "decision":
        if "target" not in kwargs:
            raise ValueError("decision searches require a target")
        return Decision(**kwargs)
    raise ValueError(f"unknown search type {kind!r}")
