"""Unit tests for service metrics, including the dynamic-scheduling
columns (per-job worker counts and coordination split counts)."""

from repro.core.results import SearchMetrics, SearchResult
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.metrics import ServiceMetrics


def _finished_job(job_id, *, workers=None, spawns=0, from_cache=False):
    spec = JobSpec(app="maxclique", instance="brock90-1")
    job = Job(spec, id=job_id, submitted_at=0.0)
    metrics = SearchMetrics()
    metrics.spawns = spawns
    job.result = SearchResult(
        kind="optimisation", value=1, metrics=metrics, workers=workers
    )
    job.from_cache = from_cache
    job.transition(JobState.RUNNING, now=0.0)
    job.transition(JobState.DONE, now=1.0)
    return job


class TestParallelismColumns:
    def test_workers_and_splits_recorded(self):
        m = ServiceMetrics()
        m.job_finished(_finished_job("j1", workers=4, spawns=12))
        m.job_finished(_finished_job("j2", workers=1, spawns=0))
        m.job_finished(_finished_job("j3", workers=3, spawns=5))
        snap = m.snapshot()
        assert snap.parallel_jobs == 2
        assert snap.total_splits == 17
        assert snap.avg_workers == (4 + 1 + 3) / 3

    def test_cache_served_jobs_do_not_count(self):
        # A cache hit re-serves an old result object; counting its
        # workers/splits again would double-book the original run.
        m = ServiceMetrics()
        m.job_finished(_finished_job("j1", workers=4, spawns=9))
        m.job_finished(_finished_job("j2", workers=4, spawns=9, from_cache=True))
        snap = m.snapshot()
        assert snap.parallel_jobs == 1
        assert snap.total_splits == 9
        assert snap.avg_workers == 4.0

    def test_empty_metrics(self):
        snap = ServiceMetrics().snapshot()
        assert snap.parallel_jobs == 0
        assert snap.total_splits == 0
        assert snap.avg_workers is None

    def test_snapshot_serialises_and_renders(self):
        m = ServiceMetrics()
        m.job_finished(_finished_job("j1", workers=2, spawns=3))
        snap = m.snapshot()
        d = snap.to_dict()
        assert d["parallel_jobs"] == 1
        assert d["total_splits"] == 3
        assert d["avg_workers"] == 2.0
        text = snap.render()
        assert "avg workers 2.0" in text
        assert "splits 3" in text
