"""Search results and metrics.

Every skeleton returns a :class:`SearchResult`: the search outcome (an
accumulator for enumeration, the optimal/witness node for optimisation
and decision), plus a :class:`SearchMetrics` record of what the search
did.  Parallel runs additionally report virtual makespan and per-worker
utilisation from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Optional

__all__ = [
    "SearchMetrics",
    "SearchResult",
    "validate_result",
    "result_from_dict",
]


@dataclass
class SearchMetrics:
    """Counters accumulated during a search.

    ``nodes`` counts processed (visited) nodes; ``prunes`` counts
    subtrees discarded by the bound; ``spawns`` counts tasks created;
    ``steals``/``failed_steals`` count work-stealing traffic;
    ``backtracks`` counts generator-stack pops; ``reassigned`` counts
    tasks re-leased after their worker died (cluster backend fault
    tolerance — nonzero means the run survived at least one failure).
    """

    nodes: int = 0
    weighted_nodes: int = 0  # nodes scaled by spec.node_size (== nodes if unweighted)
    backtracks: int = 0
    prunes: int = 0
    spawns: int = 0
    steals: int = 0
    failed_steals: int = 0
    broadcasts: int = 0
    max_depth: int = 0
    reassigned: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready) of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SearchMetrics":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored
        so snapshots from newer versions still load."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def merge(self, other: "SearchMetrics") -> None:
        """Fold another worker's counters into this one."""
        self.nodes += other.nodes
        self.weighted_nodes += other.weighted_nodes
        self.backtracks += other.backtracks
        self.prunes += other.prunes
        self.spawns += other.spawns
        self.steals += other.steals
        self.failed_steals += other.failed_steals
        self.broadcasts += other.broadcasts
        self.max_depth = max(self.max_depth, other.max_depth)
        self.reassigned += other.reassigned


@dataclass
class SearchResult:
    """Outcome of one skeleton run.

    Attributes:
        kind: the search type that produced this result.
        value: the monoid value — the accumulator (enumeration) or the
            objective of the best node (optimisation/decision).
        node: the witness node for optimisation/decision; None for
            enumeration.
        found: for decision searches, whether the target was reached.
        metrics: aggregate counters over all workers.
        virtual_time: simulated makespan (parallel skeletons only).
        wall_time: real elapsed seconds for the run.
        workers: number of workers that executed the search.
        per_worker_busy: simulated busy time per worker (utilisation
            analysis), parallel runs only.
        trace: full schedule trace (:class:`repro.runtime.trace.Trace`)
            when the cluster was built with ``trace=True``; None
            otherwise.
    """

    kind: str
    value: Any
    node: Optional[Any] = None
    found: Optional[bool] = None
    metrics: SearchMetrics = field(default_factory=SearchMetrics)
    virtual_time: Optional[float] = None
    wall_time: Optional[float] = None
    workers: int = 1
    per_worker_busy: Optional[list] = None
    trace: Optional[Any] = None

    def efficiency(self) -> Optional[float]:
        """Mean worker utilisation (busy / makespan), parallel runs only."""
        if self.virtual_time is None or not self.per_worker_busy or self.virtual_time == 0:
            return None
        return sum(self.per_worker_busy) / (len(self.per_worker_busy) * self.virtual_time)

    def to_dict(self) -> dict:
        """JSON-ready dict form of the result.

        Witness nodes are encoded with :func:`_encode_node`: JSON-safe
        structures round-trip exactly (tuples are tagged so they come
        back as tuples), anything else degrades to a tagged ``repr``
        string — still reportable, no longer executable.  The schedule
        ``trace`` is deliberately dropped (it is a debugging artefact,
        large, and not part of the result contract); ``per_worker_busy``
        is kept.
        """
        return {
            "kind": self.kind,
            "value": _encode_node(self.value),
            "node": _encode_node(self.node),
            "found": self.found,
            "metrics": self.metrics.to_dict(),
            "virtual_time": self.virtual_time,
            "wall_time": self.wall_time,
            "workers": self.workers,
            "per_worker_busy": list(self.per_worker_busy)
            if self.per_worker_busy is not None
            else None,
        }


def result_from_dict(data: dict) -> SearchResult:
    """Rebuild a :class:`SearchResult` from :meth:`SearchResult.to_dict`.

    Inverse of ``to_dict`` up to witness fidelity: tagged tuples are
    restored as tuples, tagged ``repr`` fallbacks come back as their
    repr strings (flagged by :func:`_encode_node` at encode time).
    """
    return SearchResult(
        kind=data["kind"],
        value=_decode_node(data.get("value")),
        node=_decode_node(data.get("node")),
        found=data.get("found"),
        metrics=SearchMetrics.from_dict(data.get("metrics", {})),
        virtual_time=data.get("virtual_time"),
        wall_time=data.get("wall_time"),
        workers=data.get("workers", 1),
        per_worker_busy=data.get("per_worker_busy"),
    )


_TUPLE_TAG = "__tuple__"
_REPR_TAG = "__repr__"


def _encode_node(value: Any) -> Any:
    """Encode an arbitrary witness/value into JSON-safe structure.

    JSON primitives pass through; tuples/lists/dicts recurse (tuples
    tagged to survive the round trip); sets/frozensets become sorted
    tagged tuples; anything else falls back to ``{"__repr__": ...}``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_node(v) for v in value]}
    if isinstance(value, list):
        return [_encode_node(v) for v in value]
    if isinstance(value, (set, frozenset)):
        try:
            ordered = sorted(value)
        except TypeError:
            ordered = sorted(value, key=repr)
        return {_TUPLE_TAG: [_encode_node(v) for v in ordered]}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and not (
            _TUPLE_TAG in value or _REPR_TAG in value
        ):
            return {k: _encode_node(v) for k, v in value.items()}
        return {_REPR_TAG: repr(value)}
    return {_REPR_TAG: repr(value)}


def _decode_node(value: Any) -> Any:
    """Inverse of :func:`_encode_node` (repr fallbacks stay strings)."""
    if isinstance(value, list):
        return [_decode_node(v) for v in value]
    if isinstance(value, dict):
        if _TUPLE_TAG in value and len(value) == 1:
            return tuple(_decode_node(v) for v in value[_TUPLE_TAG])
        if _REPR_TAG in value and len(value) == 1:
            return value[_REPR_TAG]
        return {k: _decode_node(v) for k, v in value.items()}
    return value


def validate_result(spec, result: SearchResult) -> bool:
    """Independently certify a search result against its spec.

    - Optimisation: the witness's objective must equal the reported
      value, and the spec's ``witness_check`` (if any) must accept it.
    - Decision (found): the witness's objective must reach the reported
      (clipped) value, plus the ``witness_check``.
    - Enumeration: nothing structural to certify (the accumulator is
      the result); returns True.

    Raises ValueError on malformed results rather than returning False,
    so silent corruption can't masquerade as "witness merely invalid".
    """
    if result.kind == "enumeration":
        return True
    if result.node is None:
        raise ValueError("optimisation/decision result without a witness node")
    objective = spec.objective(result.node)
    if result.kind == "optimisation" and objective != result.value:
        return False
    if result.kind == "decision" and objective < result.value:
        return False
    if spec.witness_check is not None:
        return bool(spec.witness_check(spec.space, result.node))
    return True
