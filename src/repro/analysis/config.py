"""File discovery for `repro analyze`, driven by ``pyproject.toml``.

The ``[tool.repro.analyze]`` table decides what a bare ``repro
analyze`` scans, so benchmarks/ and examples/ opt out by simply not
being included::

    [tool.repro.analyze]
    include = ["src/repro"]
    exclude = ["src/repro/_vendor/*"]
    baseline = "analysis-baseline.json"

``include`` entries are directories (scanned recursively for ``*.py``),
files, or glob patterns relative to the project root; ``exclude``
entries are fnmatch patterns applied to root-relative posix paths.
Python 3.11+ parses the table with :mod:`tomllib`; older interpreters
fall back to a tiny parser that understands exactly this table shape,
so the analyzer has zero third-party dependencies everywhere CI runs.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

__all__ = ["AnalyzeConfig", "load_config", "discover_files"]

DEFAULT_INCLUDE = ("src/repro",)


@dataclass
class AnalyzeConfig:
    """Parsed ``[tool.repro.analyze]`` table (all fields optional)."""

    include: tuple[str, ...] = DEFAULT_INCLUDE
    exclude: tuple[str, ...] = ()
    baseline: Optional[str] = None


def load_config(root: Path) -> AnalyzeConfig:
    """Read the analyze table from ``<root>/pyproject.toml`` if present."""
    pyproject = Path(root) / "pyproject.toml"
    if not pyproject.is_file():
        return AnalyzeConfig()
    text = pyproject.read_text(encoding="utf-8")
    table = _read_table(text, "tool.repro.analyze")
    if not table:
        return AnalyzeConfig()
    config = AnalyzeConfig()
    include = table.get("include")
    if isinstance(include, list) and include:
        config.include = tuple(str(p) for p in include)
    exclude = table.get("exclude")
    if isinstance(exclude, list):
        config.exclude = tuple(str(p) for p in exclude)
    baseline = table.get("baseline")
    if isinstance(baseline, str) and baseline:
        config.baseline = baseline
    return config


def _read_table(text: str, name: str) -> dict:
    """Parse one TOML table; tomllib when available, else minimal."""
    try:
        import tomllib
    except ImportError:  # py3.10: no tomllib, use the mini parser
        return _mini_toml_table(text, name)
    try:
        data = tomllib.loads(text)
    except tomllib.TOMLDecodeError:
        return {}
    node = data
    for part in name.split("."):
        if not isinstance(node, dict) or part not in node:
            return {}
        node = node[part]
    return node if isinstance(node, dict) else {}


def _mini_toml_table(text: str, name: str) -> dict:
    """Extract ``[name]`` key/values; strings and string arrays only.

    Good enough for the analyze table on interpreters without
    :mod:`tomllib`; TOML arrays of strings happen to be valid Python
    literals, so :func:`ast.literal_eval` does the value parsing.
    """
    header = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
    lines = text.splitlines()
    table: dict = {}
    in_table = False
    idx = 0
    while idx < len(lines):
        line = lines[idx]
        idx += 1
        m = header.match(line)
        if m:
            in_table = m.group("name").strip() == name
            continue
        if not in_table:
            continue
        stripped = line.split("#", 1)[0].strip() if '"' not in line else line
        if "=" not in stripped:
            continue
        key, _, value = stripped.partition("=")
        value = value.strip()
        # Multiline arrays: keep consuming until brackets balance.
        while value.count("[") > value.count("]") and idx < len(lines):
            value += " " + lines[idx].strip()
            idx += 1
        try:
            table[key.strip()] = ast.literal_eval(value)
        except (ValueError, SyntaxError):
            continue
    return table


def discover_files(
    root: Path,
    config: AnalyzeConfig,
    paths: Optional[Sequence[str]] = None,
) -> list[Path]:
    """Resolve the set of ``*.py`` files to analyze.

    Explicit *paths* (CLI positionals) override ``include``; the
    ``exclude`` patterns apply either way.
    """
    root = Path(root).resolve()
    roots: Iterable[str] = paths if paths else config.include
    selected: set[Path] = set()
    for entry in roots:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            selected.update(path.rglob("*.py"))
        elif path.is_file():
            selected.add(path)
        else:
            selected.update(
                p for p in root.glob(str(entry)) if p.suffix == ".py"
            )
    kept = []
    for path in selected:
        try:
            rel = path.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        if any(fnmatch.fnmatch(rel, pat) for pat in config.exclude):
            continue
        kept.append(path)
    return sorted(kept)
