"""Elastic deployment vs a fixed fleet on a bursty job stream.

Not a paper table: this measures the repository's own elastic
deployment (``repro.deploy``, docs/deploy.md) on the workload shape
elasticity exists for — bursts of jobs separated by idle gaps.  Two
conditions run the identical stream:

- ``fixed(4)``     the fleet is pinned at four workers for the whole
  stream (``adapt(4, 4)``, so provisioning is metered by the same
  loop);
- ``adapt(1, 4)``  the Adaptive policy grows the fleet for each burst
  and drains it back to one worker across the idle gap.

Two axes are reported per condition:

- *makespan*: wall time from the first submission to the last result,
  idle gaps included (identical stream, so directly comparable);
- *worker-seconds*: the integral of fleet size over time — the cost of
  the capacity that was provisioned, whether or not it was busy.

The fixed fleet buys its makespan by burning four workers through every
idle second; the adaptive fleet should land within a few percent on
makespan (it pays worker spawn latency at each burst front) at a
fraction of the worker-seconds.  Every job's value is asserted against
``sequential_search`` — elasticity is worthless if it loses work.

Run directly: ``PYTHONPATH=src python benchmarks/bench_elastic.py``
"""

from __future__ import annotations

import json
import platform
import time

from _harness import RESULTS_DIR, write_result

from repro.cluster.local import job_payload
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.instances.library import library_spec_factory, spec_for
from repro.deploy import Adaptive, ClusterDeployment, WorkerSpec

BUDGET = 500
SHARE_POLL = 64
IDLE_GAP = 6.0  # seconds between bursts; > the policy's down_cooldown

# Two bursts of three MaxClique jobs each, small enough that a burst is
# seconds-scale but splits enough work to occupy a four-worker fleet.
BURSTS = [
    ["brock90-1", "brock90-2", "p_hat90-1"],
    ["san90-1", "sanr90-1", "brock100-1"],
]


def run_condition(minimum: int, maximum: int) -> dict:
    pending = {"n": 0}
    dep = ClusterDeployment(
        WorkerSpec(name_prefix="bench", slots=2, give_up_after=30.0),
        heartbeat_interval=0.25,
        heartbeat_timeout=5.0,
    )
    try:
        dep.adapt(
            minimum,
            maximum,
            interval=0.1,
            policy=Adaptive(minimum, maximum, down_cooldown=2.0),
            queue_depth=lambda: pending["n"],
        )
        dep.wait_for_workers(minimum, timeout=60)
        values = {}
        t0 = time.perf_counter()
        for i, burst in enumerate(BURSTS):
            if i:
                time.sleep(IDLE_GAP)
            pending["n"] = len(burst)
            for name in burst:
                spec, stype_name, kwargs = spec_for(name)
                stype = make_search_type(stype_name, **kwargs)
                payload = job_payload(
                    library_spec_factory, (name,), stype,
                    budget=BUDGET, share_poll=SHARE_POLL,
                )
                res = dep.run_job(payload, timeout=300)
                pending["n"] -= 1
                seq = sequential_search(spec, stype)
                assert res.value == seq.value, (
                    f"{name}: elastic value {res.value} != "
                    f"sequential {seq.value}")
                values[name] = res.value
        makespan = time.perf_counter() - t0
        return {
            "minimum": minimum,
            "maximum": maximum,
            "makespan_s": round(makespan, 3),
            "worker_seconds": round(dep.worker_seconds, 2),
            "fleet_peak": dep.fleet_peak,
            "workers_spawned": dep.workers_spawned,
            "workers_retired": dep.workers_retired,
            "values": values,
        }
    finally:
        dep.close()


def main() -> None:
    fixed = run_condition(4, 4)
    elastic = run_condition(1, 4)
    assert fixed["values"] == elastic["values"], "conditions diverged"

    saved = 1.0 - elastic["worker_seconds"] / fixed["worker_seconds"]
    rows = []
    for label, rec in (("fixed(4)", fixed), ("adapt(1,4)", elastic)):
        rows.append(
            f"{label:<12} makespan={rec['makespan_s']:7.3f}s  "
            f"worker-seconds={rec['worker_seconds']:7.2f}  "
            f"peak={rec['fleet_peak']}  spawned={rec['workers_spawned']}  "
            f"retired={rec['workers_retired']}"
        )
    rows.append(
        f"adaptive fleet used {saved:.0%} fewer worker-seconds "
        f"on the same stream"
    )

    header = [
        "elastic deployment vs fixed fleet "
        "(2 bursts x 3 maxclique jobs, 6s idle gap)",
        f"host: {platform.platform()}  python: {platform.python_version()}",
        f"budget={BUDGET} share_poll={SHARE_POLL}; every value asserted "
        "against sequential_search",
        "",
    ]
    write_result("elastic", header + rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "elastic.json").write_text(
        json.dumps({"fixed": fixed, "elastic": elastic}, indent=2) + "\n")


if __name__ == "__main__":
    main()
