"""Property-based checks of the correctness theorems (paper §3.7).

Theorem 3.1: every enumeration run ends with sum h(v) over the tree.
Theorem 3.2: every optimisation/decision run ends with an incumbent
whose objective is the maximum of h over the tree — under any spawn
policy, thread count, interleaving seed, and admissible pruning.
Theorem 3.3: every run terminates (witnessed by run() returning within
a generous step bound, and by the strictly-decreasing node measure).

The pruning relation used here is the canonical branch-and-bound one:
``bound(v) = max h over subtree(v)`` (the tightest admissible bound) and
``u |> v  iff  bound(v) <= h(u)``; the admissibility conditions of §3.5
are themselves property-checked.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics.machine import (
    DECISION,
    ENUMERATION,
    OPTIMISATION,
    Configuration,
    Machine,
    SearchProblem,
)
from repro.semantics.monoids import BoundedMaxMonoid, MaxMonoid, SumMonoid
from repro.semantics.tree import OrderedTree
from repro.semantics.words import EPSILON, is_prefix


def close_under_prefix(words):
    nodes = {EPSILON}
    for w in words:
        for i in range(len(w) + 1):
            nodes.add(w[:i])
    return nodes


trees = st.lists(
    st.lists(st.sampled_from("abc"), max_size=4).map(tuple), max_size=10
).map(lambda ws: OrderedTree.from_nodes(close_under_prefix(ws)))

policies = st.sampled_from([None, "any", "depth", "budget", "stack"])
seeds = st.integers(min_value=0, max_value=2**32)
threads = st.integers(min_value=1, max_value=4)


def value_assignment(tree, seed):
    """A deterministic pseudo-random objective over the tree's nodes."""
    return {w: (hash((w, seed)) % 7) for w in tree.nodes}


def subtree_bound(tree, h):
    """bound(v) = max h over subtree(v): the tightest admissible bound."""
    bound = {}
    for v in reversed(tree.preorder()):
        best = h[v]
        for c in tree.children(v):
            best = max(best, bound[c])
        bound[v] = best
    return bound


class TestTheorem31Enumeration:
    @settings(max_examples=60, deadline=None)
    @given(trees, policies, seeds, threads, seeds)
    def test_sum_invariant(self, tree, policy, seed, n_threads, hseed):
        h = value_assignment(tree, hseed)
        prob = SearchProblem(ENUMERATION, SumMonoid(), h.__getitem__)
        m = Machine(prob, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        result = m.search(tree, n_threads=n_threads, max_steps=100_000)
        assert result == sum(h.values())


class TestTheorem32Optimisation:
    @settings(max_examples=60, deadline=None)
    @given(trees, policies, seeds, threads, seeds)
    def test_incumbent_is_optimal_without_pruning(
        self, tree, policy, seed, n_threads, hseed
    ):
        h = value_assignment(tree, hseed)
        prob = SearchProblem(OPTIMISATION, MaxMonoid(), h.__getitem__)
        m = Machine(prob, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        best = m.search(tree, n_threads=n_threads, max_steps=100_000)
        assert h[best] == max(h.values())

    @settings(max_examples=60, deadline=None)
    @given(trees, policies, seeds, threads, seeds)
    def test_incumbent_is_optimal_with_admissible_pruning(
        self, tree, policy, seed, n_threads, hseed
    ):
        h = value_assignment(tree, hseed)
        bound = subtree_bound(tree, h)
        prob = SearchProblem(
            OPTIMISATION,
            MaxMonoid(),
            h.__getitem__,
            prunes=lambda u, v: bound[v] <= h[u],
        )
        m = Machine(prob, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        best = m.search(tree, n_threads=n_threads, max_steps=100_000)
        assert h[best] == max(h.values())

    @settings(max_examples=40, deadline=None)
    @given(trees, policies, seeds, threads)
    def test_decision_reaches_max_and_shortcircuits(
        self, tree, policy, seed, n_threads
    ):
        depth = max(len(w) for w in tree.nodes)
        k = max(depth, 1)
        prob = SearchProblem(
            DECISION, BoundedMaxMonoid(k), lambda w: min(len(w), k)
        )
        m = Machine(prob, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        best = m.search(tree, n_threads=n_threads, max_steps=100_000)
        assert min(len(best), k) == min(depth, k)


class TestTheorem33Termination:
    @settings(max_examples=60, deadline=None)
    @given(trees, policies, seeds, threads)
    def test_measure_strictly_decreases_to_zero(self, tree, policy, seed, n_threads):
        prob = SearchProblem(ENUMERATION, SumMonoid(), lambda w: 1)
        m = Machine(prob, spawn_policy=policy, d_cutoff=1, k_budget=1, seed=seed)
        cfg = Configuration.initial(prob, tree, n_threads)
        steps = 0
        while True:
            before = cfg.live_nodes()
            nxt = m.step(cfg)
            if nxt is None:
                break
            # The multiset measure of Thm 3.3 implies the *total* count
            # never increases, and traversal steps strictly decrease it.
            assert nxt.live_nodes() <= before
            cfg = nxt
            steps += 1
            assert steps <= 50_000, "machine failed to terminate"
        assert cfg.is_final()
        assert cfg.live_nodes() == 0


class TestPruningAdmissibility:
    """The §3.5 conditions for the canonical bound-based |> relation."""

    @settings(max_examples=50, deadline=None)
    @given(trees, seeds)
    def test_condition_1_domination(self, tree, hseed):
        h = value_assignment(tree, hseed)
        bound = subtree_bound(tree, h)
        for u in tree.nodes:
            for v in tree.nodes:
                if bound[v] <= h[u]:  # u |> v
                    assert h[u] >= h[v]

    @settings(max_examples=50, deadline=None)
    @given(trees, seeds)
    def test_condition_2_strengthening(self, tree, hseed):
        h = value_assignment(tree, hseed)
        bound = subtree_bound(tree, h)
        nodes = list(tree.nodes)
        for u in nodes:
            for u2 in nodes:
                if h[u2] >= h[u]:
                    for v in nodes:
                        if bound[v] <= h[u]:
                            assert bound[v] <= h[u2]

    @settings(max_examples=50, deadline=None)
    @given(trees, seeds)
    def test_condition_3_subtree_closure(self, tree, hseed):
        h = value_assignment(tree, hseed)
        bound = subtree_bound(tree, h)
        for v in tree.nodes:
            for v2 in tree.nodes:
                if is_prefix(v, v2):
                    assert bound[v2] <= bound[v]
