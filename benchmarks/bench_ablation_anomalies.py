"""Ablation: performance anomalies (§2.1) and the Ordered skeleton ([4]).

§2.1: parallel search is "notorious for performance anomalies" —
*detrimental* anomalies (speculation does more work than sequential
search) and *acceleration* anomalies (right-to-left knowledge flow
prunes more, superlinear speedup).  This bench measures the ratio
``parallel nodes / sequential nodes`` for three coordinations across
branch-and-bound instances:

- ratios **< 1** are acceleration anomalies: a parallel worker found a
  strong incumbent in a right subtree before the left-to-right
  sequential order would have, pruning work the sequential search did;
- ratios **> 1** are detrimental: speculative subtrees were explored
  that sequential pruning would have skipped.

Expected shape: both kinds occur (brock-style camouflaged instances
accelerate — the hidden clique lives to the right; similar-weight
knapsacks inflate slightly), while the Ordered skeleton — the
anomaly-controlling discipline of [4], which starts tasks in exact
sequential heuristic order — stays closest to 1.0 on optimisation
searches.

A note on determinism: at library scale the explored node *set* is
nearly schedule-independent (incumbents propagate in a tiny fraction of
the makespan), so anomalies here manifest across instances and
skeletons rather than across steal-ordering seeds; run-to-run *time*
variance across seeds is still visible in the printed column.
"""

from repro.core.params import SkeletonParams
from repro.util.stats import geometric_mean

from ._harness import fmt_row, sequential_baseline, run_parallel, write_result

INSTANCES = ["brock120-1", "brock100-2", "sanr100-1", "p_hat100-2", "knap-sim-30"]
SKELETONS = [
    ("stacksteal", {"chunked": False}),
    ("budget", {"budget": 50}),
    ("ordered", {"d_cutoff": 2}),
]
TOPOLOGY = dict(localities=2, workers_per_locality=8)


def test_ablation_anomalies(benchmark):
    ratios: dict[tuple[str, str], float] = {}
    tspread: dict[tuple[str, str], float] = {}

    def run_all():
        for name in INSTANCES:
            _, seq = sequential_baseline(name)
            for skeleton, knobs in SKELETONS:
                times = []
                for seed in range(3):
                    params = SkeletonParams(seed=seed, **TOPOLOGY, **knobs)
                    res = run_parallel(name, skeleton, params)
                    assert res.value == seq.value
                    times.append(res.virtual_time)
                ratios[(name, skeleton)] = res.metrics.nodes / seq.metrics.nodes
                tspread[(name, skeleton)] = (max(times) - min(times)) / min(times)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = [14, 12, 12, 12]
    lines = [
        f"Ablation: anomalies — parallel/sequential node ratio "
        f"({TOPOLOGY['localities']}x{TOPOLOGY['workers_per_locality']} workers; "
        "<1 acceleration, >1 detrimental)",
        fmt_row(["instance"] + [s for s, _ in SKELETONS], widths),
    ]
    for name in INSTANCES:
        lines.append(
            fmt_row(
                [name] + [f"{ratios[(name, s)]:.3f}" for s, _ in SKELETONS],
                widths,
            )
        )
    for skeleton, _ in SKELETONS:
        geo = geometric_mean([ratios[(n, skeleton)] for n in INSTANCES])
        spread = max(tspread[(n, skeleton)] for n in INSTANCES)
        lines.append(
            f"{skeleton}: geo-mean ratio {geo:.3f}; max time variance over seeds "
            f"{spread:.1%}"
        )
    lines.append(
        "paper §2.1: speculation causes both anomaly kinds; "
        "[4]'s ordered discipline tracks the sequential workload closest"
    )
    write_result("ablation_anomalies", lines)

    all_ratios = list(ratios.values())
    assert min(all_ratios) < 1.0, "no acceleration anomaly observed"
    assert max(all_ratios) > 1.0, "no detrimental anomaly observed"

    def distance_from_one(skeleton):
        return geometric_mean(
            [max(ratios[(n, skeleton)], 1 / ratios[(n, skeleton)]) for n in INSTANCES]
        )

    assert distance_from_one("ordered") <= distance_from_one("stacksteal")
