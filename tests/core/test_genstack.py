"""Tests for the generator stack and its splitting operations (§4.1/4.2)."""

from repro.core.genstack import GeneratorStack
from repro.core.nodegen import ListNodeGenerator


def stack_of(*levels):
    """Build a stack with one frame per level, each a list generator."""
    s = GeneratorStack()
    for i, children in enumerate(levels):
        s.push(f"node{i}", ListNodeGenerator(list(children)))
    return s


class TestStackBasics:
    def test_empty(self):
        s = GeneratorStack()
        assert len(s) == 0
        assert not s

    def test_push_assigns_depths(self):
        s = stack_of([1], [2], [3])
        assert s.top().depth == 2
        assert len(s) == 3

    def test_pop_returns_top(self):
        s = stack_of([1], [2])
        assert s.pop().node == "node1"
        assert s.top().node == "node0"

    def test_depth_restarts_after_full_pop(self):
        s = stack_of([1])
        s.pop()
        s.push("fresh", ListNodeGenerator([]))
        assert s.top().depth == 0


class TestSplitOne:
    def test_takes_from_bottom_frame(self):
        s = stack_of([10, 11], [20, 21])
        node, depth, key = s.split_one()
        assert node == 10
        assert depth == 1  # child of the depth-0 frame
        assert key == (0,)

    def test_skips_exhausted_bottom(self):
        s = stack_of([], [20, 21])
        node, depth, key = s.split_one()
        assert node == 20
        assert depth == 2
        assert key == (0, 0)

    def test_none_when_all_exhausted(self):
        s = stack_of([], [])
        assert s.split_one() is None

    def test_leaves_siblings_behind(self):
        s = stack_of([10, 11])
        s.split_one()
        assert s.top().gen.has_next()
        assert s.top().gen.next() == 11

    def test_empty_stack(self):
        assert GeneratorStack().split_one() is None


class TestSplitLowest:
    def test_drains_bottom_frame(self):
        s = stack_of([10, 11, 12], [20])
        nodes, depth, keys = s.split_lowest()
        assert nodes == [10, 11, 12]
        assert depth == 1
        assert keys == [(0,), (1,), (2,)]
        # deeper frame untouched
        assert s.top().gen.has_next()

    def test_skips_exhausted_frames(self):
        s = stack_of([], [], [30, 31])
        nodes, depth, keys = s.split_lowest()
        assert nodes == [30, 31]
        assert depth == 3
        assert keys == [(0, 0, 0), (0, 0, 1)]

    def test_empty_when_no_work(self):
        s = stack_of([], [])
        assert s.split_lowest() == ([], 0, [])

    def test_preserves_heuristic_order(self):
        s = stack_of(["best", "good", "ok"])
        nodes, _, keys = s.split_lowest()
        assert nodes == ["best", "good", "ok"]
        assert keys == sorted(keys)


class TestHasSplittableWork:
    def test_true_when_any_frame_live(self):
        assert stack_of([], [1]).has_splittable_work()

    def test_false_when_exhausted(self):
        assert not stack_of([], []).has_splittable_work()

    def test_false_when_empty(self):
        assert not GeneratorStack().has_splittable_work()


class TestPathKeys:
    def test_next_from_top_tracks_indices(self):
        s = stack_of([1, 2, 3])
        assert s.next_from_top() == (1, 0)
        assert s.next_from_top() == (2, 1)

    def test_current_key_excludes_root_frame(self):
        s = GeneratorStack()
        s.push("root", ListNodeGenerator([]))
        assert s.current_key() == ()
        s.push("a", ListNodeGenerator([]), index=2)
        assert s.current_key() == (2,)
        s.push("b", ListNodeGenerator([]), index=5)
        assert s.current_key() == (2, 5)

    def test_split_keys_encode_positions(self):
        # Steals come shallowest-first, but each key encodes the stolen
        # node's sibling path — the total traversal order — exactly.
        s = stack_of([1, 2], [3, 4], [5])
        collected = []
        while (split := s.split_one()) is not None:
            collected.append(split[2])
        assert collected == [(0,), (1,), (0, 0), (0, 1), (0, 0, 0)]
