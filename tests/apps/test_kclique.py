"""Tests for the k-Clique decision application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kclique import kclique_exists_specialised, solve_kclique
from repro.core.params import SkeletonParams
from repro.instances.graphs import cycle_graph, planted_clique, uniform_graph

from .test_maxclique import brute_force_max_clique

small_graphs = st.builds(
    uniform_graph,
    st.integers(min_value=1, max_value=9),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=100),
)


class TestDecision:
    @settings(max_examples=30, deadline=None)
    @given(small_graphs, st.integers(min_value=1, max_value=9))
    def test_matches_brute_force(self, g, k):
        expected = brute_force_max_clique(g) >= k
        assert solve_kclique(g, k).found == expected

    @settings(max_examples=30, deadline=None)
    @given(small_graphs, st.integers(min_value=1, max_value=9))
    def test_specialised_agrees(self, g, k):
        assert kclique_exists_specialised(g, k) == solve_kclique(g, k).found

    def test_planted_clique_found(self):
        g = planted_clique(40, 0.3, 10, seed=3)
        assert solve_kclique(g, 10).found is True

    def test_cycle_has_no_triangle(self):
        assert solve_kclique(cycle_graph(6), 3).found is False

    def test_far_target_refuted_at_root(self):
        # The root colouring bound already excludes cliques twice the
        # planted size: refutation is a single node.
        g = planted_clique(40, 0.4, 10, seed=4)
        unsat = solve_kclique(g, 20)
        assert unsat.found is False
        assert unsat.metrics.nodes == 1

    def test_witness_short_circuits_against_full_optimisation(self):
        from repro import search
        from repro.apps.kclique import kclique_spec

        g = planted_clique(40, 0.4, 10, seed=4)
        sat = solve_kclique(g, 10)
        full = search(kclique_spec(g), search_type="optimisation")
        assert sat.found is True
        assert sat.metrics.nodes <= full.metrics.nodes


class TestParallelDecision:
    @pytest.mark.parametrize("skeleton", ["depthbounded", "stacksteal", "budget"])
    def test_parallel_agrees_with_sequential(self, skeleton):
        g = uniform_graph(30, 0.6, seed=6)
        seq = solve_kclique(g, 7)
        par = solve_kclique(
            g, 7, skeleton=skeleton,
            params=SkeletonParams(localities=2, workers_per_locality=3,
                                  d_cutoff=2, budget=20),
        )
        assert par.found == seq.found
