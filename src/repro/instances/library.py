"""The named instance registry used by tests, examples and benches.

Every entry is a seeded, deterministic stand-in for one of the paper's
standard challenge instances, at laptop scale (DESIGN.md §2).  Names
follow the families they imitate (``brock*``, ``p_hat*``, ``san*``,
``sanr*``, ``mann*`` for MaxClique; ``tsp*``; ``knap*``; ``sip*``;
``uts*``; ``ns*``).

API:

- :func:`load_instance(name)` — the raw instance object (a
  :class:`Graph`, :class:`KnapsackInstance`, ...).
- :func:`spec_for(name)` — a ready :class:`SearchSpec` plus the search
  type kwargs the instance is meant to run with.
- :func:`suite(app)` — the instance names of one application's
  evaluation suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable

from repro.apps.knapsack import KnapsackInstance, knapsack_spec
from repro.apps.maxclique import maxclique_spec
from repro.apps.semigroups import SemigroupInstance, semigroups_spec
from repro.apps.sip import SIPInstance, sip_spec
from repro.apps.tsp import TSPInstance, tsp_spec
from repro.apps.uts import UTSInstance, uts_spec
from repro.core.space import SearchSpec
from repro.instances.graphs import (
    brock_like,
    p_hat_like,
    planted_clique,
    uniform_graph,
)
from repro.util.rng import SplitMix64

__all__ = [
    "Entry",
    "load_instance",
    "spec_for",
    "library_spec_factory",
    "instance_names",
    "suite",
    "APPS",
]

APPS = ("maxclique", "kclique", "tsp", "knapsack", "sip", "uts", "ns")


@dataclass(frozen=True)
class Entry:
    """One registry entry: how to build the instance and its spec."""

    name: str
    app: str
    build: Callable[[], Any]
    make_spec: Callable[[Any], SearchSpec]
    search_type: str = "optimisation"
    stype_kwargs: dict = field(default_factory=dict)


# -- auxiliary instance builders ------------------------------------------------


def random_knapsack(
    n: int,
    seed: int,
    *,
    kind: str = "strong",
    max_weight: int = 100,
    band: float = 0.7,
    bump_divisor: int = 10,
) -> KnapsackInstance:
    """Random knapsack in Pisinger's classic families.

    ``uncorrelated``: independent profits/weights; ``weak``: profit
    tracks weight with noise; ``strong``: profit = weight + constant;
    ``similar``: strongly-correlated with weights drawn from the narrow
    band ``[band*max_weight, max_weight]`` and profit = weight +
    ``max_weight/bump_divisor`` — near-identical densities make the
    Dantzig bound nearly uninformative and blow the tree up, the
    hardest of the classic families for branch and bound.  Tightening
    ``band`` towards 1 and raising ``bump_divisor`` hardens instances.
    """
    rng = SplitMix64(seed)
    if kind == "similar":
        if not 0.0 < band <= 1.0:
            raise ValueError("band must be in (0, 1]")
        lo = int(band * max_weight)
        weights = [lo + rng.randrange(max_weight - lo + 1) for _ in range(n)]
        profits = [w + max(1, max_weight // bump_divisor) for w in weights]
    else:
        weights = [1 + rng.randrange(max_weight) for _ in range(n)]
        if kind == "uncorrelated":
            profits = [1 + rng.randrange(max_weight) for _ in range(n)]
        elif kind == "weak":
            spread = max(1, max_weight // 10)
            profits = [
                max(1, w + rng.randrange(2 * spread + 1) - spread) for w in weights
            ]
        elif kind == "strong":
            profits = [w + max_weight // 10 for w in weights]
        else:
            raise ValueError(f"unknown knapsack family {kind!r}")
    capacity = sum(weights) // 2
    return KnapsackInstance.sorted_by_density(profits, weights, capacity)


def random_tsp(n: int, seed: int, *, scale: int = 1000) -> TSPInstance:
    """Uniform random Euclidean points in a square (rounded distances)."""
    rng = SplitMix64(seed)
    points = [(scale * rng.random(), scale * rng.random()) for _ in range(n)]
    return TSPInstance.from_points(points)


def random_sip(
    pattern_n: int, target_n: int, target_p: float, seed: int, *, planted: bool = True
) -> SIPInstance:
    """SIP instance: random target; pattern sampled from it if planted.

    A planted pattern guarantees satisfiability (the interesting search
    regime for decision-speedup studies: the witness exists but search
    order determines how fast it is found); an unplanted uniform pattern
    is usually unsatisfiable, exercising exhaustive refutation.
    """
    from repro.apps.graph import Graph

    target = uniform_graph(target_n, target_p, seed)
    rng = SplitMix64(seed ^ 0x51B)
    if not planted:
        pattern = uniform_graph(pattern_n, min(1.0, target_p + 0.1), seed ^ 0xFACE)
        return SIPInstance.build(pattern, target)
    # Grow a random connected vertex set in the target, take its induced
    # subgraph as the pattern.
    start = rng.randrange(target_n)
    chosen = [start]
    chosen_set = {start}
    while len(chosen) < pattern_n:
        frontier = sorted(
            {
                w
                for v in chosen
                for w in target.neighbours(v)
                if w not in chosen_set
            }
        )
        if not frontier:  # disconnected target: jump to a fresh vertex
            rest = [v for v in range(target_n) if v not in chosen_set]
            frontier = rest
        nxt = frontier[rng.randrange(len(frontier))]
        chosen.append(nxt)
        chosen_set.add(nxt)
    index = {v: i for i, v in enumerate(chosen)}
    pattern = Graph(pattern_n)
    for i, u in enumerate(chosen):
        for v in chosen[i + 1 :]:
            if target.has_edge(u, v):
                pattern.add_edge(index[u], index[v])
    return SIPInstance.build(pattern, target)


def decoy_sip(
    pattern_n: int, filler_n: int, hub_n: int, pattern_p: float,
    filler_p: float, seed: int,
) -> SIPInstance:
    """A SIP instance built to exhibit an *acceleration anomaly* (§2.1).

    The target has three regions: a planted exact copy of the pattern
    (so the answer is SAT), ``hub_n`` decoy hubs adjacent to everything
    in a ``filler_n``-vertex random region, and the filler itself.  The
    pattern's vertex 0 is adjacent to all other pattern vertices, so it
    is matched first (fail-first order), and its only degree-compatible
    images are the decoy hubs followed by its planted image — filler
    degrees are capped strictly below by construction.  A sequential
    (or any strictly depth-first) search therefore grinds through the
    hubs' barren-but-deep subtrees before touching the planted copy,
    while a search that runs several root branches concurrently finds
    the witness almost immediately.  Degree of difficulty is set by
    ``filler_n``/``filler_p``; the skew does not depend on timing, so
    the anomaly is reproducible.
    """
    from repro.apps.graph import Graph

    pat = uniform_graph(pattern_n, pattern_p, seed ^ 0xAAA)
    pattern = Graph(pattern_n, list(pat.adj))
    for v in range(1, pattern_n):
        if not pattern.has_edge(0, v):
            pattern.add_edge(0, v)
    dp0 = pattern_n - 1
    total_n = pattern_n + hub_n + filler_n
    target = Graph(total_n)
    for u in range(pattern_n):
        for v in range(u + 1, pattern_n):
            if pattern.has_edge(u, v):
                target.add_edge(u, v)
    hubs = list(range(pattern_n, pattern_n + hub_n))
    filler = list(range(pattern_n + hub_n, total_n))
    for i, h in enumerate(hubs):
        for h2 in hubs[i + 1 :]:
            target.add_edge(h, h2)
        for f in filler:
            target.add_edge(h, f)
    # Random filler edges with every filler vertex's total degree capped
    # below dp0, so no filler vertex can host pattern vertex 0.
    cap = dp0 - 1 - hub_n
    rng = SplitMix64(seed ^ 0xBBB)
    deg = [0] * filler_n
    want_edges = int(filler_p * filler_n * (filler_n - 1) / 2)
    added = tries = 0
    while added < want_edges and tries < 20 * want_edges:
        tries += 1
        u = rng.randrange(filler_n)
        v = rng.randrange(filler_n)
        if u == v or deg[u] >= cap or deg[v] >= cap:
            continue
        if target.has_edge(filler[u], filler[v]):
            continue
        target.add_edge(filler[u], filler[v])
        deg[u] += 1
        deg[v] += 1
        added += 1
    return SIPInstance.build(pattern, target)


# -- the registry -------------------------------------------------------------

_REGISTRY: dict[str, Entry] = {}


def _register(entry: Entry) -> None:
    if entry.name in _REGISTRY:
        raise ValueError(f"duplicate instance name {entry.name!r}")
    _REGISTRY[entry.name] = entry


def _graph_entry(name: str, build: Callable[[], Any], *, app: str = "maxclique",
                 search_type: str = "optimisation", **stype_kwargs: Any) -> None:
    _register(
        Entry(
            name=name,
            app=app,
            build=build,
            make_spec=lambda g, _n=name: maxclique_spec(g, name=_n),
            search_type=search_type,
            stype_kwargs=dict(stype_kwargs),
        )
    )


def _populate() -> None:
    # ---- MaxClique: the 18-instance Table 1 suite (scaled DIMACS
    # analogues; sequential trees of roughly 1e3..1e5 nodes).
    clique_suite: list[tuple[str, Callable[[], Any]]] = [
        ("brock90-1", lambda: brock_like(90, 0.55, 14, seed=101)),
        ("brock90-2", lambda: brock_like(90, 0.60, 15, seed=102)),
        ("brock100-1", lambda: brock_like(100, 0.50, 14, seed=103)),
        ("brock100-2", lambda: brock_like(100, 0.55, 15, seed=104)),
        ("brock110-1", lambda: brock_like(110, 0.50, 15, seed=105)),
        ("brock120-1", lambda: brock_like(120, 0.50, 16, seed=106)),
        ("p_hat90-1", lambda: p_hat_like(90, 0.1, 0.9, seed=201)),
        ("p_hat100-1", lambda: p_hat_like(100, 0.2, 0.9, seed=202)),
        ("p_hat100-2", lambda: p_hat_like(100, 0.3, 0.9, seed=203)),
        ("p_hat110-1", lambda: p_hat_like(110, 0.1, 0.8, seed=204)),
        ("san90-1", lambda: planted_clique(90, 0.55, 16, seed=301)),
        ("san100-1", lambda: planted_clique(100, 0.60, 18, seed=302)),
        ("san110-1", lambda: planted_clique(110, 0.50, 16, seed=303)),
        ("sanr90-1", lambda: uniform_graph(90, 0.6, seed=401)),
        ("sanr100-1", lambda: uniform_graph(100, 0.6, seed=402)),
        ("sanr110-1", lambda: uniform_graph(110, 0.55, seed=403)),
        ("mann-a15", lambda: _mann_like(15)),
        ("mann-a18", lambda: _mann_like(18)),
    ]
    for name, build in clique_suite:
        _graph_entry(name, build)

    # ---- k-Clique decision instances.  kclique-fig4 is the Figure 4
    # scaling instance: an unsatisfiable decision (prove no 14-clique in
    # a graph whose maximum clique is 13) — refutations are
    # pruning-stable, so the scaling curve is reproducible.
    _graph_entry(
        "kclique-fig4",
        lambda: uniform_graph(150, 0.6, seed=77),
        app="kclique",
        search_type="decision",
        target=14,
    )
    _graph_entry(
        "kclique-planted-80",
        lambda: planted_clique(80, 0.55, 18, seed=501),
        app="kclique",
        search_type="decision",
        target=18,
    )
    _graph_entry(
        "kclique-uniform-100",
        lambda: uniform_graph(100, 0.6, seed=502),
        app="kclique",
        search_type="decision",
        target=11,
    )

    # ---- TSP.
    for name, n, seed in (
        ("tsp-rand-11", 11, 602),
        ("tsp-rand-12", 12, 603),
        ("tsp-rand-13", 13, 611),
    ):
        _register(
            Entry(
                name=name,
                app="tsp",
                build=lambda n=n, seed=seed: random_tsp(n, seed),
                make_spec=lambda inst, _n=name: tsp_spec(inst, name=_n),
            )
        )

    # ---- Knapsack: the narrow-band "similar" family is the hard one.
    for name, n, kind, seed, mw, band, bump in (
        ("knap-strong-28", 28, "strong", 901, 1000, 0.7, 10),
        ("knap-sim-26", 26, "similar", 5, 1000, 0.95, 100),
        ("knap-sim-30", 30, "similar", 4, 1000, 0.7, 14),
    ):
        _register(
            Entry(
                name=name,
                app="knapsack",
                build=lambda n=n, kind=kind, seed=seed, mw=mw, band=band, bump=bump: random_knapsack(
                    n, seed, kind=kind, max_weight=mw, band=band, bump_divisor=bump
                ),
                make_spec=lambda inst, _n=name: knapsack_spec(inst, name=_n),
            )
        )

    # ---- SIP (seeds calibrated for mid-size, non-degenerate searches).
    for name, pn, tn, tp, seed, planted in (
        ("sip-planted-20-70", 20, 70, 0.3, 814, True),
        ("sip-planted-20-70b", 20, 70, 0.3, 821, True),
        ("sip-planted-18-65", 18, 65, 0.32, 826, True),
    ):
        _register(
            Entry(
                name=name,
                app="sip",
                build=lambda pn=pn, tn=tn, tp=tp, seed=seed, planted=planted: random_sip(
                    pn, tn, tp, seed, planted=planted
                ),
                make_spec=lambda inst, _n=name: sip_spec(inst, name=_n),
                search_type="decision",
                stype_kwargs={"target": pn},
            )
        )

    # Acceleration-anomaly demonstrator (see decoy_sip): SAT, but the
    # witness hides behind three barren decoy subtrees in fail-first
    # order.  Searches that explore root branches concurrently find it
    # orders of magnitude sooner than strict depth-first.
    _register(
        Entry(
            name="sip-decoy-24-200",
            app="sip",
            build=lambda: decoy_sip(24, 200, 3, 0.40, 0.10, 1),
            make_spec=lambda inst: sip_spec(inst, name="sip-decoy-24-200"),
            search_type="decision",
            stype_kwargs={"target": 24},
        )
    )

    # ---- UTS.
    for name, inst in (
        ("uts-geo-med", UTSInstance(shape="geometric", b0=3.5, max_depth=8, seed=12)),
        ("uts-geo-big", UTSInstance(shape="geometric", b0=4.0, max_depth=9, seed=19)),
        ("uts-bin-med", UTSInstance(shape="binomial", b0=500, m=8, q=0.123, seed=7)),
    ):
        _register(
            Entry(
                name=name,
                app="uts",
                build=lambda inst=inst: inst,
                make_spec=lambda inst, _n=name: uts_spec(inst, name=_n),
                search_type="enumeration",
            )
        )

    # ---- Numerical Semigroups.
    for name, genus in (("ns-genus-14", 14), ("ns-genus-15", 15), ("ns-genus-16", 16)):
        _register(
            Entry(
                name=name,
                app="ns",
                build=lambda genus=genus: SemigroupInstance(max_genus=genus),
                make_spec=lambda inst, _n=name: semigroups_spec(inst, name=_n),
                search_type="enumeration",
            )
        )


def _mann_like(k: int) -> Any:
    """A MANN-style Steiner-ish dense graph: the complement of a sparse
    structured graph (MANN instances are very dense with large cliques)."""
    sparse = uniform_graph(3 * k, 4.0 / (3 * k), seed=9000 + k)
    return sparse.complement()


_populate()


@lru_cache(maxsize=None)
def load_instance(name: str) -> Any:
    """Build (and memoise) a registry instance by name."""
    entry = _entry(name)
    return entry.build()


def spec_for(name: str) -> tuple[SearchSpec, str, dict]:
    """Spec + (search_type, stype_kwargs) for a registry instance."""
    entry = _entry(name)
    return entry.make_spec(load_instance(name)), entry.search_type, dict(entry.stype_kwargs)


def library_spec_factory(name: str) -> SearchSpec:
    """Top-level picklable spec factory for the multiprocessing backends.

    Worker processes rebuild specs from ``(factory, args)`` pairs; for
    registry instances the pair is simply ``(library_spec_factory,
    (name,))`` — the registry is deterministic, so every process builds
    the identical instance.
    """
    return spec_for(name)[0]


def _entry(name: str) -> Entry:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown instance {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def instance_names() -> list[str]:
    """All registered instance names, sorted."""
    return sorted(_REGISTRY)


def suite(app: str) -> list[str]:
    """The evaluation-suite instance names of one application."""
    if app not in APPS:
        raise ValueError(f"unknown application {app!r}; known: {APPS}")
    return sorted(name for name, e in _REGISTRY.items() if e.app == app)
