"""Tests for the bounded, submitter-fair priority queue."""

import pytest

from repro.service.jobs import Job, JobSpec, JobState
from repro.service.queue import AdmissionError, JobQueue


def make_job(jid, *, submitter="anon", priority=0):
    spec = JobSpec(
        app="maxclique", instance="brock90-1",
        priority=priority, submitter=submitter,
    )
    return Job(spec, id=jid)


class TestOrdering:
    def test_priority_order_within_submitter(self):
        q = JobQueue()
        q.push(make_job("low", priority=1))
        q.push(make_job("high", priority=9))
        q.push(make_job("mid", priority=5))
        assert [q.pop().id for _ in range(3)] == ["high", "mid", "low"]

    def test_fifo_among_equal_priorities(self):
        q = JobQueue()
        for jid in ("first", "second", "third"):
            q.push(make_job(jid, priority=3))
        assert [q.pop().id for _ in range(3)] == ["first", "second", "third"]

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop() is None


class TestFairness:
    def test_round_robin_across_submitters(self):
        # Alice floods; Bob submits one job.  Bob is served second, not
        # eleventh.
        q = JobQueue()
        for i in range(10):
            q.push(make_job(f"a{i}", submitter="alice"))
        q.push(make_job("b0", submitter="bob"))
        order = [q.pop().id for _ in range(11)]
        assert "b0" in order[:2]

    def test_interleaving_is_strict(self):
        q = JobQueue()
        for i in range(3):
            q.push(make_job(f"a{i}", submitter="alice"))
            q.push(make_job(f"b{i}", submitter="bob"))
        order = [q.pop().id for _ in range(6)]
        submitters = [jid[0] for jid in order]
        assert submitters in (["a", "b"] * 3, ["b", "a"] * 3)


class TestAdmission:
    def test_depth_bound(self):
        q = JobQueue(max_depth=2)
        q.push(make_job("j1"))
        q.push(make_job("j2"))
        with pytest.raises(AdmissionError, match="queue full"):
            q.push(make_job("j3"))

    def test_rejection_carries_reason(self):
        q = JobQueue(max_depth=1)
        q.push(make_job("j1"))
        try:
            q.push(make_job("j2"))
        except AdmissionError as exc:
            assert "max_depth=1" in exc.reason
        else:
            pytest.fail("expected AdmissionError")

    def test_per_submitter_quota(self):
        q = JobQueue(max_depth=10, max_per_submitter=2)
        q.push(make_job("a1", submitter="alice"))
        q.push(make_job("a2", submitter="alice"))
        with pytest.raises(AdmissionError, match="quota"):
            q.push(make_job("a3", submitter="alice"))
        q.push(make_job("b1", submitter="bob"))  # other submitters unaffected

    def test_pop_frees_capacity(self):
        q = JobQueue(max_depth=1)
        q.push(make_job("j1"))
        q.pop()
        q.push(make_job("j2"))  # no raise

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)
        with pytest.raises(ValueError):
            JobQueue(max_depth=5, max_per_submitter=0)


class TestCancellationTombstones:
    def test_cancelled_jobs_are_skipped(self):
        q = JobQueue()
        doomed = make_job("doomed", priority=9)
        q.push(doomed)
        q.push(make_job("survivor"))
        doomed.transition(JobState.CANCELLED)
        assert q.pop().id == "survivor"
        assert q.pop() is None

    def test_cancelled_jobs_do_not_count_toward_depth(self):
        q = JobQueue(max_depth=2)
        doomed = make_job("doomed")
        q.push(doomed)
        q.push(make_job("j2"))
        doomed.transition(JobState.CANCELLED)
        q.push(make_job("j3"))  # tombstone freed a slot
        assert len(q) == 2
