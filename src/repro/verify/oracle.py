"""Dual oracles and the per-search-type result invariants.

Every backend result is judged against a single :class:`OracleReport`
built once per instance from two independent references:

- the **sequential driver** (:func:`repro.core.sequential.sequential_search`)
  — Listing 2 verbatim, no parallel machinery at all; and
- the **semantics machine** (:func:`repro.semantics.bridge.machine_search`)
  — the paper's formal reduction system, run only when the full tree is
  small enough to materialise.

The two oracles are first cross-checked against each other
(:func:`oracle_self_check`); a disagreement there is an oracle bug, not
a backend bug, and fails the round loudly.

What a conforming backend result must satisfy (:func:`check_result`):

- **enumeration** — the accumulated value equals the sequential value
  *exactly* (the monoid is commutative, so any interleaving folds to
  the same sum), and the node count equals the unpruned tree size
  exactly, unless work was re-searched after a fault
  (``metrics.reassigned > 0``), in which case it may only exceed it.
- **optimisation** — the value equals the sequential optimum exactly;
  the witness must *re-verify* through
  :func:`repro.core.results.validate_result` (objective recomputed,
  feasibility predicate consulted) — a right value with a wrong witness
  is a failure.
- **decision** — ``found`` must agree with the sequential answer (the
  prune relation never discards a goal, so the answer is
  interleaving-independent); when found, the clipped value equals the
  sequential one and the witness re-verifies.

Node counts for optimisation/decision are deliberately NOT compared to
the sequential run's pruned count: a parallel worker holding a stale
incumbent prunes later (more nodes), while a lucky task order can find
the optimum sooner (fewer nodes) — both are correct behaviours (§4.3).
The honest invariant is ``nodes <= unpruned tree size`` (every node
visited at most once when no task was re-leased), which is what we
check, alongside ``nodes >= 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.results import SearchResult, validate_result
from repro.core.searchtypes import Enumeration, make_search_type
from repro.core.sequential import sequential_search
from repro.core.space import SearchSpec
from repro.semantics.bridge import machine_search
from repro.verify.generators import Instance, search_setup

__all__ = ["OracleReport", "build_report", "oracle_self_check", "check_result"]

# The machine materialises the whole tree; beyond this we rely on the
# sequential oracle alone.
MACHINE_MAX_NODES = 5_000


@dataclass
class OracleReport:
    """Reference answers for one instance (see module docstring)."""

    instance: Instance
    spec: SearchSpec
    kind: str
    stype_kwargs: dict
    sequential: SearchResult
    tree_nodes: int  # unpruned tree size (exact node-count ceiling)
    machine_value: Optional[int] = None  # None: machine oracle skipped
    machine_found: Optional[bool] = None


def build_report(
    inst: Instance, *, machine_max_nodes: int = MACHINE_MAX_NODES
) -> OracleReport:
    """Run both oracles on ``inst``.

    The unpruned tree size comes from a sequential *enumeration* of the
    same spec counting 1 per node — enumeration never prunes, so its
    node count is the full tree.
    """
    spec, kind, stype_kwargs = search_setup(inst)
    seq = sequential_search(spec, make_search_type(kind, **stype_kwargs))
    if kind == "enumeration":
        tree_nodes = seq.metrics.nodes
    else:
        census = sequential_search(spec, Enumeration(objective=lambda node: 1))
        tree_nodes = census.metrics.nodes

    report = OracleReport(
        instance=inst,
        spec=spec,
        kind=kind,
        stype_kwargs=stype_kwargs,
        sequential=seq,
        tree_nodes=tree_nodes,
    )
    if tree_nodes <= machine_max_nodes:
        target = stype_kwargs.get("target")
        outcome = machine_search(
            spec, kind, target=target, max_nodes=machine_max_nodes
        )
        if kind == "enumeration":
            report.machine_value = outcome
        elif kind == "optimisation":
            report.machine_value = spec.objective(outcome)
        else:  # decision: outcome is the best witness node
            value = min(spec.objective(outcome), target)
            report.machine_value = value
            report.machine_found = value >= target
    return report


def oracle_self_check(report: OracleReport) -> list[str]:
    """Cross-check the two oracles (and the sequential witness)."""
    issues: list[str] = []
    seq = report.sequential
    if report.kind != "enumeration":
        try:
            if not validate_result(report.spec, seq):
                issues.append(
                    f"sequential witness failed re-verification "
                    f"(value={seq.value}, node={seq.node!r})"
                )
        except ValueError as exc:
            issues.append(f"sequential result malformed: {exc}")
    if report.machine_value is None:
        return issues
    if report.kind == "decision":
        if report.machine_found != seq.found:
            issues.append(
                f"oracle disagreement: machine found={report.machine_found}, "
                f"sequential found={seq.found}"
            )
        if seq.found and report.machine_value != seq.value:
            issues.append(
                f"oracle disagreement: machine value={report.machine_value}, "
                f"sequential value={seq.value}"
            )
    elif report.machine_value != seq.value:
        issues.append(
            f"oracle disagreement: machine value={report.machine_value}, "
            f"sequential value={seq.value}"
        )
    return issues


def check_result(
    report: OracleReport, result: SearchResult, *, label: str = "backend"
) -> list[str]:
    """All invariant violations of ``result`` against the oracles.

    Returns an empty list for a conforming result; each violation is a
    self-contained sentence naming the invariant.
    """
    issues: list[str] = []
    seq = report.sequential
    if result.kind != report.kind:
        issues.append(
            f"{label}: search kind {result.kind!r} != expected {report.kind!r}"
        )
        return issues

    nodes = result.metrics.nodes
    reassigned = result.metrics.reassigned
    if nodes < 1:
        issues.append(f"{label}: impossible node count {nodes} (searched nothing)")

    if report.kind == "enumeration":
        if result.value != seq.value:
            issues.append(
                f"{label}: enumeration value {result.value!r} != "
                f"sequential {seq.value!r}"
            )
        if reassigned == 0 and nodes != report.tree_nodes:
            issues.append(
                f"{label}: enumeration visited {nodes} nodes, expected exactly "
                f"{report.tree_nodes} (no pruning, no reassignment)"
            )
        elif reassigned > 0 and nodes < report.tree_nodes:
            issues.append(
                f"{label}: enumeration visited {nodes} < tree size "
                f"{report.tree_nodes} despite {reassigned} reassignment(s)"
            )
        return issues

    # optimisation / decision
    if report.kind == "optimisation":
        if result.value != seq.value:
            issues.append(
                f"{label}: optimum {result.value!r} != sequential {seq.value!r}"
            )
    else:  # decision
        if result.found is None:
            issues.append(f"{label}: decision result is missing 'found'")
        elif bool(result.found) != bool(seq.found):
            issues.append(
                f"{label}: decision found={result.found} != "
                f"sequential found={seq.found}"
            )
        elif result.found and result.value != seq.value:
            issues.append(
                f"{label}: decision value {result.value!r} != "
                f"sequential {seq.value!r}"
            )

    # Witness re-verification: feasibility, not just the number.
    check_witness = report.kind == "optimisation" or bool(result.found)
    if check_witness and not issues:
        try:
            if not validate_result(report.spec, result):
                issues.append(
                    f"{label}: witness {result.node!r} failed re-verification "
                    f"against the feasibility predicate"
                )
        except ValueError as exc:
            issues.append(f"{label}: malformed result: {exc}")

    if reassigned == 0 and nodes > report.tree_nodes:
        issues.append(
            f"{label}: visited {nodes} nodes > unpruned tree size "
            f"{report.tree_nodes} with no reassignment (double-processing)"
        )
    return issues
