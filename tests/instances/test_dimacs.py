"""Tests for DIMACS .clq parsing and writing."""

import pytest

from repro.instances.dimacs import parse_dimacs, parse_dimacs_text, write_dimacs
from repro.instances.graphs import uniform_graph


class TestParse:
    def test_basic(self):
        g = parse_dimacs_text("c a comment\np edge 3 2\ne 1 2\ne 2 3\n")
        assert g.n == 3
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert not g.has_edge(0, 2)

    def test_blank_lines_and_comments_ignored(self):
        g = parse_dimacs_text("\nc x\n\np edge 2 1\ne 1 2\n")
        assert g.edge_count() == 1

    def test_col_format_accepted(self):
        g = parse_dimacs_text("p col 2 1\ne 1 2\n")
        assert g.edge_count() == 1

    def test_duplicate_edges_tolerated(self):
        g = parse_dimacs_text("p edge 2 2\ne 1 2\ne 2 1\n")
        assert g.edge_count() == 1

    def test_self_loops_dropped(self):
        g = parse_dimacs_text("p edge 2 2\ne 1 1\ne 1 2\n")
        assert g.edge_count() == 1

    def test_missing_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs_text("e 1 2\n")

    def test_duplicate_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs_text("p edge 2 1\np edge 2 1\n")

    def test_malformed_edge(self):
        with pytest.raises(ValueError):
            parse_dimacs_text("p edge 2 1\ne 1\n")

    def test_unknown_record(self):
        with pytest.raises(ValueError):
            parse_dimacs_text("p edge 2 1\nx 1 2\n")


class TestRoundTrip:
    def test_write_then_parse(self, tmp_path):
        g = uniform_graph(25, 0.4, 11)
        path = tmp_path / "g.clq"
        write_dimacs(g, path, comments=["generated for test"])
        assert parse_dimacs(path) == g

    def test_comments_written(self, tmp_path):
        g = uniform_graph(5, 0.5, 1)
        path = tmp_path / "g.clq"
        write_dimacs(g, path, comments=["hello"])
        assert path.read_text().startswith("c hello\n")
