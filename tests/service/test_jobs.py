"""Tests for JobSpec identity and the Job lifecycle."""

import pytest

from repro.service.jobs import Job, JobSpec, JobState, TERMINAL_STATES


def spec(**kw):
    base = dict(app="maxclique", instance="brock90-1")
    base.update(kw)
    return JobSpec(**base)


class TestJobSpecValidation:
    def test_defaults_valid(self):
        s = spec()
        assert s.skeleton == "sequential"
        assert s.search_type is None

    def test_unknown_skeleton_rejected(self):
        with pytest.raises(ValueError, match="skeleton"):
            spec(skeleton="warp-drive")

    def test_unknown_search_type_rejected(self):
        with pytest.raises(ValueError, match="search type"):
            spec(search_type="divination")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            spec(timeout=0)
        with pytest.raises(ValueError, match="timeout"):
            spec(timeout=-1.5)

    def test_bad_param_override_rejected_at_construction(self):
        with pytest.raises(TypeError):
            spec(params={"no_such_knob": 3})
        with pytest.raises(ValueError):
            spec(params={"d_cutoff": -1})

    def test_empty_instance_and_submitter_rejected(self):
        with pytest.raises(ValueError):
            spec(instance="")
        with pytest.raises(ValueError):
            spec(submitter="")


class TestCanonicalKey:
    def test_scheduling_attributes_do_not_change_key(self):
        # Priority/timeout/submitter affect *when*, not *what*: two specs
        # differing only there are duplicates and must share a cache key.
        a = spec(priority=0, submitter="alice")
        b = spec(priority=9, submitter="bob", timeout=60)
        assert a.key == b.key

    def test_search_identity_changes_key(self):
        assert spec().key != spec(instance="brock90-2").key
        assert spec().key != spec(skeleton="depthbounded").key
        assert spec().key != spec(params={"d_cutoff": 3}).key
        assert spec().key != spec(search_type="decision",
                                  stype_kwargs={"target": 10}).key

    def test_param_order_is_canonical(self):
        a = spec(params={"d_cutoff": 3, "budget": 50})
        b = spec(params={"budget": 50, "d_cutoff": 3})
        assert a.key == b.key

    def test_round_trip_preserves_key(self):
        s = spec(skeleton="budget", params={"budget": 10}, priority=4,
                 timeout=2.5, submitter="carol")
        back = JobSpec.from_dict(s.to_dict())
        assert back == s
        assert back.key == s.key


class TestLifecycle:
    def test_happy_path(self):
        job = Job(spec(), id="j0001")
        job.transition(JobState.RUNNING, now=1.0)
        assert job.started_at == 1.0
        job.transition(JobState.DONE, now=2.5)
        assert job.finished_at == 2.5
        assert job.terminal

    def test_pending_can_finish_directly(self):
        # Cache hits, rejections and queued-cancellations skip RUNNING.
        for state in (JobState.DONE, JobState.FAILED, JobState.CANCELLED):
            job = Job(spec(), id="x")
            job.transition(state)
            assert job.terminal

    def test_pending_cannot_timeout(self):
        # TIMEOUT means "ran out of time while running".
        job = Job(spec(), id="x")
        with pytest.raises(ValueError, match="illegal"):
            job.transition(JobState.TIMEOUT)

    def test_terminal_states_are_final(self):
        for state in TERMINAL_STATES:
            job = Job(spec(), id="x")
            if state is JobState.TIMEOUT:
                job.transition(JobState.RUNNING)
            job.transition(state)
            with pytest.raises(ValueError, match="illegal"):
                job.transition(JobState.RUNNING)

    def test_latency(self):
        job = Job(spec(), id="x", submitted_at=10.0)
        assert job.latency() is None
        job.transition(JobState.RUNNING, now=11.0)
        job.transition(JobState.DONE, now=13.5)
        assert job.latency() == pytest.approx(3.5)
