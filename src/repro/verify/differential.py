"""Differential execution: every backend over the same instances.

One verify *round* draws a seeded instance, builds the oracle report
once, then runs each backend under a seeded knob sweep and checks the
result against the report's invariants.  A failing round is shrunk to
a minimal instance that still fails under the *same* backend
configuration, and the whole repro (instance, config, issues, shrunk
instance) is written as a JSON artifact.

Everything is a pure function of ``seed``: the instance stream, the
knob draws, and any chaos plans — so ``repro verify --seed N`` is a
complete bug report id.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.core.skeletons import Skeleton
from repro.util.rng import SplitMix64
from repro.verify.chaos import FaultPlan, make_plan
from repro.verify.generators import (
    FAMILIES,
    Instance,
    instance_spec,
    sample_instance,
    search_setup,
    shrink_instance,
)
from repro.verify.oracle import build_report, check_result, oracle_self_check

__all__ = [
    "BACKENDS",
    "BackendConfig",
    "sample_config",
    "run_config",
    "check_config",
    "run_verify",
]

# Differential targets; "sequential" is also the oracle, so running it
# as a backend only re-checks determinism — kept cheap and first.
BACKENDS = ("sequential", "sim", "processes", "cluster")

_SIM_COORDINATIONS = ("depthbounded", "stacksteal", "budget", "random", "ordered")
_PROC_COORDINATIONS = ("depthbounded", "budget", "stacksteal", "ordered")
_CLUSTER_COORDINATIONS = ("budget", "stacksteal", "ordered")

# Families whose search type tolerates losing a worker (enumeration is
# defined to fail loudly instead — exercised by a dedicated test).
_CHAOS_FAMILIES = tuple(f for f in FAMILIES if f != "uts")


@dataclass
class BackendConfig:
    """One point in a backend's knob space."""

    backend: str
    coordination: str = "budget"
    knobs: dict = field(default_factory=dict)
    fault_plan: Optional[FaultPlan] = None

    def to_dict(self) -> dict:
        """JSON-ready form for the repro artifact."""
        return {
            "backend": self.backend,
            "coordination": self.coordination,
            "knobs": dict(self.knobs),
            "fault_plan": self.fault_plan.to_dict() if self.fault_plan else None,
        }

    def describe(self) -> str:
        """One-line cell label: backend, coordination, knobs, chaos."""
        bits = [self.backend]
        if self.backend != "sequential":
            bits.append(self.coordination)
        bits += [f"{k}={v}" for k, v in sorted(self.knobs.items())]
        if self.fault_plan is not None:
            bits.append(f"chaos[{self.fault_plan.describe()}]")
        return " ".join(bits)


def _choice(rng: SplitMix64, seq):
    return seq[rng.randrange(len(seq))]


def sample_config(
    backend: str,
    rng: SplitMix64,
    *,
    chaos: bool = False,
    coordination: Optional[str] = None,
) -> BackendConfig:
    """Draw one seeded knob setting for ``backend``.

    The sweeps deliberately include degenerate values (budget=1,
    single-worker topologies): those are where split/merge edge cases
    live, not in the comfortable defaults.  ``coordination`` pins the
    coordination instead of drawing it (the knobs are still drawn), so
    a targeted sweep — ``repro verify --coordination ordered`` — walks
    the same seeded knob space as the mixed one.
    """
    if backend == "sequential":
        return BackendConfig("sequential", "sequential")
    if backend == "sim":
        coordination = coordination or _choice(rng, _SIM_COORDINATIONS)
        return BackendConfig(
            "sim",
            coordination,
            {
                "seed": rng.randrange(1 << 16),
                "d_cutoff": 1 + rng.randrange(3),
                "budget": _choice(rng, (1, 2, 5, 20)),
                # >1 locality matters: remote broadcast latency is what
                # opens the stale-incumbent window (§4.3).
                "localities": 1 + rng.randrange(2),
                "workers_per_locality": 2 + rng.randrange(3),
                "spawn_probability": 0.1,
            },
        )
    if backend == "processes":
        coordination = coordination or _choice(rng, _PROC_COORDINATIONS)
        return BackendConfig(
            "processes",
            coordination,
            {
                "n_processes": 1 + rng.randrange(3),
                "d_cutoff": 1 + rng.randrange(3),
                "budget": _choice(rng, (1, 2, 5, 20)),
                "share_poll": _choice(rng, (4, 16, 64)),
            },
        )
    if backend == "cluster":
        # Half the draws run the fixed-fleet topology, half the elastic
        # deployment (burst to max, drain back to min mid-job) — the
        # RETIRE/RELEASE handback path is part of the conformance
        # surface, not a separate test universe.
        if rng.randrange(2) == 1:
            maximum = 2 + rng.randrange(2)
            plan = (
                make_plan(
                    rng.next_u64() & 0x7FFFFFFF,
                    maximum,
                    allow_kill=True,
                    worker_prefix="deploy-",
                    elastic=True,
                )
                if chaos
                else None
            )
            return BackendConfig(
                "cluster",
                coordination or _choice(rng, _CLUSTER_COORDINATIONS),
                {
                    "elastic": True,
                    "min_workers": 1,
                    "max_workers": maximum,
                    "budget": _choice(rng, (1, 2, 5, 20)),
                    "share_poll": _choice(rng, (4, 16, 64)),
                    "wire_codec": _choice(rng, ("json", "binary")),
                },
                fault_plan=plan,
            )
        # A kill plan needs a surviving worker, so chaos draws >= 2.
        workers = 2 + rng.randrange(2) if chaos else 1 + rng.randrange(3)
        plan = (
            make_plan(rng.next_u64() & 0x7FFFFFFF, workers, allow_kill=True)
            if chaos
            else None
        )
        return BackendConfig(
            "cluster",
            coordination or _choice(rng, _CLUSTER_COORDINATIONS),
            {
                "cluster_workers": workers,
                "budget": _choice(rng, (1, 2, 5, 20)),
                "share_poll": _choice(rng, (4, 16, 64)),
                "wire_codec": _choice(rng, ("json", "binary")),
            },
            fault_plan=plan,
        )
    raise ValueError(f"unknown backend {backend!r}")


def run_config(
    inst: Instance, cfg: BackendConfig, *, cluster_timeout: float = 60.0
) -> SearchResult:
    """Execute one (instance, backend-config) cell."""
    spec, kind, stype_kwargs = search_setup(inst)
    stype = make_search_type(kind, **stype_kwargs)
    if cfg.backend == "sequential":
        return sequential_search(spec, stype)
    if cfg.backend == "sim":
        params = SkeletonParams(
            backend="sim",
            localities=cfg.knobs.get("localities", 1),
            workers_per_locality=cfg.knobs.get("workers_per_locality", 2),
            seed=cfg.knobs.get("seed", 0),
            d_cutoff=cfg.knobs.get("d_cutoff", 2),
            budget=cfg.knobs.get("budget", 5),
            spawn_probability=cfg.knobs.get("spawn_probability", 0.1),
        )
        return Skeleton(cfg.coordination, kind).search(spec, params, stype=stype)
    if cfg.backend == "processes":
        params = SkeletonParams(
            backend="processes",
            n_processes=cfg.knobs.get("n_processes", 2),
            d_cutoff=cfg.knobs.get("d_cutoff", 2),
            budget=cfg.knobs.get("budget", 5),
            share_poll=cfg.knobs.get("share_poll", 16),
        )
        return Skeleton(cfg.coordination, kind).search(
            spec,
            params,
            stype=stype,
            spec_factory=instance_spec,
            factory_args=(inst.family, inst.args),
        )
    if cfg.backend == "cluster":
        from repro.cluster.local import cluster_search

        chaotic = cfg.fault_plan is not None and bool(cfg.fault_plan.events)
        if cfg.knobs.get("elastic"):
            from repro.deploy import elastic_budget_search

            return elastic_budget_search(
                instance_spec,
                (inst.family, inst.args),
                stype,
                coordination=cfg.coordination,
                minimum=cfg.knobs.get("min_workers", 1),
                maximum=cfg.knobs.get("max_workers", 2),
                budget=cfg.knobs.get("budget", 5),
                share_poll=cfg.knobs.get("share_poll", 16),
                d_cutoff=cfg.knobs.get("d_cutoff", 2),
                timeout=cluster_timeout,
                heartbeat_interval=0.1 if chaotic else 0.5,
                heartbeat_timeout=1.0 if chaotic else 5.0,
                wire_codec=cfg.knobs.get("wire_codec", "binary"),
                fault_plan=cfg.fault_plan.to_dict() if chaotic else None,
            )
        return cluster_search(
            instance_spec,
            (inst.family, inst.args),
            stype,
            coordination=cfg.coordination,
            n_workers=cfg.knobs.get("cluster_workers", 2),
            budget=cfg.knobs.get("budget", 5),
            share_poll=cfg.knobs.get("share_poll", 16),
            d_cutoff=cfg.knobs.get("d_cutoff", 2),
            timeout=cluster_timeout,
            # Chaos leans on the watchdog: beat fast, declare death
            # fast, so injected partitions resolve within the timeout.
            heartbeat_interval=0.1 if chaotic else 0.5,
            heartbeat_timeout=1.0 if chaotic else 5.0,
            wire_codec=cfg.knobs.get("wire_codec", "binary"),
            fault_plan=cfg.fault_plan.to_dict() if chaotic else None,
        )
    raise ValueError(f"unknown backend {cfg.backend!r}")


def check_config(
    inst: Instance,
    cfg: BackendConfig,
    report=None,
    *,
    cluster_timeout: float = 60.0,
) -> list[str]:
    """Run one cell and return its invariant violations (run errors
    included as violations — a backend that crashes does not conform)."""
    if report is None:
        report = build_report(inst)
    label = cfg.describe()
    try:
        result = run_config(inst, cfg, cluster_timeout=cluster_timeout)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        return [f"{label}: raised {type(exc).__name__}: {exc}"]
    return check_result(report, result, label=label)


def run_verify(
    *,
    backend: str = "all",
    seed: int = 0,
    rounds: int = 20,
    chaos: bool = False,
    coordination: Optional[str] = None,
    artifact_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    cluster_timeout: float = 60.0,
    shrink_attempts: int = 25,
) -> int:
    """The ``repro verify`` driver.  Returns a process exit code.

    Rounds cycle through the instance families; every backend named by
    ``backend`` (or all of them) runs each round under a fresh seeded
    knob draw.  ``coordination`` pins every parallel cell to one
    coordination method instead of drawing it.  On a violation the
    instance is greedily shrunk under the same configuration and a
    JSON repro artifact is written to ``artifact_dir``.
    """
    emit = log if log is not None else (lambda line: None)
    if backend == "all":
        backends = list(BACKENDS)
    elif backend in BACKENDS:
        backends = [backend]
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of "
            f"{BACKENDS + ('all',)}"
        )
    if chaos and "cluster" not in backends:
        raise ValueError("--chaos only applies to the cluster backend")
    if coordination is not None:
        supported = {
            "sim": _SIM_COORDINATIONS,
            "processes": _PROC_COORDINATIONS,
            "cluster": _CLUSTER_COORDINATIONS,
        }
        # sequential stays (it is the oracle's determinism recheck);
        # parallel backends that don't implement the pin drop out.
        backends = [
            b for b in backends
            if b == "sequential" or coordination in supported[b]
        ]
        if all(b == "sequential" for b in backends):
            raise ValueError(
                f"no selected backend implements coordination "
                f"{coordination!r}"
            )

    families = _CHAOS_FAMILIES if chaos else FAMILIES
    rng = SplitMix64((seed << 4) ^ 0x5EED5EED)
    failures = 0
    for round_no in range(rounds):
        inst = sample_instance(families[round_no % len(families)], rng)
        report = build_report(inst)
        self_issues = oracle_self_check(report)
        if self_issues:
            failures += 1
            emit(f"round {round_no}: {inst.describe()}: ORACLE DISAGREEMENT")
            for issue in self_issues:
                emit(f"  {issue}")
            _write_artifact(
                artifact_dir, round_no, "oracle", inst, None, self_issues, None
            )
            continue
        for name in backends:
            cfg = sample_config(
                name,
                rng,
                chaos=chaos and name == "cluster",
                coordination=coordination if name != "sequential" else None,
            )
            issues = check_config(
                inst, cfg, report, cluster_timeout=cluster_timeout
            )
            if not issues:
                emit(f"round {round_no}: {inst.describe()} | {cfg.describe()}: ok")
                continue
            failures += 1
            emit(f"round {round_no}: {inst.describe()} | {cfg.describe()}: FAIL")
            for issue in issues:
                emit(f"  {issue}")
            shrunk = shrink_instance(
                inst,
                lambda cand: bool(
                    check_config(cand, cfg, cluster_timeout=cluster_timeout)
                ),
                max_attempts=shrink_attempts,
            )
            if shrunk != inst:
                emit(f"  shrunk to {shrunk.describe()}")
            _write_artifact(
                artifact_dir, round_no, name, inst, cfg, issues, shrunk
            )
    if failures:
        emit(f"verify: {failures} failing cell(s) over {rounds} round(s)")
        return 1
    emit(f"verify: all {rounds} round(s) conform")
    return 0


def _write_artifact(
    artifact_dir: Optional[str],
    round_no: int,
    backend: str,
    inst: Instance,
    cfg: Optional[BackendConfig],
    issues: list,
    shrunk: Optional[Instance],
) -> None:
    if not artifact_dir:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(artifact_dir, f"fail-r{round_no}-{backend}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "round": round_no,
                "instance": inst.to_dict(),
                "config": cfg.to_dict() if cfg is not None else None,
                "issues": list(issues),
                "shrunk": shrunk.to_dict() if shrunk is not None else None,
            },
            fh,
            indent=2,
        )
