"""ShardRouter: deterministic hash routing, global ids, dedup at scale."""

import time

import pytest

from repro.core.results import SearchResult
from repro.gateway import EventBroker, ShardRouter, shard_of_key
from repro.service import JobState
from repro.service.jobs import JobSpec


def spec(instance="brock90-1", app="maxclique", **kw):
    return JobSpec(app=app, instance=instance, **kw)


def wait_terminal(job, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not job.terminal:
        assert time.monotonic() < deadline, f"{job.id} stuck in {job.state}"
        time.sleep(0.005)


class CountingBackend:
    """Instant backend that remembers which jobs it executed."""

    def __init__(self):
        self.executed = []

    def execute(self, job, *, deadline=None, cancel=None):
        self.executed.append(job.id)
        return SearchResult(kind="optimisation", value=42, node=("w",))


def make_router(n_shards=4, backends=None, **kw):
    backends = backends if backends is not None else {}

    def factory(i):
        backends[i] = CountingBackend()
        return backends[i]

    kw.setdefault("pool", 1)
    return ShardRouter(n_shards, backend_factory=factory, **kw)


class TestRouting:
    def test_shard_of_key_is_first_16_hex_digits_mod_n(self):
        key = "deadbeefcafef00d" + "0" * 48
        assert shard_of_key(key, 4) == int("deadbeefcafef00d", 16) % 4
        assert shard_of_key(key, 1) == 0

    def test_route_is_deterministic_across_router_instances(self):
        s = spec()
        a = ShardRouter(4)
        b = ShardRouter(4)
        try:
            assert a.route(s) == b.route(s) == shard_of_key(s.key, 4)
        finally:
            a.close()
            b.close()

    def test_identical_specs_land_on_one_shard_different_specs_scatter(self):
        router = make_router(4)
        try:
            same = [router.route(spec(submitter=who)) for who in "abc"]
            assert len(set(same)) == 1  # submitter is not outcome-determining
            instances = ["brock90-1", "brock90-2", "brock100-1", "sanr90-1",
                         "p_hat90-1", "brock110-1"]
            scattered = {router.route(spec(instance=i)) for i in instances}
            assert len(scattered) > 1  # independent jobs fan out
        finally:
            router.close()

    def test_n_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestGlobalIds:
    def test_job_ids_carry_the_shard_prefix(self):
        router = make_router(4)
        try:
            index, job = router.submit(spec())
            assert job.id.startswith(f"s{index}-j")
            found_index, found = router.job(job.id)
            assert found is job
            assert found_index == index
        finally:
            router.close()

    @pytest.mark.parametrize("bad", ["", "j0001", "s-j1", "sX-j1", "s9-j1",
                                     "nonsense"])
    def test_malformed_or_out_of_range_ids_raise_keyerror(self, bad):
        router = make_router(2)
        try:
            with pytest.raises(KeyError):
                router.job(bad)
        finally:
            router.close()


class TestDedup:
    def test_duplicate_submissions_execute_once_two_results(self):
        backends = {}
        router = make_router(4, backends=backends)
        router.start()
        try:
            i1, first = router.submit(spec(submitter="alice"))
            i2, second = router.submit(spec(submitter="bob"))
            assert i1 == i2
            for job in (first, second):
                wait_terminal(job)
                assert job.state is JobState.DONE
                assert job.result.value == 42
            executed = [b for b in backends.values() if b.executed]
            assert len(executed) == 1
            assert len(executed[0].executed) == 1  # one run, two results
            snap = router.shards[i1].snapshot()
            assert snap.executed == 1
            assert snap.submitted == 2
        finally:
            router.close()

    def test_events_carry_the_shard_index(self):
        broker = EventBroker()
        router = make_router(4, broker=broker)
        router.start()
        try:
            index, job = router.submit(spec())
            wait_terminal(job)
            events = broker.history(job.id)
            assert [e["event"] for e in events][-1] == "done"
            assert all(e["shard"] == index for e in events)
        finally:
            router.close()


class TestReporting:
    def test_snapshots_and_in_flight(self):
        router = make_router(2)
        router.start()
        try:
            _, job = router.submit(spec())
            wait_terminal(job)
            snaps = router.snapshots()
            assert set(snaps) == {"0", "1"}
            assert sum(s.submitted for s in snaps.values()) == 1
            assert router.in_flight() == 0
        finally:
            router.close()

    def test_load_stats_empty_for_backends_without_them(self):
        router = make_router(2)
        try:
            assert router.load_stats() == {}
        finally:
            router.close()
