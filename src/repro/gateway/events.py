"""The job-status event hub bridging scheduler threads and asyncio.

Scheduler lifecycle callbacks fire on worker threads (and, for the
cluster backend, on the coordinator's loop thread); the gateway's
streaming handlers live on the asyncio loop.  :class:`EventBroker` sits
between them: ``publish`` is thread-safe and lock-cheap, ``subscribe``
is an async iterator that replays a job's full history and then follows
live events until the job reaches a terminal state — so a client that
connects *after* ``queued`` still sees the whole story, and a client
that connects after ``done`` gets an immediately-terminating stream
rather than a hang.

Bounded on both axes: per-job histories cap at ``history_limit``
(oldest *non-terminal* events dropped first, with a ``dropped`` marker
event so truncation is visible), and the broker retires the
oldest *terminal* job logs beyond ``max_jobs`` so a long-lived gateway
does not leak one log per job forever.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import AsyncIterator, Callable, Optional

__all__ = ["TERMINAL_EVENTS", "EventBroker"]

# Event names that end a job's stream (mirrors JobState terminals).
TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled", "timeout"})


class _JobLog:
    """Append-only event history + live subscriber fan-out for one job."""

    __slots__ = ("events", "terminal", "dropped", "subscribers")

    def __init__(self) -> None:
        self.events: list[dict] = []
        self.terminal = False
        self.dropped = 0
        # (loop, queue) pairs; events are marshalled onto each
        # subscriber's loop with call_soon_threadsafe.
        self.subscribers: list[tuple[asyncio.AbstractEventLoop, asyncio.Queue]] = []


class EventBroker:
    """Thread-safe publish, asyncio subscribe, bounded retention.

    Args:
        history_limit: per-job event cap; incumbent chatter beyond it
            drops the oldest events (terminality is never dropped).
        max_jobs: total job logs retained; beyond it the oldest
            *terminal* logs are evicted (live jobs are never evicted).
        clock: wall-clock source stamped onto events (injectable).
    """

    def __init__(
        self,
        *,
        history_limit: int = 512,
        max_jobs: int = 4096,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if history_limit < 8:
            raise ValueError("history_limit must be >= 8")
        if max_jobs < 1:
            raise ValueError("max_jobs must be >= 1")
        self.history_limit = history_limit
        self.max_jobs = max_jobs
        self._clock = clock
        self._lock = threading.Lock()
        self._logs: "OrderedDict[str, _JobLog]" = OrderedDict()  # guarded-by: _lock

    # -- publishing (any thread) --------------------------------------------

    def publish(self, job_id: str, event: str, **data) -> None:
        """Record ``event`` for ``job_id`` and wake its subscribers.

        Safe to call from any thread; never raises into the caller
        (the scheduler's hot path must not die on a slow stream).
        """
        record = {"job": job_id, "event": event, "ts": self._clock(), **data}
        with self._lock:
            log = self._logs.get(job_id)
            if log is None:
                log = _JobLog()
                self._logs[job_id] = log
                self._evict_locked()
            if log.terminal:
                return  # post-terminal noise: the stream already ended
            log.events.append(record)
            if len(log.events) > self.history_limit:
                # Keep the most recent events; the head slot becomes a
                # marker carrying the cumulative drop count.
                keep = self.history_limit - 1
                trimmed = len(log.events) - keep
                if log.dropped:
                    trimmed -= 1  # the old head marker is not a real event
                log.dropped += trimmed
                log.events = [
                    {
                        "job": job_id,
                        "event": "dropped",
                        "ts": record["ts"],
                        "count": log.dropped,
                    }
                ] + log.events[-keep:]
            if event in TERMINAL_EVENTS:
                log.terminal = True
            subscribers = list(log.subscribers)
        for loop, queue in subscribers:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, record)
            except RuntimeError:
                pass  # subscriber's loop is gone; its queue is garbage

    def _evict_locked(self) -> None:
        """Drop the oldest terminal logs beyond ``max_jobs`` (lock held)."""
        if len(self._logs) <= self.max_jobs:
            return
        for job_id in list(self._logs):
            log = self._logs[job_id]
            if log.terminal and not log.subscribers:
                del self._logs[job_id]
                if len(self._logs) <= self.max_jobs:
                    return

    # -- introspection -------------------------------------------------------

    def history(self, job_id: str) -> list[dict]:
        """A copy of the job's recorded events (empty if unknown)."""
        with self._lock:
            log = self._logs.get(job_id)
            return list(log.events) if log else []

    def closed(self, job_id: str) -> bool:
        """Whether the job's stream has reached a terminal event."""
        with self._lock:
            log = self._logs.get(job_id)
            return bool(log and log.terminal)

    def __len__(self) -> int:
        with self._lock:
            return len(self._logs)

    # -- subscribing (asyncio side) -----------------------------------------

    async def subscribe(
        self, job_id: str, *, poll_timeout: Optional[float] = None
    ) -> AsyncIterator[dict]:
        """Replay the job's history, then follow live events.

        The iterator ends after yielding a terminal event.  With
        ``poll_timeout`` set, a silent gap longer than that yields a
        synthetic ``{"event": "ping"}`` keep-alive record instead of
        blocking forever — streaming handlers use it to detect dead
        client sockets by attempting a write.
        """
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            log = self._logs.get(job_id)
            if log is None:
                log = _JobLog()
                self._logs[job_id] = log
                self._evict_locked()
            replay = list(log.events)
            terminal = log.terminal
            if not terminal:
                log.subscribers.append((loop, queue))
        try:
            for record in replay:
                yield record
                if record["event"] in TERMINAL_EVENTS:
                    return
            if terminal:
                return
            while True:
                try:
                    record = await asyncio.wait_for(queue.get(), poll_timeout)
                except asyncio.TimeoutError:
                    yield {"job": job_id, "event": "ping", "ts": self._clock()}
                    continue
                yield record
                if record["event"] in TERMINAL_EVENTS:
                    return
        finally:
            with self._lock:
                log = self._logs.get(job_id)
                if log is not None:
                    try:
                        log.subscribers.remove((loop, queue))
                    except ValueError:
                        pass
