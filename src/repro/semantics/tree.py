"""Materialised ordered trees and subtrees (paper Section 3.1).

An :class:`OrderedTree` is a non-empty prefix-closed set of words with a
sibling order.  A :class:`Subtree` is the semantics' unit of work: a
rooted, prefix-closed-above-the-root subset of an ordered tree, from
which the spawn and prune rules carve pieces.

The traversal order ``<<`` (depth-first, siblings in order) is realised
by mapping each node to its *index path* — the tuple of sibling indices
along the path from the root — and comparing index paths
lexicographically.  Python tuple comparison makes a proper prefix compare
smaller, which is exactly preorder.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Optional

from repro.semantics.words import EPSILON, Word, is_prefix, parent

__all__ = ["OrderedTree", "Subtree"]


class OrderedTree:
    """A finite, prefix-closed, sibling-ordered set of words.

    Construct from a mapping ``node -> ordered list of children``; every
    child must extend its parent by exactly one letter, and the sibling
    order is the list order.
    """

    def __init__(self, children: Mapping[Word, Iterable[Word]]) -> None:
        self._children: dict[Word, tuple[Word, ...]] = {}
        nodes: set[Word] = {EPSILON}
        for node, kids in children.items():
            kids = tuple(kids)
            for kid in kids:
                if len(kid) != len(node) + 1 or kid[: len(node)] != node:
                    raise ValueError(
                        f"{kid!r} is not a one-letter extension of {node!r}"
                    )
            if len(set(kids)) != len(kids):
                raise ValueError(f"duplicate children under {node!r}")
            self._children[node] = kids
            nodes.update(kids)
            nodes.add(node)
        # prefix closure check
        for node in nodes:
            if node != EPSILON and parent(node) not in nodes:
                raise ValueError(f"tree is not prefix-closed at {node!r}")
        # every node that appears as a child key must itself be reachable
        for node in self._children:
            if node not in nodes:
                raise ValueError(f"children given for unreachable node {node!r}")
        self._nodes = frozenset(nodes)
        self._index_path: dict[Word, tuple[int, ...]] = {EPSILON: ()}
        self._assign_index_paths(EPSILON)
        if len(self._index_path) != len(self._nodes):
            unreachable = set(self._nodes) - set(self._index_path)
            raise ValueError(f"nodes unreachable from the root: {unreachable!r}")

    def _assign_index_paths(self, node: Word) -> None:
        base = self._index_path[node]
        for i, kid in enumerate(self._children.get(node, ())):
            self._index_path[kid] = base + (i,)
            self._assign_index_paths(kid)

    @classmethod
    def from_nodes(cls, nodes: Iterable[Word]) -> "OrderedTree":
        """Build a tree from a plain node set, ordering siblings by letter.

        Convenient for tests: the sibling order is the natural order of
        the letters, so the tree is fully determined by the node set.
        """
        node_set = set(nodes) | {EPSILON}
        children: dict[Word, list[Word]] = {}
        for node in node_set:
            if node != EPSILON:
                children.setdefault(parent(node), []).append(node)
        for kids in children.values():
            kids.sort(key=lambda w: w[-1])
        return cls(children)

    # -- basic queries ---------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Word) -> bool:
        return node in self._nodes

    def children(self, node: Word) -> tuple[Word, ...]:
        """Children of ``node`` in sibling order."""
        if node not in self._nodes:
            raise KeyError(node)
        return self._children.get(node, ())

    def traversal_key(self, node: Word) -> tuple[int, ...]:
        """The index path of ``node``; lexicographic order = ``<<``."""
        return self._index_path[node]

    def before(self, u: Word, v: Word) -> bool:
        """``u << v``: u strictly precedes v in traversal (preorder)."""
        return u != v and self._index_path[u] <= self._index_path[v]

    def preorder(self) -> list[Word]:
        """All nodes in traversal order."""
        return sorted(self._nodes, key=self._index_path.__getitem__)

    def whole(self) -> "Subtree":
        """The entire tree as a subtree rooted at the root."""
        return Subtree(self, EPSILON, self._nodes)


class Subtree:
    """A unit of work: nodes of a tree, rooted and prefix-closed above it.

    Supports the operations the reduction rules need — ``next``,
    ``children``, ``lowest``/``next_lowest``, rooted-subtree extraction
    and node-set subtraction — each a direct transcription of the
    definitions in Section 3.1.
    """

    def __init__(self, tree: OrderedTree, root: Word, nodes: Iterable[Word]) -> None:
        self.tree = tree
        self.root = root
        self._nodes = frozenset(nodes)
        if root not in self._nodes:
            raise ValueError("subtree must contain its root")
        for node in self._nodes:
            if node not in tree:
                raise ValueError(f"{node!r} is not a node of the underlying tree")
            if not is_prefix(root, node):
                raise ValueError(f"{node!r} does not extend the root {root!r}")
        # prefix closure above the root
        for node in self._nodes:
            while node != root:
                node = parent(node)
                if node not in self._nodes:
                    raise ValueError(f"subtree not prefix-closed at {node!r}")

    # -- container protocol ----------------------------------------------

    @property
    def nodes(self) -> frozenset:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Word) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[Word]:
        return iter(self._nodes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Subtree)
            and self.tree is other.tree
            and self.root == other.root
            and self._nodes == other._nodes
        )

    def __hash__(self) -> int:
        return hash((id(self.tree), self.root, self._nodes))

    def __repr__(self) -> str:
        return f"Subtree(root={self.root!r}, size={len(self._nodes)})"

    # -- Section 3.1 operations -------------------------------------------

    def children(self, v: Word) -> list[Word]:
        """``children(S, v)``: children of v present in this subtree."""
        return [c for c in self.tree.children(v) if c in self._nodes]

    def subtree(self, v: Word) -> "Subtree":
        """``subtree(S, v)``: the nodes of S that extend v, rooted at v."""
        if v not in self._nodes:
            raise KeyError(v)
        return Subtree(
            self.tree, v, [w for w in self._nodes if is_prefix(v, w)]
        )

    def succ(self, v: Word) -> list[Word]:
        """``succ(S, v)``: nodes of S strictly after v in traversal order."""
        key = self.tree.traversal_key(v)
        return [w for w in self._nodes if w != v and self.tree.traversal_key(w) > key]

    def next(self, v: Word) -> Optional[Word]:
        """``next(S, v)``: the traversal-order successor of v in S, or None."""
        succ = self.succ(v)
        if not succ:
            return None
        return min(succ, key=self.tree.traversal_key)

    def lowest(self, v: Word) -> list[Word]:
        """``lowest(S, v)``: successors of v at minimum depth, in order."""
        succ = self.succ(v)
        if not succ:
            return []
        min_depth = min(len(w) for w in succ)
        low = [w for w in succ if len(w) == min_depth]
        low.sort(key=self.tree.traversal_key)
        return low

    def next_lowest(self, v: Word) -> Optional[Word]:
        """``nextLowest(S, v)``: first (traversal order) of ``lowest``."""
        low = self.lowest(v)
        return low[0] if low else None

    def remove(self, nodes: Iterable[Word]) -> "Subtree":
        """``S \\ S'`` for a node set S' (caller must keep the result rooted)."""
        remaining = self._nodes - set(nodes)
        return Subtree(self.tree, self.root, remaining)

    def unexplored_after(self, v: Word) -> int:
        """Number of nodes still to visit (used by the termination measure)."""
        return len(self.succ(v))
