"""Seeded random instance generation and shrinking for the harness.

An :class:`Instance` is a ``(family, args)`` pair of plain values — the
whole instance is reproducible from those two fields, which is what
makes failures reportable: the shrunk repro artifact is just the pair,
and :func:`instance_spec` (a top-level importable factory) rebuilds the
spec anywhere, including inside multiprocessing/cluster workers.

Sizes are deliberately small (sequential trees of tens to a few
thousand nodes): the harness's power comes from many seeded instances
times many knob settings, not from big instances — and small trees keep
the semantics-machine oracle (which materialises the full tree)
applicable.

Shrinking is greedy per-dimension: each family orders its candidate
reductions from coarse (halve the size) to fine (decrement), and
:func:`shrink_instance` repeatedly commits the first candidate that
still fails, until none does.  Seeds are never shrunk — the failing
tree itself is the witness, and changing the seed changes the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.apps.kclique import kclique_spec
from repro.apps.knapsack import knapsack_spec
from repro.apps.maxclique import maxclique_spec
from repro.apps.sip import sip_spec
from repro.apps.uts import uts_spec_from_params
from repro.core.space import SearchSpec
from repro.instances.graphs import uniform_graph
from repro.instances.library import random_knapsack, random_sip
from repro.util.rng import SplitMix64

__all__ = [
    "FAMILIES",
    "Instance",
    "instance_spec",
    "search_setup",
    "sample_instance",
    "shrink_instance",
]

# family -> search type it exercises (see search_setup for targets).
FAMILIES = ("uts", "maxclique", "kclique", "knapsack", "sip")
_KINDS = {
    "uts": "enumeration",
    "maxclique": "optimisation",
    "knapsack": "optimisation",
    "kclique": "decision",
    "sip": "decision",
}


@dataclass(frozen=True)
class Instance:
    """One generated problem instance, fully determined by plain args.

    ``args`` layouts (all ints, so they survive JSON exactly):

    - uts:       (b0, max_depth, seed) — geometric shape
    - maxclique: (n, p_pct, seed) — G(n, p_pct/100)
    - kclique:   (n, p_pct, k, seed) — decision target k
    - knapsack:  (n, seed) — strongly-correlated items
    - sip:       (pattern_n, target_n, p_pct, planted, seed)
    """

    family: str
    args: tuple

    @property
    def kind(self) -> str:
        return _KINDS[self.family]

    def to_dict(self) -> dict:
        """JSON-ready form for the repro artifact."""
        return {"family": self.family, "args": list(self.args)}

    @classmethod
    def from_dict(cls, data: dict) -> "Instance":
        return cls(str(data["family"]), tuple(data["args"]))

    def describe(self) -> str:
        """Short label for log lines, e.g. ``knapsack(6, 755665326)``."""
        return f"{self.family}{self.args!r}"


def instance_spec(family: str, args) -> SearchSpec:
    """Top-level spec factory: rebuild a generated instance's spec.

    This is the ``(factory, factory_args)`` pair shipped to process and
    cluster workers — it must stay importable as
    ``repro.verify.generators:instance_spec`` and accept ``args`` as
    any sequence (wire transport may deliver a list).
    """
    args = tuple(args)
    name = f"verify-{family}-{'-'.join(str(a) for a in args)}"
    if family == "uts":
        b0, max_depth, seed = args
        return uts_spec_from_params(
            "geometric", float(b0), int(max_depth), 2, 0.1, int(seed), name=name
        )
    if family == "maxclique":
        n, p_pct, seed = args
        return maxclique_spec(
            uniform_graph(int(n), p_pct / 100.0, int(seed)), name=name
        )
    if family == "kclique":
        n, p_pct, _k, seed = args
        return kclique_spec(
            uniform_graph(int(n), p_pct / 100.0, int(seed)), name=name
        )
    if family == "knapsack":
        n, seed = args
        return knapsack_spec(random_knapsack(int(n), int(seed)), name=name)
    if family == "sip":
        pattern_n, target_n, p_pct, planted, seed = args
        return sip_spec(
            random_sip(
                int(pattern_n),
                int(target_n),
                p_pct / 100.0,
                int(seed),
                planted=bool(planted),
            ),
            name=name,
        )
    raise ValueError(f"unknown instance family {family!r}")


def search_setup(inst: Instance) -> tuple[SearchSpec, str, dict]:
    """``(spec, search_kind, stype_kwargs)`` for one instance."""
    spec = instance_spec(inst.family, inst.args)
    kwargs: dict = {}
    if inst.family == "kclique":
        kwargs = {"target": int(inst.args[2])}
    elif inst.family == "sip":
        kwargs = {"target": int(inst.args[0])}
    return spec, inst.kind, kwargs


def sample_instance(family: str, rng: SplitMix64) -> Instance:
    """Draw one seeded random instance of ``family``."""
    seed = rng.next_u64() & 0x7FFFFFFF
    if family == "uts":
        return Instance(family, (2 + rng.randrange(2), 3 + rng.randrange(2), seed))
    if family == "maxclique":
        return Instance(
            family, (8 + rng.randrange(7), 30 + rng.randrange(41), seed)
        )
    if family == "kclique":
        return Instance(
            family,
            (8 + rng.randrange(7), 30 + rng.randrange(41), 3 + rng.randrange(3), seed),
        )
    if family == "knapsack":
        return Instance(family, (6 + rng.randrange(5), seed))
    if family == "sip":
        return Instance(
            family,
            (
                3 + rng.randrange(2),
                6 + rng.randrange(4),
                30 + rng.randrange(31),
                rng.randrange(2),
                seed,
            ),
        )
    raise ValueError(f"unknown instance family {family!r}")


# -- shrinking ----------------------------------------------------------------


def _steps_down(value: int, floor: int) -> Iterator[int]:
    """Candidate reductions of one dimension, coarse first."""
    if value <= floor:
        return
    half = max(floor, value // 2)
    if half < value:
        yield half
    if value - 1 != half and value - 1 >= floor:
        yield value - 1


def _candidates(inst: Instance) -> Iterator[Instance]:
    """One-step-smaller variants of ``inst`` (seed left untouched)."""
    a = inst.args
    if inst.family == "uts":
        for md in _steps_down(a[1], 1):
            yield Instance(inst.family, (a[0], md, a[2]))
        for b0 in _steps_down(a[0], 1):
            yield Instance(inst.family, (b0, a[1], a[2]))
    elif inst.family == "maxclique":
        for n in _steps_down(a[0], 2):
            yield Instance(inst.family, (n, a[1], a[2]))
    elif inst.family == "kclique":
        for n in _steps_down(a[0], 2):
            yield Instance(inst.family, (n, a[1], a[2], a[3]))
        for k in _steps_down(a[2], 1):
            yield Instance(inst.family, (a[0], a[1], k, a[3]))
    elif inst.family == "knapsack":
        for n in _steps_down(a[0], 1):
            yield Instance(inst.family, (n, a[1]))
    elif inst.family == "sip":
        for tn in _steps_down(a[1], a[0]):
            yield Instance(inst.family, (a[0], tn, a[2], a[3], a[4]))
        for pn in _steps_down(a[0], 2):
            if pn <= a[1]:
                yield Instance(inst.family, (pn, a[1], a[2], a[3], a[4]))


def shrink_instance(
    inst: Instance,
    still_fails: Callable[[Instance], bool],
    *,
    max_attempts: int = 60,
) -> Instance:
    """Greedily reduce ``inst`` while ``still_fails`` holds.

    ``still_fails`` must be a pure re-check of the original failure
    (same backend, same knobs) and should swallow its own run errors —
    a candidate that *crashes* the check is treated as not-failing and
    skipped, so shrinking can only ever return an instance that
    reproduces the original class of failure.
    """
    current = inst
    attempts = 0
    progressed = True
    while progressed and attempts < max_attempts:
        progressed = False
        for candidate in _candidates(current):
            attempts += 1
            try:
                failing = bool(still_fails(candidate))
            except Exception:
                failing = False
            if failing:
                current = candidate
                progressed = True
                break
            if attempts >= max_attempts:
                break
    return current
