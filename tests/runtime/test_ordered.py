"""Tests for the Ordered coordination (replicable B&B, paper §2.1 / [4]).

Ordered generates the same task set as Depth-Bounded but executes it
from a single global workpool ranked by each task's heuristic path key,
so tasks start in exactly the sequential traversal order.  The paper
cites this discipline ([4]) as the skeleton that controls performance
anomalies; the key measurable consequences are (a) correctness as
usual, and (b) dramatically lower run-to-run variance in work done.
"""

import pytest

from repro.core.params import SkeletonParams
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.core.skeletons import make_skeleton
from repro.core.tasks import ORDERED, STACK
from repro.runtime.executor import SimulatedCluster
from repro.runtime.topology import Topology

from tests.conftest import make_toy_spec


def cluster(localities=2, workers=3):
    return SimulatedCluster(Topology(localities=localities, workers_per_locality=workers))


@pytest.fixture
def clique_spec():
    from repro.apps.maxclique import maxclique_spec
    from repro.instances.graphs import uniform_graph

    return maxclique_spec(uniform_graph(35, 0.55, seed=21))


class TestCorrectness:
    def test_enumeration_matches_sequential(self, toy_spec):
        seq = sequential_search(toy_spec, Enumeration())
        res = cluster().run(toy_spec, Enumeration(), ORDERED, SkeletonParams(d_cutoff=2))
        assert res.value == seq.value

    def test_optimisation_matches_sequential(self, clique_spec):
        seq = sequential_search(clique_spec, Optimisation())
        res = cluster().run(
            clique_spec, Optimisation(), ORDERED, SkeletonParams(d_cutoff=2)
        )
        assert res.value == seq.value

    def test_decision(self, toy_spec):
        res = cluster().run(toy_spec, Decision(target=5), ORDERED, SkeletonParams(d_cutoff=1))
        assert res.found is True

    def test_skeleton_name_dispatch(self, toy_spec):
        res = make_skeleton("ordered", "optimisation").search(
            toy_spec, SkeletonParams(localities=1, workers_per_locality=3, d_cutoff=1)
        )
        assert res.value == 7


class TestOrderPreservation:
    def test_tasks_start_in_heuristic_order(self, clique_spec):
        """With one worker, the global ranked pool must reproduce the
        exact sequential visit order, hence the exact node count."""
        seq = sequential_search(clique_spec, Optimisation())
        res = cluster(localities=1, workers=1).run(
            clique_spec, Optimisation(), ORDERED, SkeletonParams(d_cutoff=2)
        )
        assert res.metrics.nodes == seq.metrics.nodes

    def test_keys_rank_pool_pops(self):
        from repro.runtime.workpool import Workpool

        pool = Workpool("order")
        pool.push("late", depth=1, rank=(2,))
        pool.push("early", depth=5, rank=(0, 4))
        pool.push("mid", depth=0, rank=(1,))
        assert [pool.pop() for _ in range(3)] == ["early", "mid", "late"]


class TestReplicability:
    def test_work_variance_lower_than_stacksteal(self, clique_spec):
        """The [4] claim at small scale: across seeds, Ordered's node
        count varies far less than Stack-Stealing's."""

        def spread(policy, knob):
            nodes = [
                cluster(localities=2, workers=4)
                .run(clique_spec, Optimisation(), policy, knob.with_(seed=s))
                .metrics.nodes
                for s in range(6)
            ]
            return max(nodes) - min(nodes), nodes

        ordered_spread, _ = spread(ORDERED, SkeletonParams(d_cutoff=2))
        stack_spread, _ = spread(STACK, SkeletonParams(chunked=False))
        assert ordered_spread <= stack_spread

    def test_deterministic_given_seed(self, clique_spec):
        params = SkeletonParams(d_cutoff=2, seed=3)
        a = cluster().run(clique_spec, Optimisation(), ORDERED, params)
        b = cluster().run(clique_spec, Optimisation(), ORDERED, params)
        assert a.metrics.nodes == b.metrics.nodes
        assert a.virtual_time == b.virtual_time


class TestExactOrderProperty:
    """Hypothesis: with one worker, the Ordered skeleton is node-for-node
    the sequential search, even under branch-and-bound pruning — the
    strongest form of the order-preservation claim."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def random_bounded_spec(seed, width, depth):
        children = {}
        values = {}

        def grow(name, d):
            values[name] = hash((name, seed, "v")) % 17
            if d == depth:
                return
            count = hash((name, seed)) % (width + 1)
            kids = [f"{name}.{i}" for i in range(count)]
            children[name] = kids
            for k in kids:
                grow(k, d + 1)

        grow("root", 0)
        return make_toy_spec(children, values, with_bound=True)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 2**31),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=3),
    )
    def test_one_worker_matches_sequential_exactly(self, seed, width, depth, cutoff):
        spec = self.random_bounded_spec(seed, width, depth)
        seq = sequential_search(spec, Optimisation())
        res = cluster(localities=1, workers=1).run(
            spec, Optimisation(), ORDERED, SkeletonParams(d_cutoff=cutoff)
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
