"""Tests for seeded instance generation and greedy shrinking."""

import pytest

from repro.cluster import protocol as P
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.util.rng import SplitMix64
from repro.verify.generators import (
    FAMILIES,
    Instance,
    instance_spec,
    sample_instance,
    search_setup,
    shrink_instance,
)


class TestDeterminism:
    def test_sample_stream_reproducible(self):
        a = SplitMix64(42)
        b = SplitMix64(42)
        for family in FAMILIES:
            assert sample_instance(family, a) == sample_instance(family, b)

    def test_different_seeds_differ(self):
        a = sample_instance("maxclique", SplitMix64(1))
        b = sample_instance("maxclique", SplitMix64(2))
        assert a != b

    @pytest.mark.parametrize("family", FAMILIES)
    def test_spec_rebuild_gives_same_search(self, family):
        # The (family, args) pair fully determines the search space:
        # rebuilding the spec must reproduce the sequential result.
        inst = sample_instance(family, SplitMix64(9))
        spec1, kind, kwargs = search_setup(inst)
        spec2 = instance_spec(inst.family, inst.args)
        stype = make_search_type(kind, **kwargs)
        r1 = sequential_search(spec1, stype)
        r2 = sequential_search(spec2, make_search_type(kind, **kwargs))
        assert r1.value == r2.value
        assert r1.metrics.nodes == r2.metrics.nodes

    def test_factory_accepts_list_args(self):
        # Wire transport delivers args as a JSON list, not a tuple.
        inst = sample_instance("knapsack", SplitMix64(3))
        spec = instance_spec(inst.family, list(inst.args))
        assert spec.name == instance_spec(inst.family, inst.args).name

    def test_factory_is_wireable(self):
        path = P.factory_path(instance_spec)
        assert path == "repro.verify.generators:instance_spec"
        assert P.resolve_factory(path) is instance_spec

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            instance_spec("sudoku", (3,))
        with pytest.raises(ValueError):
            sample_instance("sudoku", SplitMix64(0))

    def test_dict_round_trip(self):
        inst = sample_instance("sip", SplitMix64(8))
        assert Instance.from_dict(inst.to_dict()) == inst


class TestShrinking:
    def test_shrinks_to_floor_when_everything_fails(self):
        inst = Instance("maxclique", (14, 50, 123))
        shrunk = shrink_instance(inst, lambda i: True)
        assert shrunk.args[0] == 2  # the family's size floor
        assert shrunk.args[2] == 123  # seed untouched

    def test_keeps_instance_when_nothing_smaller_fails(self):
        inst = Instance("knapsack", (9, 55))
        shrunk = shrink_instance(inst, lambda i: i == inst)
        assert shrunk == inst

    def test_commits_only_still_failing_reductions(self):
        # Failure iff n >= 6: shrinking must stop exactly at 6.
        inst = Instance("knapsack", (10, 7))
        shrunk = shrink_instance(inst, lambda i: i.args[0] >= 6)
        assert shrunk.args == (6, 7)

    def test_crashing_predicate_treated_as_not_failing(self):
        inst = Instance("maxclique", (10, 40, 5))

        def bomb(candidate):
            raise RuntimeError("checker crashed")

        assert shrink_instance(inst, bomb) == inst

    def test_attempt_budget_respected(self):
        calls = []
        inst = Instance("maxclique", (14, 50, 1))
        shrink_instance(inst, lambda i: calls.append(i) or True, max_attempts=3)
        assert len(calls) <= 3

    def test_seed_never_shrunk(self):
        # The seed defines the failing tree; every candidate keeps it.
        for family in FAMILIES:
            inst = sample_instance(family, SplitMix64(17))
            seed = inst.args[-1]
            shrunk = shrink_instance(inst, lambda i: True)
            assert shrunk.args[-1] == seed
