"""Tests for SkeletonParams, SearchSpec and SearchResult plumbing."""

import pytest

from repro.core.params import SkeletonParams
from repro.core.results import SearchMetrics, SearchResult
from repro.core.space import SearchSpec

from .conftest import make_toy_spec


class TestSkeletonParams:
    def test_defaults(self):
        p = SkeletonParams()
        assert p.workers == 15

    def test_workers_product(self):
        p = SkeletonParams(localities=4, workers_per_locality=8)
        assert p.workers == 32

    def test_with_(self):
        p = SkeletonParams().with_(d_cutoff=5)
        assert p.d_cutoff == 5
        assert p.budget == SkeletonParams().budget

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            SkeletonParams(d_cutoff=-1)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            SkeletonParams(budget=0)

    def test_invalid_topology(self):
        with pytest.raises(ValueError):
            SkeletonParams(localities=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SkeletonParams().d_cutoff = 3  # type: ignore[misc]

    @pytest.mark.parametrize(
        "knob", ["budget", "n_processes", "share_poll", "cluster_workers"]
    )
    def test_worker_knobs_reject_bad_values(self, knob):
        # Each knob names itself in the error so a bad CLI/job-file value
        # fails at construction, not as an opaque runtime error.
        for bad in (0, -3, True, 2.0, "4"):
            with pytest.raises(ValueError, match=knob):
                SkeletonParams(**{knob: bad})

    @pytest.mark.parametrize(
        "knob", ["budget", "n_processes", "share_poll", "cluster_workers"]
    )
    def test_worker_knobs_accept_one(self, knob):
        assert getattr(SkeletonParams(**{knob: 1}), knob) == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SkeletonParams(backend="gpu")

    def test_cluster_backend_accepted(self):
        assert SkeletonParams(backend="cluster").cluster_workers == 2


class TestSearchSpec:
    def test_children_of(self, toy_spec):
        gen = toy_spec.children_of("root")
        assert [gen.next() for _ in range(3)] == ["a", "b", "c"]

    def test_bound(self, toy_spec):
        assert toy_spec.bound("c") == 7
        assert toy_spec.can_prune

    def test_bound_without_function_raises(self, toy_spec_unbounded):
        assert not toy_spec_unbounded.can_prune
        with pytest.raises(ValueError):
            toy_spec_unbounded.bound("a")


class TestSearchMetrics:
    def test_merge(self):
        a = SearchMetrics(nodes=3, backtracks=1, prunes=2, max_depth=4)
        b = SearchMetrics(nodes=5, spawns=2, steals=1, max_depth=7)
        a.merge(b)
        assert a.nodes == 8
        assert a.spawns == 2
        assert a.max_depth == 7
        assert a.backtracks == 1

    def test_defaults_zero(self):
        m = SearchMetrics()
        assert (m.nodes, m.steals, m.failed_steals) == (0, 0, 0)


class TestSearchResult:
    def test_efficiency_none_for_sequential(self):
        r = SearchResult(kind="optimisation", value=3)
        assert r.efficiency() is None

    def test_efficiency_mean_utilisation(self):
        r = SearchResult(
            kind="optimisation",
            value=3,
            virtual_time=10.0,
            per_worker_busy=[10.0, 5.0],
        )
        assert r.efficiency() == pytest.approx(0.75)

    def test_efficiency_guards_zero_makespan(self):
        r = SearchResult(kind="x", value=0, virtual_time=0.0, per_worker_busy=[0.0])
        assert r.efficiency() is None
