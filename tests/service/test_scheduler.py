"""Scheduler policy tests over a scripted (instant) backend.

Real search execution is covered by the end-to-end test; here a fake
backend makes the policy paths — dedup, coalescing, rejection, retry,
timeout, cancellation, follower fan-out — fast and deterministic.
"""

import pytest

from repro.core.results import SearchResult
from repro.service import (
    JobQueue,
    JobSpec,
    JobState,
    JobTimeout,
    Scheduler,
    WorkerCrash,
)


def spec(instance="brock90-1", app="maxclique", **kw):
    return JobSpec(app=app, instance=instance, **kw)


class ScriptedBackend:
    """Returns/raises per-instance scripted outcomes; counts attempts."""

    def __init__(self, script=None):
        self.script = script or {}
        self.executed = []

    def execute(self, job, *, deadline=None, cancel=None):
        self.executed.append(job.id)
        action = self.script.get(job.spec.instance)
        if action is None:
            return SearchResult(kind="optimisation", value=42, node=("w",))
        if isinstance(action, list):
            step = action.pop(0)
        else:
            step = action
        if isinstance(step, Exception):
            raise step
        return step


def make_sched(backend=None, **kw):
    kw.setdefault("n_workers", 1)
    return Scheduler(backend=backend or ScriptedBackend(), **kw)


class TestSubmission:
    def test_submit_and_run(self):
        s = make_sched()
        job = s.submit(spec())
        assert job.state is JobState.PENDING
        s.run_until_idle()
        assert job.state is JobState.DONE
        assert job.result.value == 42

    def test_unknown_instance_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown instance"):
            make_sched().submit(spec(instance="atlantis-9"))

    def test_app_mismatch_raises(self):
        with pytest.raises(ValueError, match="belongs to application"):
            make_sched().submit(spec(app="tsp"))

    def test_cache_hit_serves_without_execution(self):
        backend = ScriptedBackend()
        s = make_sched(backend)
        s.submit(spec())
        s.run_until_idle()
        dup = s.submit(spec(priority=9, submitter="other"))
        assert dup.state is JobState.DONE
        assert dup.from_cache
        assert backend.executed == ["j0001"]  # the duplicate never ran

    def test_jobs_listing_orders_prefixed_shard_ids(self):
        # Regression: jobs() sorted on int(id[1:]), which crashed on
        # sharded id prefixes ("s0-j0001") the gateway generates.
        s = make_sched(name="s0-")
        first = s.submit(spec())
        second = s.submit(spec(instance="brock90-2"))
        assert first.id == "s0-j0001"
        assert [j.id for j in s.jobs()] == [first.id, second.id]
        s.run_until_idle()

    def test_rejection_reports_reason_and_terminal_state(self):
        s = make_sched(queue=JobQueue(max_depth=1))
        s.submit(spec())
        rejected = s.submit(spec(instance="brock90-2"))
        assert rejected.state is JobState.FAILED
        assert "rejected: queue full" in rejected.error
        snap = s.metrics_snapshot()
        assert snap.rejected == 1


class TestCoalescing:
    def test_duplicate_while_queued_is_coalesced(self):
        backend = ScriptedBackend()
        s = make_sched(backend)
        leader = s.submit(spec())
        follower = s.submit(spec(submitter="other"))
        assert follower.coalesced_into == leader.id
        s.run_until_idle()
        assert backend.executed == [leader.id]  # one execution for two jobs
        assert follower.state is JobState.DONE
        assert follower.from_cache
        assert follower.result.value == 42
        assert s.metrics_snapshot().coalesced == 1

    def test_crashed_leader_retry_resolves_followers(self):
        # Crash-retry x coalescing: the leader's first attempt crashes,
        # the retry succeeds, and the coalesced follower must be served
        # from the *retried* result — one extra execution total, never a
        # separate run for the follower.
        ok = SearchResult(kind="optimisation", value=11, node=("w",))
        backend = ScriptedBackend({"brock90-1": [WorkerCrash("flaky"), ok]})
        s = make_sched(backend)
        leader = s.submit(spec())
        follower = s.submit(spec(submitter="other"))
        assert follower.coalesced_into == leader.id
        s.run_until_idle()
        assert leader.state is JobState.DONE
        assert leader.attempts == 2
        assert follower.state is JobState.DONE
        assert follower.from_cache
        assert follower.result.value == 11
        assert backend.executed == [leader.id, leader.id]
        snap = s.metrics_snapshot()
        assert snap.retries == 1
        assert snap.coalesced == 1

    def test_failed_leader_takes_followers_with_it(self):
        backend = ScriptedBackend(
            {"brock90-1": [WorkerCrash("boom"), WorkerCrash("boom")]}
        )
        s = make_sched(backend)
        leader = s.submit(spec())
        follower = s.submit(spec(submitter="other"))
        s.run_until_idle()
        assert leader.state is JobState.FAILED
        assert follower.state is JobState.FAILED
        assert leader.id in follower.error


class TestRetry:
    def test_one_retry_on_crash_then_success(self):
        ok = SearchResult(kind="optimisation", value=7, node=("w",))
        backend = ScriptedBackend({"brock90-1": [WorkerCrash("flaky"), ok]})
        s = make_sched(backend)
        job = s.submit(spec())
        s.run_until_idle()
        assert job.state is JobState.DONE
        assert job.attempts == 2
        assert s.metrics_snapshot().retries == 1

    def test_second_crash_is_failure(self):
        backend = ScriptedBackend(
            {"brock90-1": [WorkerCrash("bad"), WorkerCrash("worse")]}
        )
        s = make_sched(backend)
        job = s.submit(spec())
        s.run_until_idle()
        assert job.state is JobState.FAILED
        assert job.attempts == 2
        assert "worse" in job.error


class TestTimeoutAndCancel:
    def test_timeout_outcome(self):
        backend = ScriptedBackend({"brock90-1": JobTimeout()})
        s = make_sched(backend)
        job = s.submit(spec(timeout=0.5))
        s.run_until_idle()
        assert job.state is JobState.TIMEOUT
        assert "0.500" in job.error
        assert s.metrics_snapshot().jobs_by_state["TIMEOUT"] == 1

    def test_timeout_does_not_cache_anything(self):
        backend = ScriptedBackend({"brock90-1": JobTimeout()})
        s = make_sched(backend)
        s.submit(spec(timeout=0.5))
        s.run_until_idle()
        assert len(s.cache) == 0

    def test_cancel_queued_job_prevents_execution(self):
        backend = ScriptedBackend()
        s = make_sched(backend)
        job = s.submit(spec())
        assert s.cancel(job.id) is True
        s.run_until_idle()
        assert job.state is JobState.CANCELLED
        assert backend.executed == []

    def test_cancel_terminal_job_returns_false(self):
        s = make_sched()
        job = s.submit(spec())
        s.run_until_idle()
        assert s.cancel(job.id) is False

    def test_cancelling_leader_promotes_follower(self):
        backend = ScriptedBackend()
        s = make_sched(backend)
        leader = s.submit(spec())
        follower = s.submit(spec(submitter="other"))
        s.cancel(leader.id)
        s.run_until_idle()
        assert leader.state is JobState.CANCELLED
        assert follower.state is JobState.DONE
        assert backend.executed == [follower.id]  # follower ran as new leader

    def test_cancelling_follower_leaves_leader_alone(self):
        backend = ScriptedBackend()
        s = make_sched(backend)
        leader = s.submit(spec())
        follower = s.submit(spec(submitter="other"))
        s.cancel(follower.id)
        s.run_until_idle()
        assert follower.state is JobState.CANCELLED
        assert leader.state is JobState.DONE
        assert backend.executed == [leader.id]


class TestMetricsSnapshot:
    def test_snapshot_counts(self):
        s = make_sched()
        for name in ("brock90-1", "brock90-2", "brock90-1"):
            s.submit(spec(instance=name))
        s.run_until_idle()
        snap = s.metrics_snapshot()
        assert snap.submitted == 3
        assert snap.completed == 3
        assert snap.jobs_by_state == {"DONE": 3}
        assert snap.coalesced == 1
        assert snap.cache_hit_rate is not None and snap.cache_hit_rate > 0
        assert snap.latency_p50 is not None
        assert snap.latency_p95 >= snap.latency_p50
        assert snap.queue_depth == 0 and snap.running == 0

    def test_render_mentions_key_figures(self):
        s = make_sched()
        s.submit(spec())
        s.run_until_idle()
        text = s.metrics_snapshot().render()
        assert "hit rate" in text
        assert "p95" in text
        assert "DONE=1" in text

    def test_to_dict_round_trips_through_json(self):
        import json

        s = make_sched()
        s.submit(spec())
        s.run_until_idle()
        blob = json.dumps(s.metrics_snapshot().to_dict())
        assert json.loads(blob)["submitted"] == 1
