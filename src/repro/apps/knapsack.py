"""0/1 Knapsack — branch-and-bound optimisation (paper §5.1, App. A.3).

Choose a subset of items, each with a profit and a weight, maximising
profit subject to a capacity.  Following the YewPar application, a
search-tree node is a partial selection and its children add one more
candidate item (candidates are the items after the last added one that
still fit), so each subset is generated exactly once.  Items are
pre-sorted by profit density — both the branching heuristic and what
makes the Dantzig fractional bound greedy-computable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.nodegen import IterNodeGenerator, NodeGenerator
from repro.core.space import SearchSpec

__all__ = [
    "KnapsackInstance",
    "KnapsackNode",
    "KnapsackGen",
    "knapsack_spec",
    "knapsack_binary_spec",
]


@dataclass(frozen=True)
class KnapsackInstance:
    """Items (sorted by density on construction) and a capacity."""

    profits: tuple[int, ...]
    weights: tuple[int, ...]
    capacity: int

    def __post_init__(self) -> None:
        if len(self.profits) != len(self.weights):
            raise ValueError("profits and weights must have equal length")
        if any(w <= 0 for w in self.weights) or any(p < 0 for p in self.profits):
            raise ValueError("weights must be positive and profits non-negative")
        if self.capacity < 0:
            raise ValueError("capacity must be non-negative")

    @classmethod
    def sorted_by_density(
        cls, profits: Sequence[int], weights: Sequence[int], capacity: int
    ) -> "KnapsackInstance":
        """Canonical form: items in non-increasing profit/weight order."""
        order = sorted(
            range(len(profits)), key=lambda i: (-(profits[i] / weights[i]), i)
        )
        return cls(
            tuple(profits[i] for i in order),
            tuple(weights[i] for i in order),
            capacity,
        )

    @property
    def n(self) -> int:
        return len(self.profits)


@dataclass(frozen=True, slots=True)
class KnapsackNode:
    """A partial selection: total profit/weight and the next item index."""

    profit: int
    weight: int
    next_index: int  # candidates are items >= next_index


def _children(inst: KnapsackInstance, node: KnapsackNode) -> Iterator[KnapsackNode]:
    remaining = inst.capacity - node.weight
    for j in range(node.next_index, inst.n):
        if inst.weights[j] <= remaining:
            yield KnapsackNode(
                profit=node.profit + inst.profits[j],
                weight=node.weight + inst.weights[j],
                next_index=j + 1,
            )


class KnapsackGen(NodeGenerator[KnapsackInstance, KnapsackNode]):
    """Children add each still-fitting later item, densest first."""

    __slots__ = ("_inner",)

    def __init__(self, inst: KnapsackInstance, parent: KnapsackNode) -> None:
        self._inner = IterNodeGenerator(_children(inst, parent))

    def has_next(self) -> bool:
        return self._inner.has_next()

    def next(self) -> KnapsackNode:
        return self._inner.next()


def fractional_bound(inst: KnapsackInstance, node: KnapsackNode) -> int:
    """Dantzig upper bound: fill remaining capacity greedily by density,
    taking a fraction of the first item that does not fit.  Admissible
    because the LP relaxation dominates every 0/1 completion."""
    capacity = inst.capacity - node.weight
    bound = float(node.profit)
    for j in range(node.next_index, inst.n):
        w = inst.weights[j]
        if w <= capacity:
            capacity -= w
            bound += inst.profits[j]
        else:
            bound += inst.profits[j] * (capacity / w)
            break
    # Integer profits: the true optimum below this node is an integer,
    # so flooring keeps the bound admissible and tightens it.
    import math

    return math.floor(bound + 1e-9)


def _binary_children(
    inst: KnapsackInstance, node: KnapsackNode
) -> Iterator[KnapsackNode]:
    """Take/skip branching on item ``next_index`` (take first: the
    density order makes taking the greedy-preferred move)."""
    j = node.next_index
    if j >= inst.n:
        return
    if node.weight + inst.weights[j] <= inst.capacity:
        yield KnapsackNode(
            profit=node.profit + inst.profits[j],
            weight=node.weight + inst.weights[j],
            next_index=j + 1,
        )
    yield KnapsackNode(profit=node.profit, weight=node.weight, next_index=j + 1)


class KnapsackBinaryGen(NodeGenerator[KnapsackInstance, KnapsackNode]):
    """Binary take/skip generator — the textbook alternative tree shape.

    Same search space as :class:`KnapsackGen` (every feasible subset is
    a leaf) but expressed as a depth-``n`` binary tree instead of the
    add-a-candidate multiway tree.  Kept alongside the primary generator
    to demonstrate — and let benchmarks measure — that *generator
    design* changes tree size and parallel behaviour while the skeleton
    stays untouched (§4.1's decoupling claim).
    """

    __slots__ = ("_inner",)

    def __init__(self, inst: KnapsackInstance, parent: KnapsackNode) -> None:
        self._inner = IterNodeGenerator(_binary_children(inst, parent))

    def has_next(self) -> bool:
        return self._inner.has_next()

    def next(self) -> KnapsackNode:
        return self._inner.next()


def knapsack_binary_spec(
    inst: KnapsackInstance, *, name: str = "knapsack-binary"
) -> SearchSpec:
    """Knapsack with take/skip branching; same optimum as
    :func:`knapsack_spec`, different tree."""
    return SearchSpec(
        name=name,
        space=inst,
        root=KnapsackNode(profit=0, weight=0, next_index=0),
        generator=KnapsackBinaryGen,
        objective=lambda node: node.profit,
        upper_bound=fractional_bound,
        witness_check=lambda inst_, node: (
            0 <= node.weight <= inst_.capacity and node.profit >= 0
        ),
    )


def knapsack_spec(inst: KnapsackInstance, *, name: str = "knapsack") -> SearchSpec:
    """Knapsack :class:`SearchSpec`; pair with Optimisation."""
    return SearchSpec(
        name=name,
        space=inst,
        root=KnapsackNode(profit=0, weight=0, next_index=0),
        generator=KnapsackGen,
        objective=lambda node: node.profit,
        upper_bound=fractional_bound,
        witness_check=lambda inst_, node: (
            0 <= node.weight <= inst_.capacity and node.profit >= 0
        ),
    )
