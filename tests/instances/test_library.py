"""Tests for the named instance registry."""

import pytest

from repro.core.space import SearchSpec
from repro.instances.library import (
    APPS,
    instance_names,
    load_instance,
    spec_for,
    suite,
)


class TestRegistry:
    def test_names_nonempty(self):
        assert len(instance_names()) >= 25

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_instance("nonexistent-instance")

    def test_load_is_memoised(self):
        a = load_instance("sanr90-1")
        b = load_instance("sanr90-1")
        assert a is b

    def test_every_app_has_a_suite(self):
        for app in APPS:
            assert suite(app), f"no instances registered for {app}"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            suite("sudoku")

    def test_maxclique_suite_has_18_instances(self):
        # Table 1 compares 18 instances.
        assert len(suite("maxclique")) == 18


class TestSpecFor:
    def test_returns_spec_and_type(self):
        spec, stype, kwargs = spec_for("sanr90-1")
        assert isinstance(spec, SearchSpec)
        assert stype == "optimisation"
        assert kwargs == {}

    def test_decision_instances_carry_target(self):
        spec, stype, kwargs = spec_for("kclique-planted-80")
        assert stype == "decision"
        assert kwargs["target"] == 18

    def test_every_instance_spec_builds(self):
        for name in instance_names():
            spec, stype, kwargs = spec_for(name)
            assert spec.name
            gen = spec.children_of(spec.root)
            assert hasattr(gen, "has_next")

    def test_enumeration_suites(self):
        for name in suite("uts") + suite("ns"):
            _, stype, _ = spec_for(name)
            assert stype == "enumeration"


class TestDecoySip:
    def test_anomaly_structure(self):
        # The decoy instance's whole point (bench_cluster_scaling): the
        # only candidates for the first pattern vertex are the three
        # decoy hubs, then the planted image — in that fail-first order.
        inst = load_instance("sip-decoy-24-200")
        p0 = inst.order[0]
        dp0 = inst.pattern.degree(p0)
        assert p0 == 0 and dp0 == inst.pattern.n - 1
        cands = [w for w in inst.target_by_degree
                 if inst.target.degree(w) >= dp0]
        pn = inst.pattern.n
        assert cands == [pn, pn + 1, pn + 2, 0]

    def test_planted_block_is_exact_copy(self):
        inst = load_instance("sip-decoy-24-200")
        pn = inst.pattern.n
        for u in range(pn):
            for v in range(u + 1, pn):
                assert inst.pattern.has_edge(u, v) == inst.target.has_edge(u, v)
