"""Tests for the multiprocessing Depth-Bounded backend.

Factories must be top-level (picklable) — that constraint is part of
the backend's contract and these tests exercise it for real.
"""

import threading

import pytest

from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.runtime.processes import (
    multiprocessing_depthbounded_search,
    run_job_in_subprocess,
    run_library_search,
)


# -- top-level picklable factories -----------------------------------------


def clique_spec_factory(n, p, seed):
    """Rebuild a MaxClique spec from instance parameters."""
    from repro.apps.maxclique import maxclique_spec
    from repro.instances.graphs import uniform_graph

    return maxclique_spec(uniform_graph(n, p, seed))


def uts_spec_factory(b0, depth, seed):
    """Rebuild a UTS spec from instance parameters."""
    from repro.apps.uts import UTSInstance, uts_spec

    return uts_spec(UTSInstance(shape="geometric", b0=b0, max_depth=depth, seed=seed))


def optimisation_factory():
    """Top-level Optimisation constructor (picklable)."""
    return Optimisation()


def enumeration_factory():
    """Top-level Enumeration constructor (picklable)."""
    return Enumeration()


def decision_factory(target):
    """Top-level Decision constructor (picklable)."""
    return Decision(target=target)


CLIQUE_ARGS = (35, 0.5, 9)


class TestCorrectness:
    def test_optimisation_matches_sequential(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=2, d_cutoff=1,
        )
        assert res.value == seq.value

    def test_enumeration_matches_sequential(self):
        args = (3.0, 6, 11)
        seq = sequential_search(uts_spec_factory(*args), Enumeration())
        res = multiprocessing_depthbounded_search(
            uts_spec_factory, args, enumeration_factory,
            n_processes=3, d_cutoff=2,
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_decision_found(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value,),
            n_processes=2, d_cutoff=1,
        )
        assert res.found is True
        assert res.value == seq.value

    def test_decision_refuted(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value + 1,),
            n_processes=2, d_cutoff=1,
        )
        assert res.found is False

    def test_single_process(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=1, d_cutoff=2,
        )
        assert res.value == seq.value

    def test_bad_process_count(self):
        with pytest.raises(ValueError):
            multiprocessing_depthbounded_search(
                clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                n_processes=0,
            )

    def test_workers_reported(self):
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=3, d_cutoff=1,
        )
        assert res.workers == 3
        assert res.wall_time is not None


def singleton_spec_factory():
    """A one-node tree: the depth-d frontier is empty."""
    from tests.conftest import make_toy_spec

    return make_toy_spec({}, {"root": 5})


def toy_spec_factory():
    """A small fixed tree (picklable rebuild of the conftest toy)."""
    from tests.conftest import make_toy_spec

    children = {"root": ["a", "b", "c"], "a": ["aa", "ab"], "c": ["ca"],
                "ca": ["caa"]}
    values = {"root": 0, "a": 1, "b": 5, "c": 2, "aa": 3, "ab": 2, "ca": 7,
              "caa": 4}
    return make_toy_spec(children, values)


def exploding_spec_factory():
    """A spec whose node generator raises below the spawn frontier, so
    the failure happens inside a worker process, not the parent."""
    from repro.core.nodegen import ListNodeGenerator
    from repro.core.space import SearchSpec

    children = {"root": ["a", "b"], "a": ["aa"], "b": ["bb"]}
    values = {"root": 0, "a": 1, "b": 2, "aa": 3, "bb": 4}

    def generator(space, node):
        if node in ("aa", "bb"):
            raise RuntimeError(f"generator exploded at {node}")
        return ListNodeGenerator(list(children.get(node, [])))

    return SearchSpec(
        name="exploding",
        space=None,
        root="root",
        generator=generator,
        objective=lambda node: values[node],
        upper_bound=None,
    )


class TestEdgeCases:
    def test_trivial_root_no_frontier(self):
        # A single-node tree spawns no tasks: the search completes in the
        # parent and the pool is never started.
        seq = sequential_search(singleton_spec_factory(), Optimisation())
        res = multiprocessing_depthbounded_search(
            singleton_spec_factory, (), optimisation_factory,
            n_processes=2, d_cutoff=2,
        )
        assert res.value == seq.value == 5
        assert res.node == seq.node
        assert res.metrics.nodes == seq.metrics.nodes == 1

    def test_cutoff_deeper_than_tree(self):
        # Every leaf is inside the parent's expansion: frontier tasks are
        # leaves or nothing; the result must still match sequential.
        seq = sequential_search(toy_spec_factory(), Optimisation())
        res = multiprocessing_depthbounded_search(
            toy_spec_factory, (), optimisation_factory,
            n_processes=2, d_cutoff=10,
        )
        assert res.value == seq.value

    def test_enumeration_parity_on_toy_tree(self):
        seq = sequential_search(toy_spec_factory(), Enumeration())
        res = multiprocessing_depthbounded_search(
            toy_spec_factory, (), enumeration_factory,
            n_processes=2, d_cutoff=1,
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_worker_exception_propagates(self):
        # A raising generator inside a worker must surface to the caller,
        # not hang the pool or be swallowed.
        with pytest.raises(RuntimeError, match="generator exploded"):
            multiprocessing_depthbounded_search(
                exploding_spec_factory, (), optimisation_factory,
                n_processes=2, d_cutoff=1,
            )


class TestRunLibrarySearch:
    def test_matches_sequential_skeleton(self):
        res = run_library_search("brock90-1")
        from repro.instances.library import spec_for

        spec, _, _ = spec_for("brock90-1")
        seq = sequential_search(spec, Optimisation())
        assert res.value == seq.value

    def test_search_type_override_drops_default_kwargs(self):
        # kclique instances register decision targets; overriding to
        # optimisation must not leak the target kwarg.
        res = run_library_search("kclique-planted-80",
                                 search_type="optimisation")
        assert res.kind == "optimisation"
        assert res.value >= 18

    def test_params_dict_applied(self):
        res = run_library_search(
            "brock90-1", skeleton="depthbounded",
            params={"workers_per_locality": 4, "d_cutoff": 2},
        )
        assert res.workers == 4

    def test_unknown_instance_raises(self):
        with pytest.raises(KeyError):
            run_library_search("no-such-instance")


class TestRunJobInSubprocess:
    def test_ok(self):
        status, result = run_job_in_subprocess({"instance": "brock90-1"})
        assert status == "ok"
        assert result.value == 14

    def test_timeout_terminates_child(self):
        status, result = run_job_in_subprocess(
            {"instance": "ns-genus-16"}, timeout=0.1,
        )
        assert status == "timeout"
        assert result is None

    def test_crash_reports_message(self):
        status, message = run_job_in_subprocess({"instance": "no-such"})
        assert status == "crash"
        assert "no-such" in message

    def test_cancel_event(self):
        cancel = threading.Event()
        cancel.set()
        status, _ = run_job_in_subprocess(
            {"instance": "ns-genus-16"}, cancel=cancel,
        )
        assert status == "cancelled"


# -- SIGTERM -> SIGKILL escalation ------------------------------------------


def _cooperative_child(ready):
    """Sleep forever, but exit promptly (and cleanly) on SIGTERM."""
    import signal
    import time

    def _on_term(signum, frame):
        raise SystemExit(143)

    signal.signal(signal.SIGTERM, _on_term)
    ready.set()
    while True:
        time.sleep(0.05)


def _stubborn_child(ready):
    """Ignore SIGTERM entirely; only SIGKILL can end this."""
    import signal
    import time

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    ready.set()
    while True:
        time.sleep(0.05)


class TestGracefulStop:
    def test_cooperative_child_dies_on_sigterm(self):
        from multiprocessing import Event, Process

        from repro.runtime.processes import graceful_stop

        ready = Event()
        proc = Process(target=_cooperative_child, args=(ready,), daemon=True)
        proc.start()
        assert ready.wait(timeout=10.0)  # handler installed before TERM
        graceful_stop(proc, grace=5.0)
        assert not proc.is_alive()
        # SIGTERM rung sufficed: the handler's SystemExit code survives.
        assert proc.exitcode == 143

    def test_stubborn_child_escalates_to_sigkill(self):
        from multiprocessing import Event, Process

        from repro.runtime.processes import graceful_stop

        ready = Event()
        proc = Process(target=_stubborn_child, args=(ready,), daemon=True)
        proc.start()
        assert ready.wait(timeout=10.0)
        graceful_stop(proc, grace=0.3)
        assert not proc.is_alive()
        assert proc.exitcode == -9  # killed, not terminated

    def test_dead_child_is_a_noop(self):
        from multiprocessing import Process

        from repro.runtime.processes import graceful_stop

        proc = Process(target=_noop_child, daemon=True)
        proc.start()
        proc.join(timeout=10.0)
        graceful_stop(proc)  # must not raise on an already-dead process
        assert proc.exitcode == 0


def _noop_child():
    """Exit immediately."""
