"""Search results and metrics.

Every skeleton returns a :class:`SearchResult`: the search outcome (an
accumulator for enumeration, the optimal/witness node for optimisation
and decision), plus a :class:`SearchMetrics` record of what the search
did.  Parallel runs additionally report virtual makespan and per-worker
utilisation from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SearchMetrics", "SearchResult", "validate_result"]


@dataclass
class SearchMetrics:
    """Counters accumulated during a search.

    ``nodes`` counts processed (visited) nodes; ``prunes`` counts
    subtrees discarded by the bound; ``spawns`` counts tasks created;
    ``steals``/``failed_steals`` count work-stealing traffic;
    ``backtracks`` counts generator-stack pops.
    """

    nodes: int = 0
    weighted_nodes: int = 0  # nodes scaled by spec.node_size (== nodes if unweighted)
    backtracks: int = 0
    prunes: int = 0
    spawns: int = 0
    steals: int = 0
    failed_steals: int = 0
    broadcasts: int = 0
    max_depth: int = 0

    def merge(self, other: "SearchMetrics") -> None:
        """Fold another worker's counters into this one."""
        self.nodes += other.nodes
        self.weighted_nodes += other.weighted_nodes
        self.backtracks += other.backtracks
        self.prunes += other.prunes
        self.spawns += other.spawns
        self.steals += other.steals
        self.failed_steals += other.failed_steals
        self.broadcasts += other.broadcasts
        self.max_depth = max(self.max_depth, other.max_depth)


@dataclass
class SearchResult:
    """Outcome of one skeleton run.

    Attributes:
        kind: the search type that produced this result.
        value: the monoid value — the accumulator (enumeration) or the
            objective of the best node (optimisation/decision).
        node: the witness node for optimisation/decision; None for
            enumeration.
        found: for decision searches, whether the target was reached.
        metrics: aggregate counters over all workers.
        virtual_time: simulated makespan (parallel skeletons only).
        wall_time: real elapsed seconds for the run.
        workers: number of workers that executed the search.
        per_worker_busy: simulated busy time per worker (utilisation
            analysis), parallel runs only.
        trace: full schedule trace (:class:`repro.runtime.trace.Trace`)
            when the cluster was built with ``trace=True``; None
            otherwise.
    """

    kind: str
    value: Any
    node: Optional[Any] = None
    found: Optional[bool] = None
    metrics: SearchMetrics = field(default_factory=SearchMetrics)
    virtual_time: Optional[float] = None
    wall_time: Optional[float] = None
    workers: int = 1
    per_worker_busy: Optional[list] = None
    trace: Optional[Any] = None

    def efficiency(self) -> Optional[float]:
        """Mean worker utilisation (busy / makespan), parallel runs only."""
        if self.virtual_time is None or not self.per_worker_busy or self.virtual_time == 0:
            return None
        return sum(self.per_worker_busy) / (len(self.per_worker_busy) * self.virtual_time)


def validate_result(spec, result: SearchResult) -> bool:
    """Independently certify a search result against its spec.

    - Optimisation: the witness's objective must equal the reported
      value, and the spec's ``witness_check`` (if any) must accept it.
    - Decision (found): the witness's objective must reach the reported
      (clipped) value, plus the ``witness_check``.
    - Enumeration: nothing structural to certify (the accumulator is
      the result); returns True.

    Raises ValueError on malformed results rather than returning False,
    so silent corruption can't masquerade as "witness merely invalid".
    """
    if result.kind == "enumeration":
        return True
    if result.node is None:
        raise ValueError("optimisation/decision result without a witness node")
    objective = spec.objective(result.node)
    if result.kind == "optimisation" and objective != result.value:
        return False
    if result.kind == "decision" and objective < result.value:
        return False
    if spec.witness_check is not None:
        return bool(spec.witness_check(spec.space, result.node))
    return True
