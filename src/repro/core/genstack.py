"""The generator stack: shared machinery of every coordination (§4.1).

Depth-first backtracking traversal is implemented by a stack of Lazy
Node Generators: advancing the top generator and pushing a generator for
the child is the (expand) rule; popping an exhausted generator is the
(backtrack) rule.  Beyond traversal, the stack is how coordinations find
subtrees to give away: Stack-Stealing and Budget scan it *bottom-up* for
the first generator with remaining children — those are the unexplored
subtrees closest to the root, i.e. heuristically the largest (§4.2).

Each frame also records its node's *sibling index* (position within its
parent's generator output), so any node the stack gives away can carry a
**path key** — the tuple of sibling indices from the task root.  Path
keys are lexicographic traversal order (the semantics' ``<<``), which is
what the Ordered skeleton's rank-ordered workpool sorts by.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.nodegen import NodeGenerator

__all__ = ["GenFrame", "GeneratorStack"]


class GenFrame:
    """One stack frame: a node, the generator over its children, the
    node's depth and sibling index, and how many children it yielded."""

    __slots__ = ("node", "gen", "depth", "index", "children_yielded")

    def __init__(self, node: Any, gen: NodeGenerator, depth: int, index: int) -> None:
        self.node = node
        self.gen = gen
        self.depth = depth
        self.index = index  # position of `node` among its siblings
        self.children_yielded = 0  # children produced from `gen` so far


class GeneratorStack:
    """A stack of :class:`GenFrame` with bottom-up splitting support."""

    def __init__(self) -> None:
        self._frames: list[GenFrame] = []

    def __len__(self) -> int:
        return len(self._frames)

    def __bool__(self) -> bool:
        return bool(self._frames)

    def push(self, node: Any, gen: NodeGenerator, index: int = 0) -> None:
        """Push a frame for ``node`` (``index`` = its sibling position)."""
        depth = self._frames[-1].depth + 1 if self._frames else 0
        self._frames.append(GenFrame(node, gen, depth, index))

    def top(self) -> GenFrame:
        """The frame currently being expanded."""
        return self._frames[-1]

    def pop(self) -> GenFrame:
        """Remove and return the top frame ((backtrack))."""
        return self._frames.pop()

    def next_from_top(self) -> tuple[Any, int]:
        """Advance the top generator; returns ``(child, sibling_index)``."""
        frame = self._frames[-1]
        child = frame.gen.next()
        index = frame.children_yielded
        frame.children_yielded += 1
        return child, index

    def current_key(self) -> tuple[int, ...]:
        """Sibling-index path of the top frame's node, task-relative.

        The root frame contributes nothing (its index lives in the
        owning task's key); deeper frames contribute their index.
        """
        return tuple(f.index for f in self._frames[1:])

    def _key_at(self, frame_pos: int, child_index: int) -> tuple[int, ...]:
        """Path key of the ``child_index``-th child of frame ``frame_pos``."""
        prefix = tuple(self._frames[i].index for i in range(1, frame_pos + 1))
        return prefix + (child_index,)

    def split_one(self) -> Optional[tuple[Any, int, tuple[int, ...]]]:
        """Steal the first unexplored node closest to the root.

        Scans frames bottom-up (Listing 3, line 7) and takes a single
        child from the first generator that has one.  Returns
        ``(node, depth_of_node, path_key)`` or None if the whole stack
        is exhausted.  This realises the (spawn-stack) rule: the stolen
        node is ``nextLowest(S, v)``.
        """
        for pos, frame in enumerate(self._frames):
            if frame.gen.has_next():
                child = frame.gen.next()
                index = frame.children_yielded
                frame.children_yielded += 1
                return child, frame.depth + 1, self._key_at(pos, index)
        return None

    def split_lowest(self) -> tuple[list[Any], int, list[tuple[int, ...]]]:
        """Take *all* remaining children at the lowest non-exhausted depth.

        Used by (spawn-budget) (Listing 4, lines 8-14) and by chunked
        Stack-Stealing.  Returns ``(nodes, depth_of_nodes, path_keys)``;
        the node list is in heuristic (traversal) order.  Empty list if
        nothing is splittable.
        """
        for pos, frame in enumerate(self._frames):
            if frame.gen.has_next():
                nodes = []
                keys = []
                while frame.gen.has_next():
                    nodes.append(frame.gen.next())
                    keys.append(self._key_at(pos, frame.children_yielded))
                    frame.children_yielded += 1
                return nodes, frame.depth + 1, keys
        return [], 0, []

    def has_splittable_work(self) -> bool:
        """True if any frame still has unexplored children."""
        return any(frame.gen.has_next() for frame in self._frames)
