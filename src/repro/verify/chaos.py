"""Seeded fault schedules for the cluster backend.

A :class:`FaultPlan` is a list of the JSON event dicts understood by
:mod:`repro.cluster.faults`, generated deterministically from a seed by
:func:`make_plan`.  The plan, not the wall clock, decides what breaks
and when — so a chaos round that finds a bug is re-runnable from its
``(instance, plan)`` artifact alone.

Plans are constrained to schedules the runtime is *supposed* to
survive:

- at most ``n_workers - 1`` workers are killed (someone must finish);
- kills/partitions are only generated for optimisation/decision jobs —
  losing a worker mid-enumeration is *defined* to fail loudly (the
  partial accumulator is unrecoverable), which gets its own dedicated
  test rather than a place in the random mix;
- frame drops are limited to the protocol's safe-drop set (HEARTBEAT,
  INCUMBENT), enforced again at injection time by
  :class:`repro.cluster.faults.WorkerFaults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import SplitMix64

__all__ = ["FaultPlan", "make_plan"]


@dataclass
class FaultPlan:
    """A reproducible schedule of injected faults."""

    seed: int
    events: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready form (the artifact / process-spawn payload)."""
        return {"seed": self.seed, "events": list(self.events)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(int(data.get("seed", 0)), list(data.get("events", [])))

    def describe(self) -> str:
        """Short human-readable summary for log lines."""
        if not self.events:
            return "no faults"
        return ", ".join(
            "{} {}".format(ev["kind"], ev.get("worker", "?")) for ev in self.events
        )


def make_plan(
    seed: int,
    n_workers: int,
    *,
    allow_kill: bool = True,
    worker_prefix: str = "local-",
    elastic: bool = False,
) -> FaultPlan:
    """Generate a survivable fault schedule for an N-worker topology.

    Workers are assumed named ``{worker_prefix}0 .. {worker_prefix}N-1``
    (the :func:`repro.cluster.local.cluster_budget_search` convention).
    ``allow_kill=False`` restricts the menu to perturbations that never
    remove a worker permanently — required for enumeration jobs.

    With ``elastic=True`` the plan targets an elastic deployment
    (:func:`repro.deploy.elastic_budget_search`): the menu gains
    ``kill_on_retire`` (die mid-drain still holding leases), and every
    destructive event is aimed at indices >= 1 — the deployment retires
    youngest-first, so worker 0 is the designated survivor that an
    elastic scale-down keeps, and faulting it could leave the fleet
    empty with nothing scheduled to respawn it.
    """
    rng = SplitMix64(seed ^ 0xFA0175)
    events: list[dict] = []
    kinds = ["drop_frame", "delay_heartbeat"]
    if allow_kill:
        kinds += ["kill_worker", "partition"]
        if elastic and n_workers >= 2:
            kinds.append("kill_on_retire")
    killed: set[str] = set()
    partitioned: set[str] = set()
    retire_killed: set[str] = set()
    for _ in range(1 + rng.randrange(2)):
        kind = kinds[rng.randrange(len(kinds))]
        if elastic and n_workers >= 2:
            index = 1 + rng.randrange(n_workers - 1)
        else:
            index = rng.randrange(n_workers)
        worker = f"{worker_prefix}{index}"
        if kind == "kill_worker":
            # Keep at least one worker alive, and don't double-kill.
            if worker in killed or len(killed) + 1 >= n_workers:
                continue
            killed.add(worker)
            events.append(
                {"kind": "kill_worker", "worker": worker,
                 "at_task": 1 + rng.randrange(3)}
            )
        elif kind == "kill_on_retire":
            # Fires only if the deployment actually sends this worker a
            # RETIRE (a fast job may finish before the scale-down) —
            # harmless when it does not, a drain-crash when it does.
            if worker in retire_killed or worker in killed:
                continue
            retire_killed.add(worker)
            events.append({"kind": "kill_on_retire", "worker": worker})
        elif kind == "partition":
            # One partition window per worker; never partition the last
            # unkilled worker out AND kill the rest (the window heals,
            # but keeping the constraint simple keeps plans obviously
            # survivable).
            if worker in partitioned or worker in killed:
                continue
            partitioned.add(worker)
            events.append(
                {"kind": "partition", "worker": worker,
                 "after_frames": 2 + rng.randrange(5),
                 "count": 20 + rng.randrange(30)}
            )
        elif kind == "drop_frame":
            frame = ("HEARTBEAT", "INCUMBENT")[rng.randrange(2)]
            events.append(
                {"kind": "drop_frame", "worker": worker, "frame_type": frame,
                 "after": rng.randrange(3), "count": 1 + rng.randrange(2)}
            )
        else:  # delay_heartbeat
            events.append(
                {"kind": "delay_heartbeat", "worker": worker,
                 "beat": 1 + rng.randrange(3),
                 "delay": 0.2 + 0.2 * rng.random()}
            )
    return FaultPlan(seed=seed, events=events)
