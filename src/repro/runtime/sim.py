"""Deterministic discrete-event simulation engine.

A minimal event loop: callbacks scheduled at virtual times, executed in
(time, insertion-sequence) order.  The sequence number makes simultaneous
events execute in a deterministic order, which — together with the
seeded RNG used for victim selection — makes every cluster run exactly
reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

__all__ = ["Simulator"]


class Simulator:
    """Virtual clock + event heap."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._stopped = False

    @property
    def stopped(self) -> bool:
        return self._stopped

    def at(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def stop(self) -> None:
        """Halt the simulation; pending events are discarded by run()."""
        self._stopped = True

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Process events until the heap empties or stop() is called.

        Returns the number of events executed.  ``max_events`` guards
        against runaway simulations (a scheduling bug would otherwise
        spin forever); exceeding it raises.
        """
        executed = 0
        while self._heap and not self._stopped:
            time, _, fn = heapq.heappop(self._heap)
            if time < self.now:
                raise AssertionError("event heap yielded a past event")
            self.now = time
            fn()
            executed += 1
            if max_events is not None and executed > max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events")
        return executed
