#!/usr/bin/env python
"""Maximum Clique over the instance library (or your own DIMACS files).

Mirrors the paper's `maxclique` application binary: pick an instance and
a skeleton, get the clique and the coordination statistics.

Run:  python examples/maxclique_instances.py [instance] [skeleton]
      python examples/maxclique_instances.py path/to/graph.clq budget

Defaults: instance sanr90-1, skeleton depthbounded.
"""

import sys
import time
from pathlib import Path

from repro import SkeletonParams, search
from repro.apps.maxclique import maxclique_spec
from repro.instances import load_instance, parse_dimacs
from repro.instances.library import suite


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sanr90-1"
    skeleton = sys.argv[2] if len(sys.argv) > 2 else "depthbounded"

    if Path(name).exists():
        graph = parse_dimacs(name)
    else:
        try:
            graph = load_instance(name)
        except KeyError:
            print(f"unknown instance {name!r}; library maxclique suite:")
            for n in suite("maxclique"):
                print(f"  {n}")
            raise SystemExit(1)

    spec = maxclique_spec(graph, name=name)
    params = SkeletonParams(
        localities=1, workers_per_locality=8, d_cutoff=2, budget=500
    )
    print(f"instance {name}: n={graph.n}, density={graph.density():.2f}")
    print(f"skeleton: {skeleton}")

    t0 = time.perf_counter()
    res = search(spec, skeleton=skeleton, search_type="optimisation", params=params)
    wall = time.perf_counter() - t0

    print(f"maximum clique size: {res.value}")
    print(f"clique vertices: {sorted(res.node.vertices())}")
    m = res.metrics
    print(f"nodes: {m.nodes}  prunes: {m.prunes}  backtracks: {m.backtracks}")
    if res.virtual_time is not None:
        print(f"spawns: {m.spawns}  steals: {m.steals} (failed {m.failed_steals})")
        print(f"virtual makespan: {res.virtual_time:.0f} work units on "
              f"{res.workers} workers (efficiency {res.efficiency():.0%})")
    print(f"wall time: {wall:.2f}s")


if __name__ == "__main__":
    main()
