"""Search-as-a-service: jobs, queueing, caching, scheduling, metrics.

YewPar's skeletons (and this reproduction's, until now) run one search
per invocation.  This package is the thin job-management layer that
turns them into a *service* — the step frameworks like mts (Avis &
Jordan 2017) take over a bare search engine:

- :mod:`repro.service.jobs` — :class:`JobSpec` (what to search, with a
  canonical content hash) and the :class:`Job` lifecycle
  (``PENDING → RUNNING → DONE/FAILED/CANCELLED/TIMEOUT``).
- :mod:`repro.service.queue` — bounded, submitter-fair priority queue
  with reject-with-reason admission control.
- :mod:`repro.service.cache` — content-addressed LRU/TTL result cache
  plus coalescing of duplicates submitted while their twin runs.
- :mod:`repro.service.scheduler` — a worker pool (in-process threads or
  real OS processes) enforcing timeouts, cancellation and one retry on
  worker crash.
- :mod:`repro.service.metrics` — the operator's snapshot: queue depth,
  cache hit rate, latency percentiles, jobs by terminal state.

Quick start::

    from repro.service import JobSpec, Scheduler

    sched = Scheduler(n_workers=4)
    job = sched.submit(JobSpec(app="maxclique", instance="sanr90-1"))
    sched.run_until_idle()
    print(job.state, job.result.value)
    print(sched.metrics_snapshot().render())

The CLI front ends are ``repro submit`` (append jobs to a job file) and
``repro serve`` (run a scheduler over a job file or stdin); see
``docs/service.md``.
"""

from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobSpec, JobState, TERMINAL_STATES
from repro.service.metrics import MetricsSnapshot, ServiceMetrics
from repro.service.queue import AdmissionError, JobQueue
from repro.service.scheduler import (
    Backend,
    InProcessBackend,
    JobCancelled,
    JobTimeout,
    ProcessBackend,
    Scheduler,
    WorkerCrash,
)

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "TERMINAL_STATES",
    "JobQueue",
    "AdmissionError",
    "ResultCache",
    "ServiceMetrics",
    "MetricsSnapshot",
    "Scheduler",
    "Backend",
    "InProcessBackend",
    "ProcessBackend",
    "JobTimeout",
    "JobCancelled",
    "WorkerCrash",
]
