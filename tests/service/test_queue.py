"""Tests for the bounded, submitter-fair priority queue."""

import pytest

from repro.service.jobs import Job, JobSpec, JobState
from repro.service.queue import AdmissionError, JobQueue


def make_job(jid, *, submitter="anon", priority=0):
    spec = JobSpec(
        app="maxclique", instance="brock90-1",
        priority=priority, submitter=submitter,
    )
    return Job(spec, id=jid)


class TestOrdering:
    def test_priority_order_within_submitter(self):
        q = JobQueue()
        q.push(make_job("low", priority=1))
        q.push(make_job("high", priority=9))
        q.push(make_job("mid", priority=5))
        assert [q.pop().id for _ in range(3)] == ["high", "mid", "low"]

    def test_fifo_among_equal_priorities(self):
        q = JobQueue()
        for jid in ("first", "second", "third"):
            q.push(make_job(jid, priority=3))
        assert [q.pop().id for _ in range(3)] == ["first", "second", "third"]

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop() is None


class TestFairness:
    def test_round_robin_across_submitters(self):
        # Alice floods; Bob submits one job.  Bob is served second, not
        # eleventh.
        q = JobQueue()
        for i in range(10):
            q.push(make_job(f"a{i}", submitter="alice"))
        q.push(make_job("b0", submitter="bob"))
        order = [q.pop().id for _ in range(11)]
        assert "b0" in order[:2]

    def test_interleaving_is_strict(self):
        q = JobQueue()
        for i in range(3):
            q.push(make_job(f"a{i}", submitter="alice"))
            q.push(make_job(f"b{i}", submitter="bob"))
        order = [q.pop().id for _ in range(6)]
        submitters = [jid[0] for jid in order]
        assert submitters in (["a", "b"] * 3, ["b", "a"] * 3)

    def test_three_interleaved_submitters_rotate_deterministically(self):
        # Submissions interleaved a,b,c,a,b,c..: every rotation serves
        # each submitter exactly once, and the rotation order is fixed
        # by first-submission order (the deterministic tie-break).
        q = JobQueue()
        for i in range(3):
            for s in ("alice", "bob", "carol"):
                q.push(make_job(f"{s[0]}{i}", submitter=s))
        order = [q.pop().id for _ in range(9)]
        assert [jid[0] for jid in order] == ["a", "b", "c"] * 3
        assert order == ["a0", "b0", "c0", "a1", "b1", "c1", "a2", "b2", "c2"]

    def test_priorities_resolved_within_not_across_submitters(self):
        # Bob's low-priority job cannot be starved by Alice's high ones:
        # priority orders *within* a submitter, rotation across them.
        q = JobQueue()
        for i in range(3):
            q.push(make_job(f"a{i}", submitter="alice", priority=9))
        q.push(make_job("b0", submitter="bob", priority=0))
        order = [q.pop().id for _ in range(4)]
        assert order.index("b0") == 1

    def test_late_joiner_served_within_one_rotation(self):
        q = JobQueue()
        for i in range(4):
            q.push(make_job(f"a{i}", submitter="alice"))
        assert q.pop().id == "a0"
        q.push(make_job("b0", submitter="bob"))  # joins mid-drain
        order = [q.pop().id for _ in range(4)]
        assert order.index("b0") <= 1

    def test_cancelled_head_does_not_cost_the_turn(self):
        # Tombstone at the head of a submitter's heap: the pop that
        # meets it must still return that submitter's next live job,
        # not skip their turn.
        q = JobQueue()
        doomed = make_job("a-doomed", submitter="alice", priority=9)
        q.push(doomed)
        q.push(make_job("a-live", submitter="alice", priority=1))
        q.push(make_job("b0", submitter="bob"))
        doomed.transition(JobState.CANCELLED)
        assert q.pop().id == "a-live"
        assert q.pop().id == "b0"

    def test_fully_cancelled_submitter_drops_out_of_rotation(self):
        q = JobQueue()
        doomed = make_job("a0", submitter="alice")
        q.push(doomed)
        q.push(make_job("b0", submitter="bob"))
        q.push(make_job("b1", submitter="bob"))
        doomed.transition(JobState.CANCELLED)
        assert [q.pop().id for _ in range(2)] == ["b0", "b1"]
        assert q.pop() is None
        assert q.depth_of("alice") == 0


class TestAdmission:
    def test_depth_bound(self):
        q = JobQueue(max_depth=2)
        q.push(make_job("j1"))
        q.push(make_job("j2"))
        with pytest.raises(AdmissionError, match="queue full"):
            q.push(make_job("j3"))

    def test_rejection_carries_reason(self):
        q = JobQueue(max_depth=1)
        q.push(make_job("j1"))
        try:
            q.push(make_job("j2"))
        except AdmissionError as exc:
            assert "max_depth=1" in exc.reason
        else:
            pytest.fail("expected AdmissionError")

    def test_per_submitter_quota(self):
        q = JobQueue(max_depth=10, max_per_submitter=2)
        q.push(make_job("a1", submitter="alice"))
        q.push(make_job("a2", submitter="alice"))
        with pytest.raises(AdmissionError, match="quota"):
            q.push(make_job("a3", submitter="alice"))
        q.push(make_job("b1", submitter="bob"))  # other submitters unaffected

    def test_pop_frees_capacity(self):
        q = JobQueue(max_depth=1)
        q.push(make_job("j1"))
        q.pop()
        q.push(make_job("j2"))  # no raise

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)
        with pytest.raises(ValueError):
            JobQueue(max_depth=5, max_per_submitter=0)


class TestCancellationTombstones:
    def test_cancelled_jobs_are_skipped(self):
        q = JobQueue()
        doomed = make_job("doomed", priority=9)
        q.push(doomed)
        q.push(make_job("survivor"))
        doomed.transition(JobState.CANCELLED)
        assert q.pop().id == "survivor"
        assert q.pop() is None

    def test_cancelled_jobs_do_not_count_toward_depth(self):
        q = JobQueue(max_depth=2)
        doomed = make_job("doomed")
        q.push(doomed)
        q.push(make_job("j2"))
        doomed.transition(JobState.CANCELLED)
        q.push(make_job("j3"))  # tombstone freed a slot
        assert len(q) == 2
