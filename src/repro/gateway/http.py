"""Minimal HTTP/1.1 over asyncio streams — the gateway's wire layer.

The gateway deliberately speaks plain HTTP with nothing but the
standard library: requests are parsed straight off an
``asyncio.StreamReader``, responses are rendered to bytes, and
long-lived status streams use ``Transfer-Encoding: chunked`` so a
client can read job events line by line while the search runs.  This is
the same "no framework, just sockets" discipline as the cluster's
length-prefixed protocol — everything on the wire is inspectable with
``curl`` and ``tcpdump``.

Scope is intentionally small: one request per connection
(``Connection: close``), bodies bounded by ``max_body``, no request
chunking, no TLS.  Anything outside that scope gets a clean 4xx/5xx
instead of undefined behaviour.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Mapping, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "response_bytes",
    "read_request",
    "start_chunked",
    "write_chunk",
    "end_chunked",
    "STATUS_PHRASES",
]

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

# Bound on the request head (request line + headers) and default bound
# on bodies: a search JobSpec is well under a kilobyte, so anything
# megabyte-sized is a client error, not a bigger buffer's job.
_MAX_HEAD_LINE = 16 * 1024
DEFAULT_MAX_BODY = 1 * 1024 * 1024


class HttpError(Exception):
    """A request that cannot be served; carries the response status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)  # keys lower-cased
    body: bytes = b""

    def json(self) -> dict:
        """The body parsed as a JSON object (raises 400-flavoured
        :class:`HttpError` on anything else)."""
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise HttpError(400, "body must be a JSON object")
        return data


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int = DEFAULT_MAX_BODY
) -> Optional[Request]:
    """Parse one request off ``reader``; None on a clean EOF.

    Malformed input raises :class:`HttpError` with the right status
    (400 bad syntax, 413 oversized body, 501 request chunking).
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > _MAX_HEAD_LINE:
        raise HttpError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: dict = {}
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        if len(line) > _MAX_HEAD_LINE or len(headers) > 100:
            raise HttpError(400, "headers too large")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "undecodable header") from None
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None  # client hung up mid-body; nothing to respond to

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes | str | dict,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """Render a complete non-streaming response.

    ``body`` may be a dict (serialised as JSON), str (UTF-8 encoded) or
    raw bytes; Content-Length and ``Connection: close`` are always set.
    """
    if isinstance(body, dict):
        body = json.dumps(body, sort_keys=True).encode()
    elif isinstance(body, str):
        body = body.encode()
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


async def start_chunked(
    writer: asyncio.StreamWriter,
    *,
    status: int = 200,
    content_type: str = "application/x-ndjson",
    extra_headers: Optional[Mapping[str, str]] = None,
) -> None:
    """Send the head of a ``Transfer-Encoding: chunked`` response."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        "Transfer-Encoding: chunked",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()


async def write_chunk(writer: asyncio.StreamWriter, data: bytes | str) -> None:
    """Write one chunk (and flush — streams must not sit in buffers)."""
    if isinstance(data, str):
        data = data.encode()
    if not data:
        return  # an empty chunk would terminate the stream
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
    await writer.drain()


async def end_chunked(writer: asyncio.StreamWriter) -> None:
    """Terminate a chunked response."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
