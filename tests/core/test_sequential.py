"""Tests for the Sequential coordination driver (Listing 2)."""

import pytest

from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search

from .conftest import make_toy_spec


class TestEnumerationRuns:
    def test_counts_all_nodes(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration(objective=lambda n: 1))
        assert res.value == 8

    def test_sums_objective(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration())
        assert res.value == 0 + 1 + 5 + 2 + 3 + 2 + 7 + 4

    def test_metrics_node_count(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration())
        assert res.metrics.nodes == 8
        assert res.metrics.prunes == 0

    def test_kind_and_workers(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration())
        assert res.kind == "enumeration"
        assert res.workers == 1
        assert res.node is None
        assert res.virtual_time is None

    def test_max_depth_tracked(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration())
        assert res.metrics.max_depth == 4  # root -> c -> ca -> caa frames


class TestOptimisationRuns:
    def test_finds_max(self, toy_spec):
        res = sequential_search(toy_spec, Optimisation())
        assert res.value == 7
        assert res.node == "ca"
        assert res.found is None

    def test_pruning_reduces_nodes(self, toy_spec):
        with_bound = sequential_search(toy_spec, Optimisation())
        assert with_bound.metrics.prunes > 0
        assert with_bound.metrics.nodes < 8

    def test_without_bound_exhaustive(self, toy_spec_unbounded):
        res = sequential_search(toy_spec_unbounded, Optimisation())
        assert res.value == 3
        assert res.metrics.nodes == 4


class TestDecisionRuns:
    def test_found(self, toy_spec):
        res = sequential_search(toy_spec, Decision(target=5))
        assert res.found is True
        assert res.value == 5

    def test_short_circuit_stops_early(self, toy_spec):
        res = sequential_search(toy_spec, Decision(target=5))
        assert res.metrics.nodes < 8

    def test_not_found_root_refuted(self, toy_spec):
        # The root bound (7) already proves 100 unreachable: the search
        # prunes at the root and refutes in a single node.
        res = sequential_search(toy_spec, Decision(target=100))
        assert res.found is False
        assert res.metrics.nodes == 1

    def test_not_found_exhaustive(self, toy_spec_unbounded):
        # Without a bound function the refutation must be exhaustive.
        res = sequential_search(toy_spec_unbounded, Decision(target=100))
        assert res.found is False
        assert res.metrics.nodes == 4

    def test_trivial_target_met_at_root(self, toy_spec):
        res = sequential_search(toy_spec, Decision(target=0))
        assert res.found is True
        assert res.metrics.nodes == 1


class TestGuards:
    def test_max_steps_guard(self, toy_spec):
        with pytest.raises(RuntimeError):
            sequential_search(toy_spec, Enumeration(), max_steps=2)

    def test_wall_time_recorded(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration())
        assert res.wall_time is not None and res.wall_time >= 0


class TestDriverEquivalence:
    """The tight Listing-2 loop and the SearchTask-stepped driver must
    agree exactly — this equivalence licenses the simulator's claim to
    explore the same tree the production skeleton does."""

    def _assert_same(self, spec, stype):
        from repro.core.sequential import sequential_search_stepped

        a = sequential_search(spec, stype)
        b = sequential_search_stepped(spec, stype)
        assert a.value == b.value
        assert a.node == b.node
        assert a.found == b.found
        assert (a.metrics.nodes, a.metrics.prunes, a.metrics.backtracks,
                a.metrics.max_depth) == (
            b.metrics.nodes, b.metrics.prunes, b.metrics.backtracks,
            b.metrics.max_depth)

    def test_enumeration(self, toy_spec):
        self._assert_same(toy_spec, Enumeration())

    def test_optimisation(self, toy_spec):
        self._assert_same(toy_spec, Optimisation())

    def test_decision_found(self, toy_spec):
        self._assert_same(toy_spec, Decision(target=5))

    def test_decision_refuted_at_root(self, toy_spec):
        self._assert_same(toy_spec, Decision(target=100))

    def test_unbounded(self, toy_spec_unbounded):
        self._assert_same(toy_spec_unbounded, Optimisation())

    def test_maxclique_instance(self):
        from repro.apps.maxclique import maxclique_spec
        from repro.instances.graphs import uniform_graph

        self._assert_same(maxclique_spec(uniform_graph(30, 0.5, 9)), Optimisation())

    def test_knapsack_instance(self):
        from repro.apps.knapsack import knapsack_spec
        from repro.instances.library import random_knapsack

        self._assert_same(
            knapsack_spec(random_knapsack(14, 3, kind="strong")), Optimisation()
        )
