"""Bridge between production SearchSpecs and the formal model.

:func:`materialise_spec` unfolds a (small) application's Lazy Node
Generator into the semantics' materialised :class:`OrderedTree`,
together with the word→node mapping and the objective as a function on
words.  That lets the *abstract machine* run real applications — a tiny
MaxClique instance can be searched by the Figure 2 reduction rules and
checked against the skeleton result — and gives tests a second,
independent execution path through every application's generator.

Words are sibling-index paths (`(0, 2, 1)` = first child's third
child's second child), the same encoding the Ordered skeleton uses for
its rank keys.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.space import SearchSpec
from repro.semantics.machine import (
    DECISION,
    ENUMERATION,
    OPTIMISATION,
    Machine,
    SearchProblem,
)
from repro.semantics.monoids import BoundedMaxMonoid, MaxMonoid, SumMonoid
from repro.semantics.tree import OrderedTree
from repro.semantics.words import EPSILON, Word

__all__ = ["materialise_spec", "machine_search"]


def materialise_spec(
    spec: SearchSpec, *, max_nodes: int = 100_000
) -> tuple[OrderedTree, dict[Word, Any]]:
    """Unfold ``spec``'s generator into an OrderedTree.

    Returns ``(tree, node_of_word)``.  ``max_nodes`` guards against
    accidentally materialising a production-sized space — the formal
    model is for small instances and tests.
    """
    node_of: dict[Word, Any] = {EPSILON: spec.root}
    children: dict[Word, list[Word]] = {}
    frontier: list[Word] = [EPSILON]
    count = 1
    while frontier:
        word = frontier.pop()
        kids = list(spec.children_of(node_of[word]))
        child_words = [word + (i,) for i in range(len(kids))]
        children[word] = child_words
        for cw, child in zip(child_words, kids):
            node_of[cw] = child
        count += len(kids)
        if count > max_nodes:
            raise ValueError(
                f"spec {spec.name!r} exceeds {max_nodes} nodes; "
                "the formal model is for small instances"
            )
        frontier.extend(child_words)
    return OrderedTree(children), node_of


def machine_search(
    spec: SearchSpec,
    kind: str,
    *,
    target: Optional[int] = None,
    n_threads: int = 2,
    spawn_policy: Optional[str] = "any",
    seed: int = 0,
    max_nodes: int = 100_000,
    use_pruning: bool = True,
) -> Any:
    """Run ``spec`` through the abstract machine; returns the result in
    the application's terms (a sum, or the witness *application node*).

    For optimisation/decision searches with a bound function, the
    machine prunes with the induced admissible relation
    ``u |> v  iff  bound(v) <= h(u)`` (clipped at ``target`` for
    decision searches, where ``bound(v) < target`` also justifies
    pruning — matching the production Decision search type).
    """
    tree, node_of = materialise_spec(spec, max_nodes=max_nodes)

    if kind == ENUMERATION:
        problem = SearchProblem(
            ENUMERATION, SumMonoid(), lambda w: spec.objective(node_of[w])
        )
        machine = Machine(problem, spawn_policy=spawn_policy, d_cutoff=1,
                          k_budget=1, seed=seed)
        return machine.search(tree, n_threads=n_threads, max_steps=10_000_000)

    prunes: Optional[Callable[[Word, Word], bool]] = None
    if kind == OPTIMISATION:
        h = lambda w: spec.objective(node_of[w])  # noqa: E731
        monoid: Any = MaxMonoid()
        if use_pruning and spec.can_prune:
            prunes = lambda u, v: spec.bound(node_of[v]) <= h(u)  # noqa: E731
    elif kind == DECISION:
        if target is None:
            raise ValueError("decision searches need a target")
        h = lambda w: min(spec.objective(node_of[w]), target)  # noqa: E731
        monoid = BoundedMaxMonoid(target)
        if use_pruning and spec.can_prune:
            prunes = (  # noqa: E731
                lambda u, v: spec.bound(node_of[v]) < target
                or spec.bound(node_of[v]) <= h(u)
            )
    else:
        raise ValueError(f"unknown search kind {kind!r}")

    problem = SearchProblem(kind, monoid, h, prunes=prunes)
    machine = Machine(problem, spawn_policy=spawn_policy, d_cutoff=1,
                      k_budget=1, seed=seed)
    best_word = machine.search(tree, n_threads=n_threads, max_steps=10_000_000)
    return node_of[best_word]
