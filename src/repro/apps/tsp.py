"""Travelling Salesperson — branch-and-bound optimisation (paper §5.1).

Find a shortest circular tour of N cities.  A search-tree node is a
partial tour from city 0; children extend it by each unvisited city,
nearest first (the classic search-order heuristic).

YewPar skeletons *maximise*, so tour length is negated through a large
constant: a complete tour of length L scores ``UB_TOTAL - L``, partial
tours score 0, and the admissible upper bound on a partial tour is
``UB_TOTAL - (cost so far + lower bound on the completion)``.  The lower
bound charges every city that still needs an outgoing edge (the current
city and each unvisited city) its cheapest feasible outgoing edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.nodegen import IterNodeGenerator, NodeGenerator
from repro.core.space import SearchSpec
from repro.util.bitset import bit_indices, count_bits, mask_below

__all__ = ["TSPInstance", "TourNode", "TSPGen", "tsp_spec", "tour_length"]


@dataclass(frozen=True)
class TSPInstance:
    """Symmetric distance matrix with non-negative integer entries."""

    dist: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.dist)
        for i, row in enumerate(self.dist):
            if len(row) != n:
                raise ValueError("distance matrix must be square")
            if row[i] != 0:
                raise ValueError(f"diagonal entry ({i},{i}) must be 0")
            for j, d in enumerate(row):
                if d < 0:
                    raise ValueError("distances must be non-negative")
                if d != self.dist[j][i]:
                    raise ValueError(f"matrix not symmetric at ({i},{j})")

    @classmethod
    def from_points(cls, points: Sequence[tuple[float, float]]) -> "TSPInstance":
        """Euclidean instance (distances rounded to nearest integer)."""
        n = len(points)
        dist = [[0] * n for _ in range(n)]
        for i in range(n):
            xi, yi = points[i]
            for j in range(i + 1, n):
                xj, yj = points[j]
                d = round(((xi - xj) ** 2 + (yi - yj) ** 2) ** 0.5)
                dist[i][j] = dist[j][i] = int(d)
        return cls(tuple(tuple(row) for row in dist))

    @property
    def n(self) -> int:
        return len(self.dist)

    def ub_total(self) -> int:
        """A constant exceeding any tour length (for objective negation)."""
        max_d = max((d for row in self.dist for d in row), default=0)
        return self.n * max_d + 1


@dataclass(frozen=True, slots=True)
class TourNode:
    """A partial tour starting at city 0."""

    tour: tuple[int, ...]  # visited cities in order, tour[0] == 0
    visited: int  # bitset of visited cities
    cost: int  # length of the path along `tour`

    @property
    def current(self) -> int:
        return self.tour[-1]


def tour_length(inst: TSPInstance, tour: Sequence[int]) -> int:
    """Length of a complete circular tour (including the closing edge)."""
    if sorted(tour) != list(range(inst.n)):
        raise ValueError("tour must visit every city exactly once")
    total = sum(inst.dist[tour[i]][tour[i + 1]] for i in range(len(tour) - 1))
    return total + inst.dist[tour[-1]][tour[0]]


def _children(inst: TSPInstance, node: TourNode) -> Iterator[TourNode]:
    unvisited = mask_below(inst.n) & ~node.visited
    row = inst.dist[node.current]
    for city in sorted(bit_indices(unvisited), key=lambda c: row[c]):
        yield TourNode(
            tour=node.tour + (city,),
            visited=node.visited | (1 << city),
            cost=node.cost + row[city],
        )


class TSPGen(NodeGenerator[TSPInstance, TourNode]):
    """Extend the tour by each unvisited city, nearest first."""

    __slots__ = ("_inner",)

    def __init__(self, inst: TSPInstance, parent: TourNode) -> None:
        self._inner = IterNodeGenerator(_children(inst, parent))

    def has_next(self) -> bool:
        return self._inner.has_next()

    def next(self) -> TourNode:
        return self._inner.next()


def _objective(inst: TSPInstance, node: TourNode, ub: int) -> int:
    if count_bits(node.visited) < inst.n:
        return 0
    return ub - (node.cost + inst.dist[node.current][0])


def _completion_lower_bound(inst: TSPInstance, node: TourNode) -> int:
    """Admissible lower bound on finishing the tour from ``node``.

    Every unvisited city, and the current city, must have one outgoing
    edge in the completion; each is charged its cheapest edge towards a
    legal successor (an unvisited city, or city 0 for the closing edge).
    """
    unvisited = mask_below(inst.n) & ~node.visited
    if not unvisited:
        return inst.dist[node.current][0]
    total = 0
    # Current city must move to some unvisited city.
    row = inst.dist[node.current]
    total += min(row[c] for c in bit_indices(unvisited))
    # Each unvisited city must leave towards another unvisited city or home.
    for c in bit_indices(unvisited):
        targets = (unvisited & ~(1 << c)) | 1  # city 0 is always a legal target
        row_c = inst.dist[c]
        total += min(row_c[t] for t in bit_indices(targets))
    return total


def _upper_bound(inst: TSPInstance, node: TourNode, ub: int) -> int:
    if count_bits(node.visited) == inst.n:
        return _objective(inst, node, ub)
    return ub - (node.cost + _completion_lower_bound(inst, node))


def tsp_spec(inst: TSPInstance, *, name: str = "tsp") -> SearchSpec:
    """TSP :class:`SearchSpec`; pair with Optimisation.

    The result's ``value`` is ``ub_total() - optimal_length``; the
    optimal tour is the witness node's ``tour`` (recover the length as
    ``inst.ub_total() - result.value``).
    """
    root = TourNode(tour=(0,), visited=1, cost=0)
    ub = inst.ub_total()  # computed once; O(n^2) scan of the matrix
    def _check_witness(space: TSPInstance, node: TourNode) -> bool:
        # Optimisation witnesses must be complete, valid circular tours
        # whose length matches the encoded objective.
        if sorted(node.tour) != list(range(space.n)):
            return False
        return ub - tour_length(space, node.tour) == _objective(space, node, ub)

    return SearchSpec(
        name=name,
        space=inst,
        root=root,
        generator=TSPGen,
        objective=lambda node: _objective(inst, node, ub),
        upper_bound=lambda space, node: _upper_bound(space, node, ub),
        witness_check=_check_witness,
    )
