"""Job specifications and lifecycle for the search service.

A :class:`JobSpec` is the immutable *what* of a submission: which
library instance to search, with which skeleton, search type and
parameters, plus scheduling attributes (priority, timeout, submitter).
Its :attr:`~JobSpec.key` is a canonical content hash over the fields
that determine the search *outcome* — scheduling attributes are
deliberately excluded, so two users submitting the same search at
different priorities are still duplicates and share one execution
(see :mod:`repro.service.cache`).

A :class:`Job` is the mutable *how it went*: lifecycle state, result,
timestamps.  The lifecycle is::

    PENDING ──► RUNNING ──► DONE | FAILED | CANCELLED | TIMEOUT
       │
       └─────► DONE (cache hit / coalesced) | FAILED (rejected) | CANCELLED

Transitions outside this graph raise, so a scheduler bug cannot
silently resurrect a finished job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Optional

from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.core.skeletons import COORDINATIONS, SEARCH_TYPES

__all__ = ["JobSpec", "Job", "JobState", "TERMINAL_STATES"]


class JobState(str, Enum):
    """Lifecycle states of a service job."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    TIMEOUT = "TIMEOUT"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}
)

# Legal lifecycle transitions.  PENDING can go straight to a terminal
# state: DONE (cache hit or coalesced fan-out), FAILED (admission
# rejection) and CANCELLED (cancelled while queued).
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.PENDING: frozenset(
        {JobState.RUNNING, JobState.DONE, JobState.FAILED, JobState.CANCELLED}
    ),
    JobState.RUNNING: TERMINAL_STATES,
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMEOUT: frozenset(),
}


@dataclass(frozen=True)
class JobSpec:
    """One search submission: what to run and how urgently.

    Attributes:
        app: application family (must match the instance's registry
            entry — a cheap sanity check against copy-paste mistakes).
        instance: library instance name (:mod:`repro.instances.library`).
        skeleton: coordination name (``sequential``, ``depthbounded``, ...).
        search_type: ``enumeration``/``decision``/``optimisation``; None
            uses the instance's registered default.
        params: :class:`SkeletonParams` field overrides.
        stype_kwargs: search-type constructor kwargs (e.g. a Decision
            ``target``).
        priority: higher runs earlier *within one submitter's backlog*.
        timeout: wall-clock seconds the job may run; None = unlimited.
        submitter: fairness bucket — the queue round-robins between
            submitters so one flood cannot starve everyone else.
    """

    app: str
    instance: str
    skeleton: str = "sequential"
    search_type: Optional[str] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    stype_kwargs: Mapping[str, Any] = field(default_factory=dict)
    priority: int = 0
    timeout: Optional[float] = None
    submitter: str = "anon"

    def __post_init__(self) -> None:
        if self.skeleton not in COORDINATIONS:
            raise ValueError(
                f"unknown skeleton {self.skeleton!r}; "
                f"expected one of {sorted(COORDINATIONS)}"
            )
        if self.search_type is not None and self.search_type not in SEARCH_TYPES:
            raise ValueError(
                f"unknown search type {self.search_type!r}; "
                f"expected one of {sorted(SEARCH_TYPES)}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None for unlimited)")
        if not self.instance:
            raise ValueError("instance name must be non-empty")
        if not self.submitter:
            raise ValueError("submitter must be non-empty")
        # Validate parameter overrides eagerly: a typo'd knob should be
        # rejected at submission, not when a worker picks the job up.
        SkeletonParams(**dict(self.params))

    # -- identity -----------------------------------------------------------

    def canonical(self) -> dict:
        """The outcome-determining fields, in canonical (sorted) form.

        Priority, timeout and submitter are scheduling attributes: they
        change *when* a search runs, never *what* it computes, so they
        are excluded — that is what makes cross-submitter deduplication
        sound.
        """
        return {
            "app": self.app,
            "instance": self.instance,
            "skeleton": self.skeleton,
            "search_type": self.search_type,
            "params": {k: self.params[k] for k in sorted(self.params)},
            "stype_kwargs": {k: self.stype_kwargs[k] for k in sorted(self.stype_kwargs)},
        }

    @property
    def key(self) -> str:
        """Canonical content hash: the cache/dedup key."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        """Full JSON-ready form, including scheduling attributes."""
        d = self.canonical()
        d.update(priority=self.priority, timeout=self.timeout, submitter=self.submitter)
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Rebuild from :meth:`to_dict` output (validates everything)."""
        return cls(
            app=data["app"],
            instance=data["instance"],
            skeleton=data.get("skeleton", "sequential"),
            search_type=data.get("search_type"),
            params=dict(data.get("params") or {}),
            stype_kwargs=dict(data.get("stype_kwargs") or {}),
            priority=int(data.get("priority", 0)),
            timeout=data.get("timeout"),
            submitter=data.get("submitter", "anon"),
        )

    def run_payload(self) -> dict:
        """Keyword arguments for
        :func:`repro.runtime.processes.run_library_search` — plain data,
        picklable, ready to ship to a worker process."""
        return {
            "instance": self.instance,
            "skeleton": self.skeleton,
            "search_type": self.search_type,
            "stype_kwargs": dict(self.stype_kwargs),
            "params": dict(self.params),
        }


@dataclass
class Job:
    """The mutable service-side record of one submission."""

    spec: JobSpec
    id: str
    state: JobState = JobState.PENDING
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[SearchResult] = None
    error: Optional[str] = None
    attempts: int = 0
    from_cache: bool = False
    coalesced_into: Optional[str] = None  # leader job id, for followers
    cancel_event: Optional[Any] = None  # threading.Event, set on live cancel
    # Transient progress hook: backends that observe incumbent
    # improvements mid-search call this with the new objective value.
    # The scheduler wires it to its event sink before execution; it is
    # best-effort (may fire from any thread, may be None).
    on_incumbent: Optional[Any] = None  # Callable[[int], None]

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def latency(self) -> Optional[float]:
        """Submit-to-terminal latency in seconds (None while live)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def transition(self, new_state: JobState, *, now: Optional[float] = None) -> None:
        """Move to ``new_state``, enforcing the lifecycle graph."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal job transition {self.state.value} -> {new_state.value} "
                f"(job {self.id})"
            )
        self.state = new_state
        if now is not None:
            if new_state is JobState.RUNNING:
                self.started_at = now
            elif new_state in TERMINAL_STATES:
                self.finished_at = now

    def describe(self) -> str:
        """One-line human summary (used by `repro serve` reports)."""
        spec = self.spec
        bits = [f"{self.id}", f"{self.state.value:<9}", f"{spec.app}/{spec.instance}"]
        if self.result is not None:
            bits.append(f"value={self.result.value}")
        if self.from_cache:
            bits.append("(cache)")
        if self.coalesced_into:
            bits.append(f"(coalesced with {self.coalesced_into})")
        if self.error:
            bits.append(f"error: {self.error}")
        lat = self.latency()
        if lat is not None:
            bits.append(f"{lat:.3f}s")
        return "  ".join(bits)
