"""Tests for per-node cost weights (SearchSpec.node_size).

Node-processing cost is not uniform in real searches (a MaxClique node
colours its candidate set; an NS node scans for minimal generators).
``node_size`` lets a spec declare relative node weights, which the
sequential baseline and the simulator both price — so cost-model time
reflects where the work actually is.
"""

import pytest

from repro.core.nodegen import ListNodeGenerator
from repro.core.params import SkeletonParams
from repro.core.searchtypes import Enumeration
from repro.core.sequential import sequential_search, sequential_search_stepped
from repro.core.space import SearchSpec
from repro.core.tasks import DEPTH, STACK
from repro.runtime.executor import SimulatedCluster, virtual_sequential_time
from repro.runtime.topology import Topology


def weighted_spec(heavy_weight=100):
    """Root with two children: one heavy, one light, each with 3 leaves."""
    children = {
        "root": ["heavy", "light"],
        "heavy": ["h1", "h2", "h3"],
        "light": ["l1", "l2", "l3"],
    }
    weights = {"root": 1, "heavy": heavy_weight, "light": 1,
               "h1": heavy_weight, "h2": heavy_weight, "h3": heavy_weight,
               "l1": 1, "l2": 1, "l3": 1}
    return SearchSpec(
        name="weighted",
        space=None,
        root="root",
        generator=lambda s, n: ListNodeGenerator(list(children.get(n, []))),
        objective=lambda n: 1,
        node_size=weights.__getitem__,
    )


class TestSequentialWeights:
    def test_weighted_nodes_accumulated(self):
        res = sequential_search(weighted_spec(100), Enumeration())
        assert res.metrics.nodes == 9
        assert res.metrics.weighted_nodes == 1 + 100 + 1 + 3 * 100 + 3

    def test_unweighted_specs_unchanged(self, toy_spec):
        res = sequential_search(toy_spec, Enumeration())
        assert res.metrics.weighted_nodes == res.metrics.nodes

    def test_drivers_agree_on_weights(self):
        spec = weighted_spec(7)
        a = sequential_search(spec, Enumeration())
        b = sequential_search_stepped(spec, Enumeration())
        assert a.metrics.weighted_nodes == b.metrics.weighted_nodes

    def test_baseline_prices_weights(self):
        spec = weighted_spec(100)
        heavy_time, _ = virtual_sequential_time(spec, Enumeration())
        light_time, _ = virtual_sequential_time(weighted_spec(1), Enumeration())
        assert heavy_time > 10 * light_time


class TestSimulatedWeights:
    @pytest.mark.parametrize("policy", [DEPTH, STACK])
    def test_makespan_reflects_heavy_nodes(self, policy):
        heavy = SimulatedCluster(Topology(1, 2)).run(
            weighted_spec(100), Enumeration(), policy, SkeletonParams(d_cutoff=1)
        )
        light = SimulatedCluster(Topology(1, 2)).run(
            weighted_spec(1), Enumeration(), policy, SkeletonParams(d_cutoff=1)
        )
        assert heavy.virtual_time > 10 * light.virtual_time
        assert heavy.value == light.value == 9

    def test_weighted_metric_conserved_in_parallel(self):
        spec = weighted_spec(13)
        seq = sequential_search(spec, Enumeration())
        res = SimulatedCluster(Topology(2, 2)).run(
            spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=1)
        )
        assert res.metrics.weighted_nodes == seq.metrics.weighted_nodes

    def test_parallelism_still_helps_with_weights(self):
        # The heavy subtree bounds the makespan (critical path), but two
        # workers still beat one.
        spec = weighted_spec(50)
        one = SimulatedCluster(Topology(1, 1)).run(
            spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=1)
        )
        two = SimulatedCluster(Topology(1, 2)).run(
            spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=1)
        )
        assert two.virtual_time < one.virtual_time
