"""pyproject-driven file discovery: parsing and include/exclude."""

from __future__ import annotations

import textwrap

from repro.analysis.config import (
    AnalyzeConfig,
    _mini_toml_table,
    discover_files,
    load_config,
)

PYPROJECT = """\
[project]
name = "demo"

[tool.repro.analyze]
include = ["pkg"]
exclude = ["pkg/vendored/*"]
baseline = "base.json"

[tool.other]
include = ["nope"]
"""


class TestLoadConfig:
    def test_reads_analyze_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(PYPROJECT)
        config = load_config(tmp_path)
        assert config.include == ("pkg",)
        assert config.exclude == ("pkg/vendored/*",)
        assert config.baseline == "base.json"

    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert config.include == ("src/repro",)
        assert config.exclude == ()
        assert config.baseline is None

    def test_defaults_without_analyze_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text('[project]\nname = "x"\n')
        assert load_config(tmp_path).include == ("src/repro",)

    def test_repo_pyproject_parses(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        config = load_config(root)
        assert config.include == ("src/repro",)
        assert config.baseline == "analysis-baseline.json"


class TestMiniToml:
    """The py3.10 fallback parser must agree with tomllib on our table."""

    def test_extracts_only_named_table(self):
        table = _mini_toml_table(PYPROJECT, "tool.repro.analyze")
        assert table["include"] == ["pkg"]
        assert table["exclude"] == ["pkg/vendored/*"]
        assert table["baseline"] == "base.json"

    def test_multiline_array(self):
        text = textwrap.dedent(
            """\
            [tool.repro.analyze]
            include = [
                "a",
                "b",
            ]
            """
        )
        table = _mini_toml_table(text, "tool.repro.analyze")
        assert table["include"] == ["a", "b"]

    def test_missing_table_is_empty(self):
        assert _mini_toml_table("[tool.x]\ny = 1\n", "tool.repro.analyze") == {}


class TestDiscoverFiles:
    def _tree(self, tmp_path):
        for rel in (
            "pkg/a.py",
            "pkg/sub/b.py",
            "pkg/vendored/c.py",
            "other/d.py",
            "pkg/notes.txt",
        ):
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text("x = 1\n")
        return tmp_path

    def test_include_dir_recurses_and_exclude_applies(self, tmp_path):
        root = self._tree(tmp_path)
        config = AnalyzeConfig(
            include=("pkg",), exclude=("pkg/vendored/*",)
        )
        rels = [
            p.relative_to(root).as_posix()
            for p in discover_files(root, config)
        ]
        assert rels == ["pkg/a.py", "pkg/sub/b.py"]

    def test_explicit_paths_override_include(self, tmp_path):
        root = self._tree(tmp_path)
        config = AnalyzeConfig(include=("pkg",))
        rels = [
            p.relative_to(root).as_posix()
            for p in discover_files(root, config, paths=["other"])
        ]
        assert rels == ["other/d.py"]

    def test_exclude_still_applies_to_explicit_paths(self, tmp_path):
        root = self._tree(tmp_path)
        config = AnalyzeConfig(
            include=("other",), exclude=("pkg/vendored/*",)
        )
        rels = [
            p.relative_to(root).as_posix()
            for p in discover_files(root, config, paths=["pkg"])
        ]
        assert "pkg/vendored/c.py" not in rels
        assert "pkg/a.py" in rels

    def test_glob_include(self, tmp_path):
        root = self._tree(tmp_path)
        config = AnalyzeConfig(include=("pkg/*.py",))
        rels = [
            p.relative_to(root).as_posix()
            for p in discover_files(root, config)
        ]
        assert rels == ["pkg/a.py"]
