"""Words over an alphabet and the prefix order (paper Section 3.1).

A search-tree node is a finite word over a non-empty alphabet ``X``; the
root is the empty word.  We represent words as tuples of hashable
letters, which makes them usable as dict keys and set members, and makes
the prefix order a simple slice comparison.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

__all__ = [
    "Word",
    "EPSILON",
    "is_prefix",
    "is_proper_prefix",
    "parent",
    "strict_extensions",
    "is_isogram",
]

Word = tuple  # a word is a tuple of letters
EPSILON: Word = ()  # the empty word: the root of every tree


def is_prefix(u: Word, v: Word) -> bool:
    """``u <= v`` in the prefix order (reflexive)."""
    return len(u) <= len(v) and v[: len(u)] == u


def is_proper_prefix(u: Word, v: Word) -> bool:
    """``u < v`` in the prefix order (irreflexive)."""
    return len(u) < len(v) and v[: len(u)] == u


def parent(w: Word) -> Word:
    """The parent of a non-root node (the word minus its last letter)."""
    if not w:
        raise ValueError("the root has no parent")
    return w[:-1]


def strict_extensions(u: Word, nodes: Iterable[Word]) -> list[Word]:
    """All words in ``nodes`` that have ``u`` as a proper prefix."""
    return [v for v in nodes if is_proper_prefix(u, v)]


def is_isogram(letters: Iterable[Hashable]) -> bool:
    """True if no letter repeats.

    Ordered tree generators must produce isograms (Section 3.1) so the
    induced sibling order is total: ``u a_i`` and ``u a_j`` are distinct
    children exactly when ``a_i != a_j``.
    """
    seen = set()
    for a in letters:
        if a in seen:
            return False
        seen.add(a)
    return True
