"""Real multi-core execution with worker processes.

Where :mod:`repro.runtime.threads` is GIL-bound, these backends achieve
*actual* CPython parallel speedup by distributing subtree tasks over
``multiprocessing`` workers, each searching in its own interpreter.

Four coordinations have process implementations:

- :func:`multiprocessing_depthbounded_search` — **static** splitting:
  the parent expands the depth-``d`` frontier sequentially and hands
  the frontier subtrees to a process pool (the OpenMP-style baseline of
  Table 1).  Workers drive the resumable :class:`SearchTask` machine.
- :func:`multiprocessing_budget_search` — **dynamic** work sharing in
  the style of the paper's Budget coordination: workers pull tasks from
  a shared queue and run them through an inlined fast-path loop (the
  :func:`~repro.core.sequential.sequential_search` hot loop, not the
  stepped state machine); whenever a task exceeds its node budget the
  worker splits the lowest unexplored subtrees off its generator stack
  (:func:`~repro.core.tasks.split_lowest_inlined`) and pushes them back
  to the queue, so load balances at runtime instead of being fixed by
  the initial frontier.
- :func:`multiprocessing_stacksteal_search` — **demand-driven** work
  sharing (Stack-Stealing): the same hot loop, but a victim only splits
  its generator stack when a shared hungry counter says another worker
  is starving, so granularity adapts to the tree instead of a fixed
  budget cadence.
- :func:`multiprocessing_ordered_search` — **replicable** search
  (Ordered, after Archibald et al.): discovery-ordered atomic tasks
  with pinned bounds, finalised in sequence order by an
  :class:`~repro.core.ordered.OrderedLedger`, making value, witness and
  node counts identical run-to-run at any worker count.

Because ``SearchSpec`` objects contain closures (not picklable), both
backends take a *spec factory* — a top-level callable plus picklable
arguments — and rebuild the spec once per worker process.  Incumbent
knowledge is shared through a shared 64-bit integer holding the best
objective value: workers seed their pruning from it, read it lock-free
on a fixed node cadence, and take the lock only to publish improvements
— the multi-process analogue of the simulator's delayed bound broadcast
(stale reads only cost pruning, §4.3).  Sharing an objective through a
signed integer seeded at 0 requires objectives to be non-negative ints;
both backends validate that at launch (see
:func:`_checked_incumbent_seed`).

Remaining limitations, stated plainly: witness nodes travel back by
pickling, and per-task process overhead means small searches are faster
sequentially.  The simulator remains the instrument for studying
coordination at scale.
"""

from __future__ import annotations

import signal
import time
from multiprocessing import Pipe, Pool, Process, Queue, Value
from queue import Empty
from typing import Any, Callable, Optional

from repro.core.ordered import OrderedLedger, ordered_frontier, run_task_fixed_bound
from repro.core.params import SkeletonParams
from repro.core.results import SearchMetrics, SearchResult, result_from_dict
from repro.core.searchtypes import Incumbent, SearchType
from repro.core.tasks import (
    SEQ,
    SearchTask,
    SpawnedTask,
    split_lowest_inlined,
    split_one_inlined,
)

__all__ = [
    "multiprocessing_depthbounded_search",
    "multiprocessing_budget_search",
    "multiprocessing_stacksteal_search",
    "multiprocessing_ordered_search",
    "run_with_processes",
    "make_stype",
    "run_library_search",
    "run_job_in_subprocess",
    "graceful_stop",
]


def graceful_stop(proc, *, grace: float = 5.0) -> None:
    """Stop a child process: SIGTERM, wait up to ``grace``, then SIGKILL.

    The graduated escalation gives a cooperating child (one whose main
    thread handles SIGTERM — see :func:`_job_process_main` and the
    cluster worker) a window to flush its final message and close its
    pipes cleanly, while still guaranteeing death for a child that is
    wedged or blocking the signal.  Used by the job-subprocess
    cancellation path and by cluster worker fan-out shutdown.
    """
    if proc.is_alive():
        proc.terminate()  # SIGTERM on POSIX
        proc.join(timeout=grace)
    if proc.is_alive():
        proc.kill()  # SIGKILL: non-negotiable
        proc.join(timeout=grace)

# Per-worker globals, initialised once by _init_worker.
_worker_spec = None
_worker_stype = None
_worker_best = None


def _init_worker(spec_factory, factory_args, stype_factory, stype_args, best):
    """Pool initialiser: rebuild the spec/search type in this process."""
    global _worker_spec, _worker_stype, _worker_best
    _worker_spec = spec_factory(*factory_args)
    _worker_stype = stype_factory(*stype_args)
    _worker_best = best


def _run_task(payload: tuple[Any, int]) -> tuple[Any, int, int, int, int]:
    """Search one subtree; returns (knowledge, nodes, prunes, backtracks, goal)."""
    root, depth = payload
    spec, stype, best = _worker_spec, _worker_stype, _worker_best
    task = SearchTask(spec, stype, root, policy=SEQ, root_depth=depth)
    if stype.kind == "enumeration":
        knowledge = stype.initial_knowledge(spec)
    else:
        # Seed pruning from the shared best value; the witness node is
        # unknown here, but pruning only compares values.
        with best.get_lock():
            seen = best.value
        knowledge = Incumbent(max(seen, stype.initial_knowledge(spec).value), None)
    nodes = prunes = backtracks = 0
    goal = 0
    steps = 0
    while not task.finished:
        knowledge, out = task.step(knowledge)
        nodes += int(out.processed)
        prunes += int(out.pruned)
        backtracks += int(out.backtracked)
        if out.improved and stype.kind != "enumeration":
            with best.get_lock():
                if knowledge.value > best.value:
                    best.value = knowledge.value
        if out.goal:
            goal = 1
            break
        steps += 1
        if steps % 256 == 0 and stype.kind != "enumeration":
            # Periodically refresh the pruning bound from the shared best.
            with best.get_lock():
                seen = best.value
            if seen > knowledge.value:
                knowledge = Incumbent(seen, knowledge.node)
    return knowledge, nodes, prunes, backtracks, goal


def run_library_search(
    instance: str,
    skeleton: str = "sequential",
    search_type: Optional[str] = None,
    stype_kwargs: Optional[dict] = None,
    params: Optional[dict] = None,
) -> SearchResult:
    """Run one skeleton over a named library instance.

    Top-level and driven entirely by plain data, so it is picklable and
    can serve as a subprocess entry point: the service layer's process
    backend ships ``(instance, skeleton, ...)`` across and the worker
    rebuilds everything from the instance registry.

    ``search_type`` defaults to the instance's registered type (whose
    registered kwargs, e.g. a decision target, are merged under any
    caller-supplied ``stype_kwargs``).
    """
    from repro.core.searchtypes import make_search_type
    from repro.core.skeletons import make_skeleton
    from repro.instances.library import library_spec_factory, spec_for

    spec, default_type, default_kwargs = spec_for(instance)
    stype_name = search_type if search_type is not None else default_type
    kwargs = dict(default_kwargs) if stype_name == default_type else {}
    if stype_kwargs:
        kwargs.update(stype_kwargs)
    skel = make_skeleton(skeleton, stype_name)
    skel_params = SkeletonParams(**params) if params else SkeletonParams()
    stype = make_search_type(stype_name, **kwargs)
    # The registry is deterministic, so the instance name doubles as a
    # picklable spec factory argument — used only when the params select
    # the processes backend.
    return skel.search(
        spec,
        skel_params,
        stype=stype,
        spec_factory=library_spec_factory,
        factory_args=(instance,),
    )


def _job_process_main(conn, payload: dict) -> None:
    """Subprocess entry: run the search, report through the pipe.

    SIGTERM (the first rung of :func:`graceful_stop`) is converted into
    ``SystemExit`` so the ``finally`` below runs: the pipe is closed
    cleanly instead of the parent seeing a torn write, and a stopped
    notice is flushed so the parent can tell "asked to stop" from
    "died".  A child wedged in C code never reaches the handler — the
    caller's SIGKILL escalation covers that.
    """

    def _on_sigterm(signum, frame):
        raise SystemExit(143)  # 128 + SIGTERM, the conventional code

    signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        result = run_library_search(**payload)
        try:
            conn.send(("ok", result))
        except Exception:
            # Unpicklable witness: degrade to the JSON-safe dict form.
            conn.send(("ok_dict", result.to_dict()))
    except SystemExit:
        try:
            conn.send(("stopped", "terminated by SIGTERM"))
        except Exception:
            pass
        raise
    except BaseException as exc:  # report crashes instead of dying silently
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def run_job_in_subprocess(
    payload: dict,
    *,
    timeout: Optional[float] = None,
    cancel=None,
    poll_interval: float = 0.02,
    term_grace: float = 0.5,
) -> tuple[str, Any]:
    """Run :func:`run_library_search` in a dedicated, killable process.

    Unlike in-process execution this gives the caller real preemption:
    the child is stopped on timeout or when ``cancel`` (any object with
    ``is_set()``) fires — via :func:`graceful_stop`, so a cooperating
    child gets ``term_grace`` seconds to flush and close its pipe before
    SIGKILL.  Returns one of::

        ("ok", SearchResult)   completed
        ("timeout", None)      deadline hit, child terminated
        ("cancelled", None)    cancel event fired, child terminated
        ("crash", message)     child raised or died (exit code in message)
    """
    parent_conn, child_conn = Pipe(duplex=False)
    proc = Process(target=_job_process_main, args=(child_conn, payload), daemon=True)
    proc.start()
    child_conn.close()
    deadline = None if timeout is None else time.monotonic() + timeout
    status: str
    value: Any = None
    try:
        while True:
            if parent_conn.poll(poll_interval):
                try:
                    tag, body = parent_conn.recv()
                except EOFError:
                    status, value = "crash", "worker closed the pipe without a result"
                    break
                if tag == "ok":
                    status, value = "ok", body
                elif tag == "ok_dict":
                    status, value = "ok", result_from_dict(body)
                else:
                    status, value = "crash", body
                break
            if cancel is not None and cancel.is_set():
                graceful_stop(proc, grace=term_grace)
                status = "cancelled"
                break
            if deadline is not None and time.monotonic() >= deadline:
                graceful_stop(proc, grace=term_grace)
                status = "timeout"
                break
            # Re-check the pipe after seeing the child dead: the result
            # may have been sent in the gap before exit.
            if not proc.is_alive() and not parent_conn.poll():
                status, value = "crash", f"worker died with exit code {proc.exitcode}"
                break
    finally:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)
        parent_conn.close()
    return status, value


def multiprocessing_depthbounded_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype_factory: Callable[..., SearchType],
    stype_args: tuple = (),
    *,
    n_processes: int = 2,
    d_cutoff: int = 2,
) -> SearchResult:
    """Depth-Bounded search over a process pool.

    ``spec_factory(*factory_args)`` must rebuild the SearchSpec (it is
    called once in the parent and once per worker); likewise
    ``stype_factory(*stype_args)`` for the search type.  Returns a
    :class:`SearchResult` whose ``value`` matches the sequential run;
    for optimisation/decision the witness is the best node seen by any
    single task (exact because tasks run their subtrees completely).

    Optimisation/decision objectives must be non-negative ints (raises
    ValueError otherwise): the incumbent travels between workers as a
    signed shared integer whose idle value is 0, so a negative objective
    would let a stale-zero read *tighten* pruning and corrupt results.
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    spec = spec_factory(*factory_args)
    stype = stype_factory(*stype_args)
    started = time.perf_counter()

    # Phase 1 (parent): expand the depth-d frontier sequentially.
    params = SkeletonParams(d_cutoff=d_cutoff)
    root_task = SearchTask(spec, stype, spec.root, policy="depth", params=params)
    knowledge = stype.initial_knowledge(spec)
    metrics = SearchMetrics()
    frontier: list[SpawnedTask] = []
    goal = False
    while not root_task.finished:
        knowledge, out = root_task.step(knowledge)
        metrics.nodes += int(out.processed)
        metrics.weighted_nodes += out.weight if out.processed else 0
        metrics.prunes += int(out.pruned)
        metrics.backtracks += int(out.backtracked)
        frontier.extend(out.spawned)
        metrics.spawns += len(out.spawned)
        if out.goal:
            goal = True
            break

    if stype.kind == "enumeration":
        best_seed = 0  # unused: enumeration accumulators stay local
    else:
        best_seed = _checked_incumbent_seed(knowledge.value)
    best = Value("q", best_seed)

    results: list[Any] = []
    if frontier and not goal:
        with Pool(
            processes=n_processes,
            initializer=_init_worker,
            initargs=(spec_factory, factory_args, stype_factory, stype_args, best),
        ) as pool:
            for task_knowledge, nodes, prunes, backtracks, task_goal in pool.map(
                _run_task, [(sp.root, sp.depth) for sp in frontier]
            ):
                results.append(task_knowledge)
                metrics.nodes += nodes
                metrics.prunes += prunes
                metrics.backtracks += backtracks
                goal = goal or bool(task_goal)

    for task_knowledge in results:
        if stype.kind == "enumeration":
            knowledge = stype.combine(knowledge, task_knowledge)
        elif task_knowledge.node is not None:
            knowledge = stype.combine(knowledge, task_knowledge)
    elapsed = time.perf_counter() - started

    if isinstance(knowledge, Incumbent):
        return SearchResult(
            kind=stype.kind,
            value=knowledge.value,
            node=knowledge.node,
            found=(goal or stype.is_goal(knowledge))
            if stype.kind == "decision"
            else None,
            metrics=metrics,
            wall_time=elapsed,
            workers=n_processes,
        )
    return SearchResult(
        kind=stype.kind,
        value=knowledge,
        metrics=metrics,
        wall_time=elapsed,
        workers=n_processes,
    )


# -- dynamic work-sharing (Budget) backend ----------------------------------


def _checked_incumbent_seed(value: Any) -> int:
    """Validate an incumbent seed for the shared-integer bound channel.

    The shared incumbent is a signed 64-bit ``Value("q")`` whose idle
    value is 0 and whose merge operation is ``max``.  That protocol is
    only sound for non-negative integer objectives: a negative objective
    would make a stale-zero read *tighten* pruning (bound 0 > true
    incumbent), silently corrupting results rather than merely delaying
    them.  Raise loudly instead.
    """
    if not isinstance(value, int) or value < 0:
        raise ValueError(
            "multiprocessing backends share the incumbent as a signed 64-bit "
            "integer seeded at 0 and merged with max; they require objectives "
            f"that are non-negative ints, but the root objective is {value!r}. "
            "Shift the objective into the non-negative range or use the "
            "simulator backend."
        )
    if value >= 2**63:
        raise ValueError(
            f"objective {value!r} overflows the shared 64-bit incumbent"
        )
    return value


def make_stype(kind: str, kwargs: dict) -> SearchType:
    """Top-level (picklable) search-type factory used by the backends."""
    from repro.core.searchtypes import make_search_type

    return make_search_type(kind, **kwargs)


def _stype_payload(stype: SearchType) -> tuple[str, dict]:
    """Reduce a standard search type to ``(kind, kwargs)`` for shipping
    to worker processes, where :func:`make_stype` rebuilds it.

    Only the three stock types survive this round trip; subclasses and
    Enumeration instances with custom monoids carry behaviour that
    cannot be reconstructed by name, so they are rejected with advice.
    """
    from repro.core.searchtypes import Decision, Enumeration, Optimisation

    if type(stype) is Decision:
        return "decision", {"target": stype.target}
    if type(stype) is Optimisation:
        return "optimisation", {}
    if type(stype) is Enumeration and stype.is_default:
        return "enumeration", {}
    raise ValueError(
        f"the processes backend cannot ship search type {stype!r} to workers "
        "by name; pass an explicit stype_factory to the multiprocessing_* "
        "functions instead"
    )


def _budget_worker_main(
    spec_factory,
    factory_args,
    stype_factory,
    stype_args,
    task_q,
    result_q,
    outstanding,
    best,
    goal_flag,
    done_flag,
    budget,
    share_poll,
    queue_poll,
):
    """Worker process: pull tasks, search them fast, split on budget.

    The per-node path is the :func:`sequential_search` hot loop (bound
    locals, plain generator list, no ``StepOutcome`` allocation);
    splittable state is only materialised every ``share_poll`` nodes,
    when the worker also refreshes its pruning bound from the shared
    incumbent without taking the lock.  The lock is taken only to
    publish an improvement.
    """
    try:
        # Never block process exit on unflushed task-queue buffers: on
        # the normal path everything pushed has been consumed (the
        # outstanding counter cannot reach zero otherwise), and on the
        # goal path pending tasks are garbage anyway.
        task_q.cancel_join_thread()
        spec = spec_factory(*factory_args)
        stype = stype_factory(*stype_args)
        enum = stype.kind == "enumeration"
        process = stype.process
        is_goal = stype.is_goal
        should_prune = stype.should_prune if (not enum and spec.can_prune) else None
        generator = spec.generator
        space = spec.space
        best_raw = best.get_obj()  # lock-free reads (aligned 8-byte load)
        best_lock = best.get_lock()
        out_raw = outstanding.get_obj()
        out_lock = outstanding.get_lock()

        knowledge = stype.initial_knowledge(spec)
        if enum:
            prune_know = None
            bound_val = 0
        else:
            # Seed pruning from the shared best (another worker may have
            # published before we started).
            bound_val = max(knowledge.value, best_raw.value)
            prune_know = knowledge if bound_val == knowledge.value else Incumbent(
                bound_val, None
            )

        nodes = prunes = backtracks = max_depth = 0
        splits = tasks_run = 0
        goal_hit = False
        aborted = False

        while True:
            if done_flag.value or goal_flag.value:
                break
            try:
                root, root_depth = task_q.get(timeout=queue_poll)
            except Empty:
                continue
            tasks_run += 1
            task_nodes = 0  # counted in share_poll quanta, drives splitting
            since_check = 0

            # -- process the task root (the (schedule) rule) --
            nodes += 1
            expand = True
            if enum:
                knowledge, _ = process(spec, root, knowledge)
            else:
                k2, improved = process(spec, root, prune_know)
                if improved:
                    knowledge = prune_know = k2
                    bound_val = k2.value
                    with best_lock:
                        if bound_val > best_raw.value:
                            best_raw.value = bound_val
                    if is_goal(k2):
                        goal_hit = True
                        goal_flag.value = 1
                        break
                if should_prune is not None and should_prune(spec, root, prune_know):
                    prunes += 1
                    expand = False

            if expand:
                stack = [generator(space, root)]
                if root_depth + 1 > max_depth:
                    max_depth = root_depth + 1
                # -- the inlined hot loop --
                while stack:
                    gen = stack[-1]
                    if gen.has_next():
                        child = gen.next()
                        nodes += 1
                        since_check += 1
                        if enum:
                            knowledge, _ = process(spec, child, knowledge)
                            stack.append(generator(space, child))
                            if root_depth + len(stack) > max_depth:
                                max_depth = root_depth + len(stack)
                        else:
                            k2, improved = process(spec, child, prune_know)
                            if improved:
                                knowledge = prune_know = k2
                                bound_val = k2.value
                                with best_lock:
                                    if bound_val > best_raw.value:
                                        best_raw.value = bound_val
                                if is_goal(k2):
                                    goal_hit = True
                                    goal_flag.value = 1
                                    break
                            if should_prune is not None and should_prune(
                                spec, child, prune_know
                            ):
                                prunes += 1
                            else:
                                stack.append(generator(space, child))
                                if root_depth + len(stack) > max_depth:
                                    max_depth = root_depth + len(stack)
                    else:
                        stack.pop()
                        backtracks += 1
                    if since_check >= share_poll:
                        # Periodic duties, off the per-node path: goal
                        # check, lock-free bound refresh, budget split.
                        task_nodes += since_check
                        since_check = 0
                        if goal_flag.value:
                            aborted = True
                            break
                        if not enum:
                            seen = best_raw.value
                            if seen > bound_val:
                                bound_val = seen
                                prune_know = Incumbent(seen, None)
                        if task_nodes >= budget:
                            offcuts, frame_index = split_lowest_inlined(stack)
                            if offcuts:
                                with out_lock:
                                    out_raw.value += len(offcuts)
                                depth = root_depth + frame_index + 1
                                for off in offcuts:
                                    task_q.put((off, depth))
                                splits += len(offcuts)
                            task_nodes = 0

            if goal_hit or aborted:
                break
            with out_lock:
                out_raw.value -= 1
                if out_raw.value == 0:
                    done_flag.value = 1

        payload = {
            "knowledge": knowledge if enum else (knowledge.value, knowledge.node),
            "nodes": nodes,
            "prunes": prunes,
            "backtracks": backtracks,
            "max_depth": max_depth,
            "goal": goal_hit,
            "splits": splits,
            "tasks": tasks_run,
        }
        try:
            result_q.put(("ok", payload))
        except Exception:
            # Unpicklable witness: degrade to the value alone.
            if not enum:
                payload["knowledge"] = (knowledge.value, None)
                result_q.put(("ok", payload))
            else:
                raise
    except BaseException as exc:  # report crashes instead of dying silently
        try:
            result_q.put(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


def _stacksteal_worker_main(
    spec_factory,
    factory_args,
    stype_factory,
    stype_args,
    task_q,
    result_q,
    outstanding,
    best,
    goal_flag,
    done_flag,
    hungry,
    chunked,
    share_poll,
    queue_poll,
):
    """Worker process: pull tasks, search them fast, split when starved.

    The per-node path is identical to :func:`_budget_worker_main`; only
    the sharing trigger differs.  ``hungry`` counts currently-starving
    workers: an idle worker registers itself once (and deregisters on
    its next successful dequeue), and a busy worker that sees the
    counter raised during its ``share_poll`` periodic duties splits the
    lowest frame of its generator stack for the thief — the
    (spawn-stack) rule with the victim's poll standing in for the
    interrupt.  Only the registering worker ever decrements its own
    registration, so the counter never goes negative and a serviced
    request cannot be double-claimed; the worst case is a harmless
    over-split inside one poll window.
    """
    try:
        task_q.cancel_join_thread()
        spec = spec_factory(*factory_args)
        stype = stype_factory(*stype_args)
        enum = stype.kind == "enumeration"
        process = stype.process
        is_goal = stype.is_goal
        should_prune = stype.should_prune if (not enum and spec.can_prune) else None
        generator = spec.generator
        space = spec.space
        best_raw = best.get_obj()  # lock-free reads (aligned 8-byte load)
        best_lock = best.get_lock()
        out_raw = outstanding.get_obj()
        out_lock = outstanding.get_lock()
        hungry_raw = hungry.get_obj()
        hungry_lock = hungry.get_lock()
        split = split_lowest_inlined if chunked else split_one_inlined

        knowledge = stype.initial_knowledge(spec)
        if enum:
            prune_know = None
            bound_val = 0
        else:
            bound_val = max(knowledge.value, best_raw.value)
            prune_know = knowledge if bound_val == knowledge.value else Incumbent(
                bound_val, None
            )

        nodes = prunes = backtracks = max_depth = 0
        splits = tasks_run = 0
        goal_hit = False
        aborted = False
        registered = False  # this worker's own entry in `hungry`

        while True:
            if done_flag.value or goal_flag.value:
                break
            try:
                root, root_depth = task_q.get(timeout=queue_poll)
            except Empty:
                if not registered:
                    with hungry_lock:
                        hungry_raw.value += 1
                    registered = True
                continue
            if registered:
                with hungry_lock:
                    hungry_raw.value -= 1
                registered = False
            tasks_run += 1
            since_check = 0

            # -- process the task root (the (schedule) rule) --
            nodes += 1
            expand = True
            if enum:
                knowledge, _ = process(spec, root, knowledge)
            else:
                k2, improved = process(spec, root, prune_know)
                if improved:
                    knowledge = prune_know = k2
                    bound_val = k2.value
                    with best_lock:
                        if bound_val > best_raw.value:
                            best_raw.value = bound_val
                    if is_goal(k2):
                        goal_hit = True
                        goal_flag.value = 1
                        break
                if should_prune is not None and should_prune(spec, root, prune_know):
                    prunes += 1
                    expand = False

            if expand:
                stack = [generator(space, root)]
                if root_depth + 1 > max_depth:
                    max_depth = root_depth + 1
                # -- the inlined hot loop --
                while stack:
                    gen = stack[-1]
                    if gen.has_next():
                        child = gen.next()
                        nodes += 1
                        since_check += 1
                        if enum:
                            knowledge, _ = process(spec, child, knowledge)
                            stack.append(generator(space, child))
                            if root_depth + len(stack) > max_depth:
                                max_depth = root_depth + len(stack)
                        else:
                            k2, improved = process(spec, child, prune_know)
                            if improved:
                                knowledge = prune_know = k2
                                bound_val = k2.value
                                with best_lock:
                                    if bound_val > best_raw.value:
                                        best_raw.value = bound_val
                                if is_goal(k2):
                                    goal_hit = True
                                    goal_flag.value = 1
                                    break
                            if should_prune is not None and should_prune(
                                spec, child, prune_know
                            ):
                                prunes += 1
                            else:
                                stack.append(generator(space, child))
                                if root_depth + len(stack) > max_depth:
                                    max_depth = root_depth + len(stack)
                    else:
                        stack.pop()
                        backtracks += 1
                    if since_check >= share_poll:
                        # Periodic duties: goal check, lock-free bound
                        # refresh, and answering steal requests.
                        since_check = 0
                        if goal_flag.value:
                            aborted = True
                            break
                        if not enum:
                            seen = best_raw.value
                            if seen > bound_val:
                                bound_val = seen
                                prune_know = Incumbent(seen, None)
                        if hungry_raw.value > 0:
                            offcuts, frame_index = split(stack)
                            if offcuts:
                                with out_lock:
                                    out_raw.value += len(offcuts)
                                depth = root_depth + frame_index + 1
                                for off in offcuts:
                                    task_q.put((off, depth))
                                splits += len(offcuts)

            if goal_hit or aborted:
                break
            with out_lock:
                out_raw.value -= 1
                if out_raw.value == 0:
                    done_flag.value = 1

        payload = {
            "knowledge": knowledge if enum else (knowledge.value, knowledge.node),
            "nodes": nodes,
            "prunes": prunes,
            "backtracks": backtracks,
            "max_depth": max_depth,
            "goal": goal_hit,
            "splits": splits,
            "tasks": tasks_run,
        }
        try:
            result_q.put(("ok", payload))
        except Exception:
            # Unpicklable witness: degrade to the value alone.
            if not enum:
                payload["knowledge"] = (knowledge.value, None)
                result_q.put(("ok", payload))
            else:
                raise
    except BaseException as exc:  # report crashes instead of dying silently
        try:
            result_q.put(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


def multiprocessing_budget_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype_factory: Callable[..., SearchType],
    stype_args: tuple = (),
    *,
    n_processes: int = 2,
    budget: int = 1000,
    share_poll: int = 64,
    queue_poll: float = 0.02,
) -> SearchResult:
    """Budget-style dynamic work-sharing search over worker processes.

    The whole tree starts as one task on a shared queue.  Workers pull
    tasks and search them with an inlined fast-path loop; any task that
    runs past ``budget`` nodes splits the unexplored subtrees nearest
    its root back onto the queue (the paper's Budget coordination,
    Listing 4, with nodes as the budget unit), so load balances at
    runtime instead of being fixed by a depth-``d`` frontier.

    ``spec_factory(*factory_args)`` / ``stype_factory(*stype_args)``
    must be top-level picklable callables, as for
    :func:`multiprocessing_depthbounded_search`; the same non-negative
    integer objective requirement applies (ValueError otherwise).

    ``share_poll`` sets the node cadence of the periodic duties (shared
    incumbent refresh, goal check, budget check), so the effective split
    granularity is ``max(budget, share_poll)`` nodes.  A worker process
    dying mid-search raises RuntimeError in the parent: its local
    accumulator is unrecoverable, so completing would silently undercount.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    if share_poll < 1:
        raise ValueError("share_poll must be >= 1")
    return _sharing_search(
        _budget_worker_main,
        (budget, share_poll, queue_poll),
        spec_factory, factory_args, stype_factory, stype_args,
        n_processes=n_processes, label="budget",
    )


def multiprocessing_stacksteal_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype_factory: Callable[..., SearchType],
    stype_args: tuple = (),
    *,
    n_processes: int = 2,
    chunked: bool = True,
    share_poll: int = 64,
    queue_poll: float = 0.02,
) -> SearchResult:
    """Stack-Stealing search over worker processes (shared-memory steals).

    The whole tree starts as one task on the shared queue.  An idle
    worker raises a *steal request* — a shared hungry counter it
    increments once and decrements when it next obtains work.  Busy
    workers poll that counter on their ``share_poll`` periodic duties
    and, seeing it raised, expose the lowest-depth frame of their live
    generator stack: all remaining children there when ``chunked``
    (:func:`~repro.core.tasks.split_lowest_inlined`), a single node
    otherwise (:func:`~repro.core.tasks.split_one_inlined`), pushed to
    the queue for the thief.  This is the paper's Stack-Stealing
    coordination with the victim's poll standing in for an interrupt:
    work moves only when somebody is starving, unlike Budget's
    unconditional splitting cadence.

    Factories and objective constraints are as for
    :func:`multiprocessing_budget_search`; a worker death likewise
    raises RuntimeError.
    """
    if share_poll < 1:
        raise ValueError("share_poll must be >= 1")
    hungry = Value("q", 0)
    return _sharing_search(
        _stacksteal_worker_main,
        (hungry, bool(chunked), share_poll, queue_poll),
        spec_factory, factory_args, stype_factory, stype_args,
        n_processes=n_processes, label="stacksteal", count_steals=True,
    )


def _sharing_search(
    worker_target: Callable[..., None],
    extra_args: tuple,
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype_factory: Callable[..., SearchType],
    stype_args: tuple = (),
    *,
    n_processes: int = 2,
    label: str = "budget",
    count_steals: bool = False,
) -> SearchResult:
    """Shared parent driver for the queue-based sharing coordinations.

    Budget and Stack-Stealing differ only in *when a worker gives work
    away*; everything around that — the shared incumbent, the
    outstanding-task termination counter, crash detection, draining and
    the result merge — is this function.  ``worker_target`` receives the
    standard shared objects followed by ``extra_args`` and must report a
    payload dict in the ``_budget_worker_main`` shape; ``count_steals``
    additionally folds the workers' split counts into
    ``metrics.steals`` (they are steals, not scheduled spawns, under
    Stack-Stealing).
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    spec = spec_factory(*factory_args)
    stype = stype_factory(*stype_args)
    started = time.perf_counter()

    knowledge = stype.initial_knowledge(spec)
    if stype.kind == "enumeration":
        best_seed = 0  # unused: enumeration accumulators stay local
    else:
        best_seed = _checked_incumbent_seed(knowledge.value)
    best = Value("q", best_seed)
    goal_flag = Value("b", 0, lock=False)
    done_flag = Value("b", 0, lock=False)
    outstanding = Value("q", 1)  # tasks queued or being searched
    task_q: Queue = Queue()
    result_q: Queue = Queue()
    task_q.put((spec.root, 0))

    procs = [
        Process(
            target=worker_target,
            args=(
                spec_factory, factory_args, stype_factory, stype_args,
                task_q, result_q, outstanding, best, goal_flag, done_flag,
                *extra_args,
            ),
            daemon=True,
        )
        for _ in range(n_processes)
    ]
    for p in procs:
        p.start()

    payloads: list[dict] = []
    error: Optional[str] = None
    while len(payloads) < n_processes:
        try:
            tag, body = result_q.get(timeout=0.1)
        except Empty:
            crashed = [
                p.exitcode for p in procs if p.exitcode not in (None, 0)
            ]
            if crashed:
                error = (
                    f"worker died with exit code {crashed[0]} before "
                    "reporting results"
                )
                break
            if all(p.exitcode is not None for p in procs) and not result_q._reader.poll():
                error = "all workers exited without reporting results"
                break
            continue
        if tag == "error":
            error = body
            break
        payloads.append(body)

    if error is not None:
        done_flag.value = 1  # ask survivors to wind down
        for p in procs:
            p.terminate()
    # Drain leftover tasks (goal/error paths) so worker feeder threads
    # never block, then reap the processes.
    while True:
        try:
            task_q.get_nowait()
        except (Empty, OSError, EOFError):
            break
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():
            p.kill()
            p.join(timeout=5.0)
    # The drain races the feeder thread: items still in its internal
    # buffer can flush into the (now reader-less) pipe after the drain,
    # and interpreter exit would join that blocked feeder forever.
    # Leftover tasks are garbage at this point, so drop them.
    task_q.cancel_join_thread()
    task_q.close()
    result_q.close()
    if error is not None:
        raise RuntimeError(f"{label} backend worker failed: {error}")

    metrics = SearchMetrics()
    goal = False
    for body in payloads:
        metrics.nodes += body["nodes"]
        metrics.prunes += body["prunes"]
        metrics.backtracks += body["backtracks"]
        metrics.spawns += body["splits"]
        if count_steals:
            metrics.steals += body["splits"]
        metrics.max_depth = max(metrics.max_depth, body["max_depth"])
        goal = goal or body["goal"]
        if stype.kind == "enumeration":
            knowledge = stype.combine(knowledge, body["knowledge"])
        else:
            value, node = body["knowledge"]
            if node is not None:
                knowledge = stype.combine(knowledge, Incumbent(value, node))
    metrics.weighted_nodes = metrics.nodes
    elapsed = time.perf_counter() - started

    if isinstance(knowledge, Incumbent):
        return SearchResult(
            kind=stype.kind,
            value=knowledge.value,
            node=knowledge.node,
            found=(goal or stype.is_goal(knowledge))
            if stype.kind == "decision"
            else None,
            metrics=metrics,
            wall_time=elapsed,
            workers=n_processes,
        )
    return SearchResult(
        kind=stype.kind,
        value=knowledge,
        metrics=metrics,
        wall_time=elapsed,
        workers=n_processes,
    )


# -- replicable Ordered backend ---------------------------------------------


def _ordered_worker_main(
    spec_factory,
    factory_args,
    stype_factory,
    stype_args,
    task_q,
    result_q,
    best,
    done_flag,
    share_poll,
    queue_poll,
):
    """Worker process for the Ordered coordination: atomic pinned tasks.

    Pulls ``(seq, root, depth, pinned_bound)`` leases and runs each
    through :func:`~repro.core.ordered.run_task_fixed_bound` — a pure
    function of ``(root, bound)``, so nothing this worker does depends
    on timing.  A lease with ``pinned_bound=None`` is speculative: the
    bound is read once from the shared finalised-prefix best (written
    only by the parent) at task start; the parent's ledger re-issues
    the task with the bound pinned if speculation ran stale.  Results
    are never merged here and no incumbent is ever published — ordering
    and merging belong to the parent's ledger alone.
    """
    try:
        task_q.cancel_join_thread()
        spec = spec_factory(*factory_args)
        stype = stype_factory(*stype_args)
        enum = stype.kind == "enumeration"
        best_raw = best.get_obj()  # lock-free read (parent is sole writer)

        def aborted() -> bool:
            return bool(done_flag.value)

        while not done_flag.value:
            try:
                seq, root, depth, pinned = task_q.get(timeout=queue_poll)
            except Empty:
                continue
            bound = None
            if not enum:
                bound = pinned if pinned is not None else best_raw.value
            payload = run_task_fixed_bound(
                spec, stype, root, depth, bound,
                poll=share_poll, should_abort=aborted,
            )
            if payload is None:
                break  # asked to wind down mid-task; nothing published
            if not enum:
                payload["bound"] = bound
            try:
                result_q.put(("ok", seq, payload))
            except Exception:
                # Unpicklable witness: keep the value (it drives bound
                # enforcement), drop the node.
                if not enum:
                    payload["node"] = None
                    result_q.put(("ok", seq, payload))
                else:
                    raise
    except BaseException as exc:  # report crashes instead of dying silently
        try:
            result_q.put(("error", -1, f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass


def multiprocessing_ordered_search(
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype_factory: Callable[..., SearchType],
    stype_args: tuple = (),
    *,
    n_processes: int = 2,
    d_cutoff: int = 2,
    share_poll: int = 64,
    queue_poll: float = 0.02,
) -> SearchResult:
    """Replicable Ordered search over worker processes.

    The parent expands the depth-``d_cutoff`` frontier sequentially
    (:func:`~repro.core.ordered.ordered_frontier`), numbering subtree
    tasks in discovery order, then drives an
    :class:`~repro.core.ordered.OrderedLedger`: tasks execute atomically
    on the workers from whatever bound was current (speculation), and
    the ledger finalises results strictly in sequence order, re-issuing
    any task whose bound proves stale with the required bound pinned.
    Two runs with the same instance return the identical value, witness
    *and* node counters at any ``n_processes`` — see
    :func:`~repro.core.ordered.ordered_reference_search` for the
    executable statement of that contract.

    Factories and the non-negative integer objective requirement are as
    for the other backends; a worker death raises RuntimeError (crash
    *tolerance* for Ordered lives in the cluster backend, which can
    re-lease atomic tasks).
    """
    if n_processes < 1:
        raise ValueError("need at least one process")
    if share_poll < 1:
        raise ValueError("share_poll must be >= 1")
    spec = spec_factory(*factory_args)
    stype = stype_factory(*stype_args)
    started = time.perf_counter()

    frontier = ordered_frontier(spec, stype, d_cutoff=d_cutoff)
    ledger = OrderedLedger(stype, frontier)
    if stype.kind != "enumeration":
        _checked_incumbent_seed(frontier.knowledge.value)

    error: Optional[str] = None
    if not ledger.finished:
        best = Value(
            "q",
            0 if stype.kind == "enumeration" else frontier.knowledge.value,
        )
        done_flag = Value("b", 0, lock=False)
        task_q: Queue = Queue()
        result_q: Queue = Queue()
        tasks_by_seq = {t.seq: t for t in frontier.tasks}
        for t in frontier.tasks:
            task_q.put((t.seq, t.node, t.depth, None))

        procs = [
            Process(
                target=_ordered_worker_main,
                args=(
                    spec_factory, factory_args, stype_factory, stype_args,
                    task_q, result_q, best, done_flag, share_poll, queue_poll,
                ),
                daemon=True,
            )
            for _ in range(n_processes)
        ]
        for p in procs:
            p.start()

        while not ledger.finished:
            try:
                tag, seq, body = result_q.get(timeout=0.1)
            except Empty:
                crashed = [
                    p.exitcode for p in procs if p.exitcode not in (None, 0)
                ]
                if crashed:
                    error = (
                        f"worker died with exit code {crashed[0]} before "
                        "reporting results"
                    )
                    break
                if all(p.exitcode is not None for p in procs) and not result_q._reader.poll():
                    error = "all workers exited without reporting results"
                    break
                continue
            if tag == "error":
                error = body
                break
            ledger.record(seq, body)
            for rerun_seq, rerun_bound in ledger.advance():
                t = tasks_by_seq[rerun_seq]
                task_q.put((rerun_seq, t.node, t.depth, rerun_bound))
            if stype.kind != "enumeration":
                # Publish the finalised-prefix best for speculation; the
                # parent is the only writer, so no lock is needed for
                # correctness — workers read it lock-free.
                with best.get_lock():
                    best.get_obj().value = ledger.required_bound()

        done_flag.value = 1  # normal completion and error paths alike
        if error is not None:
            for p in procs:
                p.terminate()
        # Drain leftover leases so worker feeder threads never block.
        while True:
            try:
                task_q.get_nowait()
            except (Empty, OSError, EOFError):
                break
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=5.0)
        # Drop anything the feeder thread flushes after the drain (the
        # drain races it); joining a feeder blocked on the reader-less
        # pipe would hang interpreter exit.
        task_q.cancel_join_thread()
        task_q.close()
        result_q.close()
    if error is not None:
        raise RuntimeError(f"ordered backend worker failed: {error}")

    knowledge = ledger.knowledge
    metrics = ledger.metrics
    metrics.weighted_nodes = metrics.nodes
    elapsed = time.perf_counter() - started
    if isinstance(knowledge, Incumbent):
        return SearchResult(
            kind=stype.kind,
            value=knowledge.value,
            node=knowledge.node,
            found=(ledger.goal or stype.is_goal(knowledge))
            if stype.kind == "decision"
            else None,
            metrics=metrics,
            wall_time=elapsed,
            workers=n_processes,
        )
    return SearchResult(
        kind=stype.kind,
        value=knowledge,
        metrics=metrics,
        wall_time=elapsed,
        workers=n_processes,
    )


def run_with_processes(
    coordination: str,
    spec_factory: Callable[..., Any],
    factory_args: tuple,
    stype: SearchType,
    params: SkeletonParams,
) -> SearchResult:
    """Dispatch a skeleton run onto the real-process backends.

    Entry point for ``SkeletonParams(backend="processes")``: maps the
    coordination name onto the matching ``multiprocessing_*`` function,
    shipping the search type by ``(kind, kwargs)`` payload (standard
    types only — see :func:`_stype_payload`).
    """
    kind, kwargs = _stype_payload(stype)
    if coordination == "depthbounded":
        return multiprocessing_depthbounded_search(
            spec_factory, factory_args, make_stype, (kind, kwargs),
            n_processes=params.n_processes, d_cutoff=params.d_cutoff,
        )
    if coordination == "budget":
        return multiprocessing_budget_search(
            spec_factory, factory_args, make_stype, (kind, kwargs),
            n_processes=params.n_processes, budget=params.budget,
            share_poll=params.share_poll,
        )
    if coordination == "stacksteal":
        return multiprocessing_stacksteal_search(
            spec_factory, factory_args, make_stype, (kind, kwargs),
            n_processes=params.n_processes, chunked=params.chunked,
            share_poll=params.share_poll,
        )
    if coordination == "ordered":
        return multiprocessing_ordered_search(
            spec_factory, factory_args, make_stype, (kind, kwargs),
            n_processes=params.n_processes, d_cutoff=params.d_cutoff,
            share_poll=params.share_poll,
        )
    raise ValueError(
        f"the processes backend implements the 'depthbounded', 'budget', "
        f"'stacksteal' and 'ordered' coordinations, not {coordination!r}; "
        "use backend='sim' for the rest"
    )
