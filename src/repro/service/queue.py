"""Bounded, submitter-fair priority queue with admission control.

Ordering is two-level, mirroring what multi-tenant search services
(mts-style master/worker frameworks) converge on:

- **Across submitters**: strict round-robin.  Each ``pop`` serves the
  next submitter with queued work, so a submitter flooding the queue
  with 1000 jobs cannot starve one with a single job.
- **Within a submitter**: highest :attr:`JobSpec.priority` first,
  FIFO among equals (a monotone sequence number breaks ties, so heap
  order is total and stable).

Admission control is *reject-with-reason*: when the queue is full (or a
submitter exceeds their share) :meth:`JobQueue.push` raises
:class:`AdmissionError` carrying a human-readable reason — the service
reports it back rather than blocking or silently dropping, which is the
backpressure contract the scheduler builds on.

Cancellation is lazy: the scheduler flips the job to ``CANCELLED`` and
``pop`` discards non-``PENDING`` entries when it meets them, the classic
heapq tombstone pattern.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Optional

from repro.service.jobs import Job, JobState

__all__ = ["AdmissionError", "JobQueue"]


class AdmissionError(Exception):
    """A submission was rejected at the door; ``reason`` says why."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class JobQueue:
    """Priority queue over :class:`Job` with fairness and backpressure.

    Args:
        max_depth: total queued (live) jobs admitted before rejection.
        max_per_submitter: per-submitter cap, defaulting to ``max_depth``
            (i.e. no extra restriction).
    """

    def __init__(
        self, *, max_depth: int = 256, max_per_submitter: Optional[int] = None
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if max_per_submitter is not None and max_per_submitter < 1:
            raise ValueError("max_per_submitter must be >= 1")
        self.max_depth = max_depth
        self.max_per_submitter = max_per_submitter
        self._heaps: dict[str, list[tuple[int, int, Job]]] = {}  # guarded-by: caller
        self._round_robin: deque[str] = deque()  # guarded-by: caller
        self._seq = 0  # guarded-by: caller

    # -- introspection -------------------------------------------------------

    def depth(self) -> int:
        """Live (still-PENDING) queued jobs, tombstones excluded."""
        return sum(self.depth_of(s) for s in self._heaps)

    def depth_of(self, submitter: str) -> int:
        """Live queued jobs of one submitter."""
        return sum(
            1
            for _, _, job in self._heaps.get(submitter, ())
            if job.state is JobState.PENDING
        )

    def __len__(self) -> int:
        return self.depth()

    def __bool__(self) -> bool:
        return self.depth() > 0

    # -- admission -----------------------------------------------------------

    def push(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`AdmissionError` with a reason."""
        depth = self.depth()
        if depth >= self.max_depth:
            raise AdmissionError(
                f"queue full: {depth} jobs queued (max_depth={self.max_depth})"
            )
        submitter = job.spec.submitter
        if self.max_per_submitter is not None:
            own = self.depth_of(submitter)
            if own >= self.max_per_submitter:
                raise AdmissionError(
                    f"submitter {submitter!r} quota exceeded: {own} jobs queued "
                    f"(max_per_submitter={self.max_per_submitter})"
                )
        if submitter not in self._heaps:
            self._heaps[submitter] = []
            self._round_robin.append(submitter)
        # Negated priority: heapq is a min-heap, we want high priority out
        # first; seq keeps FIFO order among equal priorities.
        heapq.heappush(self._heaps[submitter], (-job.spec.priority, self._seq, job))
        self._seq += 1

    # -- service -------------------------------------------------------------

    def pop(self) -> Optional[Job]:
        """The next job in fair order, or None when empty.

        Rotates through submitters round-robin; entries whose job is no
        longer ``PENDING`` (cancelled while queued) are discarded in
        passing.
        """
        while self._round_robin:
            submitter = self._round_robin.popleft()
            heap = self._heaps[submitter]
            job = None
            while heap:
                _, _, candidate = heapq.heappop(heap)
                if candidate.state is JobState.PENDING:
                    job = candidate
                    break
                # tombstone: cancelled while queued, drop and continue
            if heap:
                self._round_robin.append(submitter)
            else:
                del self._heaps[submitter]
            if job is not None:
                return job
        return None
