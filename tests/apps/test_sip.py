"""Tests for Subgraph Isomorphism, with networkx as the oracle."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.graph import Graph
from repro.apps.sip import SIPInstance, check_embedding, sip_spec, solve_sip
from repro.core.searchtypes import Decision
from repro.core.sequential import sequential_search
from repro.instances.graphs import cycle_graph, uniform_graph
from repro.instances.library import random_sip


def to_nx(g: Graph) -> nx.Graph:
    out = nx.Graph()
    out.add_nodes_from(range(g.n))
    out.add_edges_from(g.edges())
    return out


def nx_has_subgraph_iso(pattern: Graph, target: Graph) -> bool:
    """Non-induced ('monomorphism') subgraph isomorphism oracle."""
    matcher = nx.algorithms.isomorphism.GraphMatcher(to_nx(target), to_nx(pattern))
    return matcher.subgraph_is_monomorphic()


pattern_graphs = st.builds(
    uniform_graph,
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=100),
)
target_graphs = st.builds(
    uniform_graph,
    st.integers(min_value=1, max_value=9),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=100, max_value=200),
)


class TestInstance:
    def test_order_most_constrained_first(self):
        pattern = cycle_graph(4)
        inst = SIPInstance.build(pattern, cycle_graph(6))
        degs = [pattern.degree(v) for v in inst.order]
        assert degs == sorted(degs, reverse=True)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            SIPInstance.build(Graph(0), cycle_graph(3))


class TestSearch:
    def test_triangle_in_k4(self):
        k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        res = solve_sip(cycle_graph(3), k4)
        assert res.found is True

    def test_triangle_not_in_tree(self):
        tree = Graph.from_edges(5, [(0, 1), (0, 2), (1, 3), (1, 4)])
        res = solve_sip(cycle_graph(3), tree)
        assert res.found is False

    def test_c4_in_c4(self):
        res = solve_sip(cycle_graph(4), cycle_graph(4))
        assert res.found is True

    def test_c5_not_in_c4(self):
        res = solve_sip(cycle_graph(5), cycle_graph(4))
        assert res.found is False

    def test_pattern_larger_than_target_refuted(self):
        res = solve_sip(cycle_graph(5), cycle_graph(3))
        assert res.found is False

    @settings(max_examples=50, deadline=None)
    @given(pattern_graphs, target_graphs)
    def test_matches_networkx(self, pattern, target):
        res = solve_sip(pattern, target)
        assert res.found == nx_has_subgraph_iso(pattern, target)

    def test_witness_is_valid_embedding(self):
        inst = random_sip(6, 25, 0.3, seed=7, planted=True)
        spec = sip_spec(inst)
        res = sequential_search(spec, Decision(target=inst.pattern.n))
        assert res.found is True
        assert check_embedding(inst, res.node)

    def test_planted_instances_always_sat(self):
        for seed in range(5):
            inst = random_sip(7, 30, 0.25, seed=seed, planted=True)
            res = sequential_search(sip_spec(inst), Decision(target=7))
            assert res.found is True


class TestCheckEmbedding:
    def test_rejects_partial(self):
        inst = random_sip(5, 20, 0.3, seed=1)
        spec = sip_spec(inst)
        assert not check_embedding(inst, spec.root)

    def test_rejects_non_edge_preserving(self):
        pattern = cycle_graph(3)
        target = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])  # path: no triangle
        inst = SIPInstance.build(pattern, target)
        from repro.apps.sip import SIPNode

        fake = SIPNode(assignment=(0, 1, 2), used=0b111)
        assert not check_embedding(inst, fake)


class TestInducedVariant:
    """Induced subgraph isomorphism: non-edges must also be preserved."""

    def test_path_in_cycle_non_induced_only(self):
        # P3 (path on 3 vertices) appears in C3 as a monomorphism but not
        # as an induced subgraph (C3 has the extra closing edge).
        p3 = Graph.from_edges(3, [(0, 1), (1, 2)])
        c3 = cycle_graph(3)
        assert solve_sip(p3, c3).found is True
        assert solve_sip(p3, c3, induced=True).found is False

    def test_induced_cycle_found(self):
        assert solve_sip(cycle_graph(4), cycle_graph(4), induced=True).found is True

    def test_c4_in_k4_non_induced_only(self):
        k4 = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert solve_sip(cycle_graph(4), k4).found is True
        assert solve_sip(cycle_graph(4), k4, induced=True).found is False

    @settings(max_examples=50, deadline=None)
    @given(pattern_graphs, target_graphs)
    def test_matches_networkx_induced(self, pattern, target):
        matcher = nx.algorithms.isomorphism.GraphMatcher(to_nx(target), to_nx(pattern))
        expected = matcher.subgraph_is_isomorphic()  # induced semantics
        assert solve_sip(pattern, target, induced=True).found == expected

    def test_induced_witness_verified(self):
        pattern = cycle_graph(5)
        target = cycle_graph(9)
        inst = SIPInstance.build(pattern, target, induced=True)
        res = sequential_search(sip_spec(inst), Decision(target=5))
        if res.found:
            assert check_embedding(inst, res.node)

    def test_parallel_induced(self):
        from repro.core.params import SkeletonParams

        pattern = cycle_graph(4)
        target = uniform_graph(25, 0.35, seed=44)
        seq = solve_sip(pattern, target, induced=True)
        par = solve_sip(
            pattern, target, induced=True, skeleton="stacksteal",
            params=SkeletonParams(localities=1, workers_per_locality=4),
        )
        assert par.found == seq.found
