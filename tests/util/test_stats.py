"""Tests for benchmark statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    SweepSummary,
    geometric_mean,
    percentile,
    relative_speedups,
    summarize_overheads,
)

positive = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


class TestGeometricMean:
    def test_single(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_pair(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(positive, min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(positive, min_size=1, max_size=20), positive)
    def test_scaling_homogeneous(self, values, c):
        lhs = geometric_mean([v * c for v in values])
        rhs = geometric_mean(values) * c
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestRelativeSpeedups:
    def test_basic(self):
        out = relative_speedups({"a": 10.0, "b": 6.0}, {"a": 2.0, "b": 3.0})
        assert out == {"a": 5.0, "b": 2.0}

    def test_missing_keys_skipped(self):
        out = relative_speedups({"a": 10.0, "b": 6.0}, {"a": 2.0})
        assert out == {"a": 5.0}

    def test_nonpositive_runtime_raises(self):
        with pytest.raises(ValueError):
            relative_speedups({"a": 1.0}, {"a": 0.0})


class TestSummarizeOverheads:
    def test_percentages(self):
        out = summarize_overheads({"x": 100.0}, {"x": 108.8})
        assert out["x"] == pytest.approx(8.8)

    def test_speedup_is_negative_overhead(self):
        out = summarize_overheads({"x": 100.0}, {"x": 95.0})
        assert out["x"] == pytest.approx(-5.0)

    def test_min_runtime_filter(self):
        # Mirrors Table 1's 1.5s filter against skewed tiny instances.
        out = summarize_overheads(
            {"big": 10.0, "tiny": 0.1}, {"big": 11.0, "tiny": 0.3}, min_runtime=1.5
        )
        assert set(out) == {"big"}


class TestSweepSummary:
    def _summary(self):
        s = SweepSummary(rng_seed=1)
        s.add("inst1", 1, 2.0)
        s.add("inst1", 2, 8.0)
        s.add("inst2", 1, 4.0)
        s.add("inst2", 2, 16.0)
        return s

    def test_worst(self):
        assert self._summary().worst() == pytest.approx(math.sqrt(2.0 * 4.0))

    def test_best(self):
        assert self._summary().best() == pytest.approx(math.sqrt(8.0 * 16.0))

    def test_random_between_worst_and_best(self):
        s = self._summary()
        assert s.worst() - 1e-9 <= s.random() <= s.best() + 1e-9

    def test_random_is_deterministic_per_seed(self):
        assert self._summary().random() == self._summary().random()

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SweepSummary().worst()

    def test_nonpositive_speedup_rejected(self):
        with pytest.raises(ValueError):
            SweepSummary().add("i", 1, 0.0)

    def test_instances_listing(self):
        assert self._summary().instances == ["inst1", "inst2"]


class TestPercentile:
    def test_median_of_odd_sequence(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_median_interpolates_even_sequence(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 1, 9, 3]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0

    def test_p95_interpolation(self):
        data = list(range(1, 101))  # 1..100
        assert percentile(data, 95) == pytest.approx(95.05)

    def test_single_value(self):
        assert percentile([7.5], 95) == 7.5

    def test_input_order_irrelevant(self):
        assert percentile([9, 1, 5], 75) == percentile([1, 5, 9], 75)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1),
           st.floats(min_value=0, max_value=100))
    def test_result_within_data_range(self, data, q):
        assert min(data) <= percentile(data, q) <= max(data)
