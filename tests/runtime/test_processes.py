"""Tests for the multiprocessing Depth-Bounded backend.

Factories must be top-level (picklable) — that constraint is part of
the backend's contract and these tests exercise it for real.
"""

import pytest

from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.runtime.processes import multiprocessing_depthbounded_search


# -- top-level picklable factories -----------------------------------------


def clique_spec_factory(n, p, seed):
    """Rebuild a MaxClique spec from instance parameters."""
    from repro.apps.maxclique import maxclique_spec
    from repro.instances.graphs import uniform_graph

    return maxclique_spec(uniform_graph(n, p, seed))


def uts_spec_factory(b0, depth, seed):
    """Rebuild a UTS spec from instance parameters."""
    from repro.apps.uts import UTSInstance, uts_spec

    return uts_spec(UTSInstance(shape="geometric", b0=b0, max_depth=depth, seed=seed))


def optimisation_factory():
    """Top-level Optimisation constructor (picklable)."""
    return Optimisation()


def enumeration_factory():
    """Top-level Enumeration constructor (picklable)."""
    return Enumeration()


def decision_factory(target):
    """Top-level Decision constructor (picklable)."""
    return Decision(target=target)


CLIQUE_ARGS = (35, 0.5, 9)


class TestCorrectness:
    def test_optimisation_matches_sequential(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=2, d_cutoff=1,
        )
        assert res.value == seq.value

    def test_enumeration_matches_sequential(self):
        args = (3.0, 6, 11)
        seq = sequential_search(uts_spec_factory(*args), Enumeration())
        res = multiprocessing_depthbounded_search(
            uts_spec_factory, args, enumeration_factory,
            n_processes=3, d_cutoff=2,
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_decision_found(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value,),
            n_processes=2, d_cutoff=1,
        )
        assert res.found is True
        assert res.value == seq.value

    def test_decision_refuted(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value + 1,),
            n_processes=2, d_cutoff=1,
        )
        assert res.found is False

    def test_single_process(self):
        seq = sequential_search(clique_spec_factory(*CLIQUE_ARGS), Optimisation())
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=1, d_cutoff=2,
        )
        assert res.value == seq.value

    def test_bad_process_count(self):
        with pytest.raises(ValueError):
            multiprocessing_depthbounded_search(
                clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                n_processes=0,
            )

    def test_workers_reported(self):
        res = multiprocessing_depthbounded_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=3, d_cutoff=1,
        )
        assert res.workers == 3
        assert res.wall_time is not None
