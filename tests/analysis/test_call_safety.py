"""thread-call-safety rule: publisher threads use the blessed bridges."""

from __future__ import annotations

from repro.analysis.core import run_analysis
from repro.analysis.rules.call_safety import CallSafetyRule


def check(project):
    return run_analysis(
        project, [CallSafetyRule()], check_suppression_hygiene=False
    )


class TestUnsafeCalls:
    def test_call_soon_from_sync_def_flagged(self, project_from):
        src = (
            "def publish(loop, fn):\n"
            "    loop.call_soon(fn)\n"
        )
        (finding,) = check(project_from({"p.py": src})).findings
        assert "'loop.call_soon()'" in finding.message
        assert finding.symbol == "publish"

    def test_self_loop_attribute_flagged(self, project_from):
        src = (
            "class Broker:\n"
            "    def publish(self, fn):\n"
            "        self._loop.create_task(fn())\n"
        )
        (finding,) = check(project_from({"p.py": src})).findings
        assert "'_loop.create_task()'" in finding.message
        assert finding.symbol == "Broker.publish"

    def test_asyncio_create_task_in_sync_def_flagged(self, project_from):
        src = (
            "import asyncio\n\n\n"
            "def publish(coro):\n"
            "    asyncio.create_task(coro)\n"
        )
        (finding,) = check(project_from({"p.py": src})).findings
        assert "asyncio.create_task()" in finding.message


class TestSafeCalls:
    def test_call_soon_threadsafe_clean(self, project_from):
        src = (
            "def publish(loop, fn):\n"
            "    loop.call_soon_threadsafe(fn)\n"
        )
        assert check(project_from({"p.py": src})).findings == []

    def test_async_def_exempt(self, project_from):
        src = (
            "import asyncio\n\n\n"
            "async def handler(loop, fn):\n"
            "    loop.call_soon(fn)\n"
            "    asyncio.create_task(fn())\n"
        )
        assert check(project_from({"p.py": src})).findings == []

    def test_sync_def_inside_async_def_exempt(self, project_from):
        # call_soon callbacks run on the loop thread.
        src = (
            "async def handler(loop):\n"
            "    def on_tick():\n"
            "        loop.call_soon(print)\n"
            "    loop.call_soon_threadsafe(on_tick)\n"
        )
        assert check(project_from({"p.py": src})).findings == []

    def test_non_loop_receiver_clean(self, project_from):
        src = (
            "def enqueue(pool, fn):\n"
            "    pool.create_task(fn)\n"
        )
        assert check(project_from({"p.py": src})).findings == []


class TestSuppressed:
    def test_waiver_with_reason(self, project_from):
        src = (
            "def publish(loop, fn):\n"
            "    loop.call_soon(fn)"
            "  # repro: allow[thread-call-safety] -- loop not started yet\n"
        )
        report = check(project_from({"p.py": src}))
        assert report.findings == []
        assert report.suppressed == 1
