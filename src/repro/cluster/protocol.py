"""The cluster wire protocol: framing, messages, and payload codecs.

Every message is one *frame*: a 4-byte big-endian unsigned length
followed by that many bytes of *body*.  Two body formats exist, both
encoding one object with a ``"type"`` field:

- **json** (protocol v1, still the handshake + compatibility format):
  UTF-8 JSON.  Human-readable on the wire (``tcpdump`` shows readable
  traffic), with message boundaries explicit from the length prefix —
  no sentinel scanning, no partial-line ambiguity.
- **binary** (protocol v2): the struct-packed format in
  :mod:`repro.cluster.codec` — 1-byte type tag, varint ints,
  length-prefixed UTF-8 strings, dedicated tags for the node shapes
  :func:`encode_node` emits (the pickle fallback travels as raw bytes
  instead of base64).  Decoding auto-detects the format from the first
  body byte, so a connection can carry a mix; *encoding* follows the
  codec negotiated per connection in HELLO/WELCOME (the worker offers
  ``codecs`` in its HELLO, the coordinator answers with ``codec`` in
  the WELCOME; both handshake frames always travel as JSON, and a v1
  peer that offers nothing negotiates JSON).

Message types
-------------

========== =========== ====================================================
type       direction   meaning
========== =========== ====================================================
HELLO      w -> c      join the cluster (protocol version, name, codecs)
WELCOME    c -> w      assigned worker id + heartbeat interval + codec
JOB        c -> w      search definition: spec factory, search type, knobs
TASK       c -> w      lease subtrees: up to ``slots`` ``[id, epoch, node,
                       depth]`` entries batched in one ``leases`` list
                       (v1 peers get one single-lease frame per task)
OFFCUT     w -> c      budget-trip split: subtrees pushed back for re-lease
STEAL      c -> w      stack-stealing: split your live generator stack and
                       answer with a STOLEN frame (v3)
STOLEN     w -> c      steal answer: lowest-depth subtrees carved off the
                       victim's stack, or empty = nothing to give (v3)
INCUMBENT  both        a strictly better bound value (broadcast downstream)
RESULT     w -> c      a leased task finished: counters + local best
                       (ordered jobs also echo the ``bound`` searched under)
RELEASE    w -> c      retire handback: unstarted leases returned for re-lease
HEARTBEAT  w -> c      liveness (any frame also refreshes the deadline, so
                       workers suppress it while other traffic flows)
JOB_DONE   c -> w      job over (result known / cancelled): drop its state
RETIRE     c -> w      scale-down drain: finish the task in flight, RELEASE
                       the rest, say BYE, exit (no new leases arrive)
SHUTDOWN   c -> w      drain: finish the current task, say BYE, exit
BYE        w -> c      orderly goodbye; the connection closes after it
ERROR      c -> w      protocol violation report before disconnect
========== =========== ====================================================

``RETIRE`` differs from ``SHUTDOWN`` in what happens to leases the
worker holds but has not *started*: a retiring worker hands them back
in a ``RELEASE`` frame (``tasks: [[id, epoch], ...]``) so the
coordinator can re-lease them under a bumped epoch — the same epoch
machinery that recovers a crashed worker's leases, but initiated
cooperatively, before any partial state exists.  That makes retirement
safe even for enumeration jobs, where losing a *started* task is fatal:
the task in flight runs to its RESULT, and everything else was never
touched.

Node transport
--------------

Search-tree nodes are application-defined Python objects (slotted
dataclasses, plain ``__slots__`` classes …), so pure JSON cannot carry
them.  :func:`encode_node` keeps JSON-native values readable on the
wire (ints, strings, lists; tuples and sets via the same tags the
result serialiser uses) and falls back to a tagged base64 pickle for
anything richer.  Cluster peers are *trusted by construction* — they
run the same code base on machines you control, exactly like the
multiprocessing backend's queue (which pickles everything); do not
expose a coordinator port to untrusted networks.

Spec transport stays pickling-free: a spec travels as the dotted path
of a top-level factory plus plain arguments (the same factories the
multiprocessing backend uses), and each worker rebuilds the spec
locally — instances are deterministic, so every node constructs the
identical search space.
"""

from __future__ import annotations

import base64
import importlib
import pickle
import socket
import struct
import threading
from typing import Any, Callable, Optional, Union

from .codec import (
    BINARY_CODEC,
    CODECS,
    JSON_CODEC,
    ProtocolError,
    WireCodec,
    decode_body,
    get_codec,
    negotiate,
    offered_codecs,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "MAX_FRAME",
    "ProtocolError",
    "WireCodec",
    "JSON_CODEC",
    "BINARY_CODEC",
    "CODECS",
    "get_codec",
    "offered_codecs",
    "negotiate",
    "decode_body",
    "frame_bytes",
    "read_frame",
    "recv_exact",
    "encode_node",
    "decode_node",
    "factory_path",
    "resolve_factory",
    "HELLO",
    "WELCOME",
    "JOB",
    "TASK",
    "OFFCUT",
    "STEAL",
    "STOLEN",
    "INCUMBENT",
    "RESULT",
    "RELEASE",
    "HEARTBEAT",
    "JOB_DONE",
    "RETIRE",
    "SHUTDOWN",
    "BYE",
    "ERROR",
]

# v2 adds the binary codec + codec negotiation and batched TASK leases.
# v3 adds the coordination-aware JOB (ordered bound-carrying leases and
# the STEAL/STOLEN stack-stealing exchange).  v1 peers (JSON only, one
# lease per TASK frame) and v2 peers remain fully supported — but only
# v3 peers are eligible for ordered/stacksteal work (see the
# coordinator's lease/victim selection).
PROTOCOL_VERSION = 3
SUPPORTED_VERSIONS = (1, 2, 3)

# One frame must hold a message-sized payload (a task node, an offcut
# batch), never a bulk transfer; anything bigger than this is a protocol
# violation, not data.
MAX_FRAME = 64 * 1024 * 1024

HELLO = "HELLO"
WELCOME = "WELCOME"
JOB = "JOB"
TASK = "TASK"
OFFCUT = "OFFCUT"
STEAL = "STEAL"
STOLEN = "STOLEN"
INCUMBENT = "INCUMBENT"
RESULT = "RESULT"
RELEASE = "RELEASE"
HEARTBEAT = "HEARTBEAT"
JOB_DONE = "JOB_DONE"
RETIRE = "RETIRE"
SHUTDOWN = "SHUTDOWN"
BYE = "BYE"
ERROR = "ERROR"


# -- framing -----------------------------------------------------------------

_LEN = struct.Struct("!I")

CodecLike = Union[WireCodec, str, None]


def _resolve_codec(codec: CodecLike) -> WireCodec:
    if codec is None:
        return JSON_CODEC
    if isinstance(codec, str):
        return get_codec(codec)
    return codec


def frame_bytes(msg: dict, codec: CodecLike = None) -> bytes:
    """Serialise one message dict into a length-prefixed frame.

    ``codec`` is a :class:`~repro.cluster.codec.WireCodec`, a codec
    name, or None for the JSON default — callers pass whatever was
    negotiated for their connection.
    """
    body = _resolve_codec(codec).encode(msg)
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _LEN.pack(len(body)) + body


# recv_exact reuses one growable receive buffer per thread (each
# receiver thread owns its socket, so thread-local is the natural
# scope): no per-frame chunk list, no b"".join.  Buffers above the cap
# — a rare near-MAX_FRAME message — are not retained.
_RECV_BUF_CAP = 1 << 20
_recv_local = threading.local()


def recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes from a blocking socket.

    Returns None on a clean EOF *before any byte*; raises
    ``ConnectionError`` on EOF mid-message (a torn frame is a failure,
    an empty read between frames is a normal close).
    """
    buf = getattr(_recv_local, "buf", None)
    if buf is None or len(buf) < n:
        buf = bytearray(max(n, 4096))
        if len(buf) <= _RECV_BUF_CAP:
            _recv_local.buf = buf
    view = memoryview(buf)
    got = 0
    while got < n:
        read = sock.recv_into(view[got:n])
        if not read:
            if got == 0:
                return None
            raise ConnectionError("connection closed mid-frame")
        got += read
    return bytes(view[:n])


def read_frame(sock: socket.socket, codec: CodecLike = None) -> Optional[dict]:
    """Read one framed message from a blocking socket (None on clean EOF).

    ``codec`` is accepted for symmetry with :func:`frame_bytes`, but
    decoding always auto-detects the body format from its first byte
    (see :func:`~repro.cluster.codec.decode_body`), so mixed-codec
    traffic — e.g. a JSON HELLO on an otherwise binary connection —
    just works.
    """
    header = recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"peer announced a {length}-byte frame")
    body = recv_exact(sock, length)
    if body is None:
        raise ConnectionError("connection closed mid-frame")
    return decode_body(body)


# -- node payload codec ------------------------------------------------------

_TUPLE_TAG = "__tuple__"
_SET_TAG = "__set__"
_FROZENSET_TAG = "__frozenset__"
_PICKLE_TAG = "__pickle__"
_TAGS = (_TUPLE_TAG, _SET_TAG, _FROZENSET_TAG, _PICKLE_TAG)


def encode_node(value: Any) -> Any:
    """Encode an arbitrary search node into a JSON-safe structure.

    JSON primitives, lists and string-keyed dicts pass through
    structurally; tuples/sets/frozensets are tagged so they round-trip
    *exactly* (unlike the lossy result serialiser, task transport must
    reconstruct the identical object).  Anything else — application
    node classes — becomes a tagged base64 pickle (trusted peers only;
    see the module docstring).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_node(v) for v in value]}
    if isinstance(value, list):
        return [encode_node(v) for v in value]
    if isinstance(value, (set, frozenset)):
        tag = _FROZENSET_TAG if isinstance(value, frozenset) else _SET_TAG
        try:
            ordered = sorted(value)
        except TypeError:
            ordered = sorted(value, key=repr)
        return {tag: [encode_node(v) for v in ordered]}
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and not any(
            t in value for t in _TAGS
        ):
            return {k: encode_node(v) for k, v in value.items()}
    return {_PICKLE_TAG: base64.b64encode(pickle.dumps(value)).decode("ascii")}


def decode_node(value: Any) -> Any:
    """Inverse of :func:`encode_node` (exact round trip)."""
    if isinstance(value, list):
        return [decode_node(v) for v in value]
    if isinstance(value, dict):
        if len(value) == 1:
            if _TUPLE_TAG in value:
                return tuple(decode_node(v) for v in value[_TUPLE_TAG])
            if _SET_TAG in value:
                return set(decode_node(v) for v in value[_SET_TAG])
            if _FROZENSET_TAG in value:
                return frozenset(decode_node(v) for v in value[_FROZENSET_TAG])
            if _PICKLE_TAG in value:
                return pickle.loads(base64.b64decode(value[_PICKLE_TAG]))
        return {k: decode_node(v) for k, v in value.items()}
    return value


# -- spec transport ----------------------------------------------------------


def factory_path(fn: Callable) -> str:
    """``module:qualname`` form of a top-level factory, for the wire."""
    name = getattr(fn, "__qualname__", getattr(fn, "__name__", None))
    module = getattr(fn, "__module__", None)
    if not name or not module or "." in name or "<" in name:
        raise ValueError(
            f"spec factory {fn!r} must be a top-level named function so "
            "worker nodes can import it by dotted path"
        )
    return f"{module}:{name}"


def resolve_factory(path: str) -> Callable:
    """Import a factory from its ``module:qualname`` wire form."""
    if ":" not in path:
        raise ProtocolError(f"malformed factory path {path!r}")
    module_name, attr = path.split(":", 1)
    try:
        module = importlib.import_module(module_name)
        fn = getattr(module, attr)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot resolve factory {path!r}: {exc}") from None
    if not callable(fn):
        raise ProtocolError(f"factory {path!r} is not callable")
    return fn
