"""Hardening tests: guards, degenerate inputs, and scale smoke tests."""

import pytest

from repro.core.params import SkeletonParams
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.core.space import SearchSpec
from repro.core.nodegen import ListNodeGenerator
from repro.core.tasks import BUDGET, DEPTH, ORDERED, RANDOM, STACK
from repro.runtime.costmodel import CostModel
from repro.runtime.executor import SimulatedCluster
from repro.runtime.topology import Topology

from tests.conftest import make_toy_spec


def wide_spec(width, depth):
    children = {}
    values = {"root": 1}

    def grow(name, d):
        if d == depth:
            return
        kids = [f"{name}/{i}" for i in range(width)]
        children[name] = kids
        for k in kids:
            values[k] = 1
            grow(k, d + 1)

    grow("root", 0)
    return make_toy_spec(children, values, with_bound=False)


class TestGuards:
    def test_max_events_exceeded_raises(self):
        spec = wide_spec(4, 4)
        cluster = SimulatedCluster(Topology(1, 2), max_events=50)
        with pytest.raises(RuntimeError):
            cluster.run(spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=2))

    def test_single_node_tree(self):
        spec = make_toy_spec({}, {"root": 7})
        for policy in (DEPTH, BUDGET, STACK, RANDOM, ORDERED):
            res = SimulatedCluster(Topology(2, 2)).run(
                spec, Enumeration(), policy, SkeletonParams(d_cutoff=1, budget=1)
            )
            assert res.value == 7
            assert res.metrics.nodes == 1

    def test_goal_at_root_stops_immediately(self, toy_spec):
        res = SimulatedCluster(Topology(2, 3)).run(
            toy_spec, Decision(target=0), DEPTH, SkeletonParams(d_cutoff=2)
        )
        assert res.found is True
        assert res.metrics.nodes == 1

    def test_zero_latency_cost_model(self):
        spec = wide_spec(3, 3)
        cost = CostModel(
            steal_latency_local=0.0,
            steal_latency_remote=0.0,
            broadcast_latency_local=0.0,
            broadcast_latency_remote=0.0,
            spawn_cost=0.0,
            schedule_cost=0.0,
            backtrack_cost=0.0,
            framework_node_overhead=0.0,
        )
        res = SimulatedCluster(Topology(2, 2), cost).run(
            spec, Enumeration(), STACK, SkeletonParams()
        )
        assert res.value == sequential_search(spec, Enumeration()).value

    def test_deep_narrow_tree(self):
        # A pure chain: no splittable work ever exists for thieves.
        children = {f"n{i}": [f"n{i+1}"] for i in range(40)}
        chain = {"root": ["n0"], **children}
        values = {k: 1 for k in ["root"] + [f"n{i}" for i in range(42)]}
        # fix: only nodes actually in the tree
        values = {"root": 1, **{f"n{i}": 1 for i in range(41)}}
        spec = make_toy_spec(chain, values, with_bound=False)
        for policy in (STACK, BUDGET):
            res = SimulatedCluster(Topology(1, 4)).run(
                spec, Enumeration(), policy, SkeletonParams(budget=5)
            )
            assert res.value == 42


class TestScaleSmoke:
    def test_255_workers_17_localities(self):
        """The paper's full topology on a moderate tree completes and
        produces a consistent result with every worker accounted for."""
        spec = wide_spec(6, 4)  # 1555 nodes
        res = SimulatedCluster(Topology(17, 15)).run(
            spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=2)
        )
        assert res.value == 1555
        assert res.workers == 255
        assert len(res.per_worker_busy) == 255

    def test_many_workers_stack_policy(self):
        spec = wide_spec(5, 4)
        res = SimulatedCluster(Topology(8, 15)).run(
            spec, Enumeration(), STACK, SkeletonParams(chunked=True)
        )
        assert res.value == 781

    def test_extreme_worker_surplus(self):
        # 120 workers, 3 tasks: almost everyone starves, still correct.
        spec = wide_spec(3, 2)
        res = SimulatedCluster(Topology(8, 15)).run(
            spec, Enumeration(), DEPTH, SkeletonParams(d_cutoff=1)
        )
        assert res.value == 13


class TestDegenerateSearchSpaces:
    def test_generator_yielding_nothing_for_root(self):
        spec = SearchSpec(
            name="leaf-only",
            space=None,
            root="only",
            generator=lambda s, n: ListNodeGenerator([]),
            objective=lambda n: 5,
        )
        res = SimulatedCluster(Topology(1, 2)).run(
            spec, Optimisation(), STACK, SkeletonParams()
        )
        assert res.value == 5

    def test_all_equal_objectives_pick_some_witness(self, toy_spec_unbounded):
        res = SimulatedCluster(Topology(1, 3)).run(
            toy_spec_unbounded, Optimisation(), BUDGET, SkeletonParams(budget=1)
        )
        assert res.value == 3
