"""async-blocking: no blocking calls or dropped coroutines in async defs.

One ``time.sleep`` inside a coordinator or gateway handler freezes the
whole event loop — every shard, every stream, every heartbeat.  The
rule flags, inside ``async def`` bodies:

- known blocking calls by dotted name (``time.sleep``,
  ``subprocess.run``, ``urllib.request.urlopen``, ...);
- blocking socket-style method calls (``.recv``/``.accept``/
  ``.sendall``) — asyncio code should use streams or
  ``loop.run_in_executor``;
- ``.get()``/``.put()`` on a local ``queue.Queue`` (the *threading*
  queue; ``asyncio.Queue`` methods are coroutines and must be awaited);
- bare coroutine calls: an expression statement that calls an ``async
  def`` from the same module without awaiting it creates a coroutine
  object and silently drops it.

Blocking work belongs behind ``loop.run_in_executor`` (the gateway's
idiom for scheduler submits) — executor dispatch never matches these
patterns, so the correct code is naturally clean.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Rule, SourceFile
from repro.analysis.findings import Finding

__all__ = ["AsyncBlockingRule"]

# Fully-dotted callables that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "urllib.request.urlopen",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.wait",
        "os.waitpid",
        "input",
    }
)

# Method names that are blocking on sockets/files whatever the receiver.
BLOCKING_METHODS = frozenset({"recv", "recv_into", "accept", "sendall"})


def _dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None for anything dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class AsyncBlockingRule(Rule):
    name = "async-blocking"
    description = (
        "no blocking calls or un-awaited coroutines inside"
        " 'async def' bodies"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        """Check every ``async def`` body for blocking constructs."""
        async_names = self._module_async_defs(src.tree)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                owner = self._owner_class(src.tree, node)
                yield from self._check_async_body(
                    src, node, owner, async_names
                )

    # -- module knowledge ---------------------------------------------------

    def _module_async_defs(self, tree: ast.Module) -> set[tuple[str, str]]:
        """(scope, name) pairs; scope '' = module level, else class name."""
        names: set[tuple[str, str]] = set()
        for node in tree.body:
            if isinstance(node, ast.AsyncFunctionDef):
                names.add(("", node.name))
            elif isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, ast.AsyncFunctionDef):
                        names.add((node.name, sub.name))
        return names

    def _owner_class(
        self, tree: ast.Module, func: ast.AsyncFunctionDef
    ) -> str:
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and func in node.body:
                return node.name
        return ""

    # -- per-async-def scan -------------------------------------------------

    def _check_async_body(
        self,
        src: SourceFile,
        func: ast.AsyncFunctionDef,
        owner: str,
        async_names: set[tuple[str, str]],
    ) -> Iterator[Finding]:
        symbol = f"{owner}.{func.name}" if owner else func.name
        thread_queues = self._local_thread_queues(func)
        for node in self._async_scope(func):
            if isinstance(node, ast.Expr) and isinstance(
                node.value, ast.Call
            ):
                dropped = self._dropped_coroutine(
                    node.value, owner, async_names
                )
                if dropped:
                    yield Finding(
                        path=src.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=(
                            f"coroutine '{dropped}' is called but"
                            " never awaited (the call only creates"
                            " the coroutine object)"
                        ),
                        symbol=symbol,
                    )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in BLOCKING_CALLS:
                yield Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"blocking call '{dotted}' inside 'async"
                        " def'; use asyncio primitives or"
                        " loop.run_in_executor"
                    ),
                    symbol=symbol,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in BLOCKING_METHODS
            ):
                yield Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"blocking socket method '.{node.func.attr}()'"
                        " inside 'async def'; use asyncio streams or"
                        " loop.run_in_executor"
                    ),
                    symbol=symbol,
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "put")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in thread_queues
            ):
                yield Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"'{node.func.value.id}.{node.func.attr}()' on"
                        " a threading queue.Queue blocks the event"
                        " loop; use asyncio.Queue"
                    ),
                    symbol=symbol,
                )

    def _async_scope(self, func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes lexically inside *func* but not in nested functions.

        Nested sync defs are callbacks with their own execution
        context; nested async defs are visited in their own right by
        :meth:`check_file`.
        """
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _local_thread_queues(self, func: ast.AsyncFunctionDef) -> set[str]:
        """Local names assigned from ``queue.Queue(...)`` in this def."""
        names: set[str] = set()
        for node in self._async_scope(func):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if _dotted(node.value.func) == "queue.Queue":
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _dropped_coroutine(
        self,
        call: ast.Call,
        owner: str,
        async_names: set[tuple[str, str]],
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and ("", func.id) in async_names:
            return func.id
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and owner
            and (owner, func.attr) in async_names
        ):
            return f"self.{func.attr}"
        return None
