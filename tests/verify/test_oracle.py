"""Tests for the dual oracles and the per-search-type invariants."""

import dataclasses

import pytest

from repro.verify.generators import Instance
from repro.verify.oracle import build_report, check_result, oracle_self_check

# One fixed instance per family, small enough for the machine oracle.
FIXED = [
    Instance("uts", (2, 3, 7)),
    Instance("maxclique", (9, 50, 11)),
    Instance("kclique", (8, 40, 3, 5)),
    Instance("knapsack", (7, 3)),
    Instance("sip", (3, 7, 40, 1, 2)),
]


def clone(result, **overrides):
    out = dataclasses.replace(result)
    out.metrics = dataclasses.replace(result.metrics)
    for key, value in overrides.items():
        if hasattr(out.metrics, key):
            setattr(out.metrics, key, value)
        else:
            setattr(out, key, value)
    return out


class TestOracleAgreement:
    @pytest.mark.parametrize("inst", FIXED, ids=lambda i: i.family)
    def test_oracles_agree_and_sequential_conforms(self, inst):
        report = build_report(inst)
        assert report.machine_value is not None, "instance too big for machine"
        assert oracle_self_check(report) == []
        assert check_result(report, report.sequential, label="seq") == []

    def test_machine_skipped_above_node_limit(self):
        report = build_report(FIXED[0], machine_max_nodes=1)
        assert report.machine_value is None
        assert oracle_self_check(report) == []


class TestViolationsFlagged:
    @pytest.fixture(scope="class")
    def opt_report(self):
        return build_report(Instance("knapsack", (7, 3)))

    @pytest.fixture(scope="class")
    def dec_report(self):
        return build_report(Instance("kclique", (8, 40, 3, 5)))

    def test_wrong_optimum_flagged(self, opt_report):
        bad = clone(opt_report.sequential, value=opt_report.sequential.value + 1)
        assert any("optimum" in i for i in check_result(opt_report, bad))

    def test_right_value_wrong_witness_flagged(self, opt_report):
        # The headline number alone must not pass: the witness has to
        # re-verify through the feasibility predicate.
        bad = clone(opt_report.sequential, node=None)
        assert check_result(opt_report, bad)

    def test_zero_nodes_flagged(self, opt_report):
        bad = clone(opt_report.sequential, nodes=0)
        assert any("node count 0" in i for i in check_result(opt_report, bad))

    def test_overcount_without_reassignment_flagged(self, opt_report):
        bad = clone(opt_report.sequential, nodes=opt_report.tree_nodes + 1)
        assert any("double-processing" in i for i in check_result(opt_report, bad))

    def test_overcount_with_reassignment_tolerated(self, opt_report):
        redone = clone(
            opt_report.sequential, nodes=opt_report.tree_nodes + 1, reassigned=1
        )
        assert check_result(opt_report, redone) == []

    def test_decision_found_disagreement_flagged(self, dec_report):
        flipped = clone(
            dec_report.sequential, found=not dec_report.sequential.found
        )
        assert any("found" in i for i in check_result(dec_report, flipped))

    def test_kind_mismatch_flagged(self, opt_report):
        bad = clone(opt_report.sequential, kind="decision")
        issues = check_result(opt_report, bad)
        assert len(issues) == 1 and "kind" in issues[0]

    def test_enumeration_undercount_flagged(self):
        report = build_report(Instance("uts", (2, 3, 7)))
        bad = clone(report.sequential, nodes=report.tree_nodes - 1)
        assert any("expected exactly" in i for i in check_result(report, bad))
