"""Coordinator protocol-level tests, driven by scripted fake workers.

A :class:`FakeWorker` speaks the raw wire protocol over a real TCP
connection, so every lease/epoch/rebroadcast decision the coordinator
makes is observable deterministically — no real search involved.
"""

import socket
import threading
import time
from collections import deque

import pytest

from repro.cluster import protocol as P
from repro.cluster.coordinator import (
    ClusterHandle,
    ClusterJobFailed,
    ClusterJobTimeout,
)

ENUM_PAYLOAD = {
    "factory": "repro.instances.library:library_spec_factory",
    "factory_args": ["uts-geo-med"],
    "stype_kind": "enumeration",
    "stype_kwargs": {},
    "budget": 1000,
    "share_poll": 64,
}

OPT_PAYLOAD = {
    "factory": "repro.instances.library:library_spec_factory",
    "factory_args": ["brock90-1"],
    "stype_kind": "optimisation",
    "stype_kwargs": {},
    "budget": 1000,
    "share_poll": 64,
}


class FakeWorker:
    """A hand-driven protocol peer: HELLOs, heartbeats, scripted frames.

    By default it offers no ``codecs`` in HELLO, so the coordinator
    negotiates JSON for it; pass ``codecs=["binary", "json"]`` to get
    binary frames back (reads auto-detect either way).  A v2
    coordinator sends batched TASK frames — ``recv`` decomposes each
    ``leases`` batch into the classic single-lease shape so scripted
    tests keep addressing one task at a time; ``recv_raw`` returns
    frames as they actually arrived.
    """

    def __init__(self, host, port, name="fake", slots=1, codecs=None,
                 version=None):
        self.sock = socket.create_connection((host, port), timeout=5.0)
        self.sock.settimeout(5.0)
        self._lock = threading.Lock()
        self._beating = threading.Event()
        self._beating.set()
        self._closed = threading.Event()
        self._pending = deque()
        self._send_codec = None
        hello = {"type": P.HELLO,
                 "version": P.PROTOCOL_VERSION if version is None else version,
                 "name": name, "slots": slots}
        if codecs is not None:
            hello["codecs"] = codecs
        self.send(hello)
        welcome = P.read_frame(self.sock)
        assert welcome["type"] == P.WELCOME
        self.id = welcome["worker"]
        self.codec = welcome.get("codec")
        if self.codec is not None:
            self._send_codec = P.get_codec(self.codec)
        self._hb = threading.Thread(target=self._beat, daemon=True)
        self._hb.start()

    def _beat(self):
        while not self._closed.wait(0.1):
            if not self._beating.is_set():
                continue
            try:
                self.send({"type": P.HEARTBEAT})
            except OSError:
                return

    def send(self, msg):
        with self._lock:
            self.sock.sendall(P.frame_bytes(msg, self._send_codec))

    @staticmethod
    def _decompose(msg):
        """A batched TASK frame becomes one pseudo-frame per lease.

        Ordered leases carry a 5th ``bound`` element; it is surfaced on
        the pseudo-frame the same way the real worker reads it.
        """
        if msg["type"] == P.TASK and "leases" in msg:
            pseudo = []
            for lease in msg["leases"]:
                tid, epoch, node, depth = lease[:4]
                frame = {"type": P.TASK, "job": msg["job"], "task": tid,
                         "epoch": epoch, "node": node, "depth": depth}
                if len(lease) > 4:
                    frame["bound"] = lease[4]
                pseudo.append(frame)
            return pseudo
        return [msg]

    def recv_raw(self, want_type, timeout=5.0):
        """Next frame of ``want_type`` exactly as it arrived (batched
        TASK frames are NOT decomposed; other types are skipped)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise AssertionError(f"no {want_type} frame within {timeout}s")
            self.sock.settimeout(remaining)
            msg = P.read_frame(self.sock)
            if msg is None:
                raise AssertionError(f"EOF while waiting for {want_type}")
            if msg["type"] == want_type:
                return msg

    def recv(self, want_type, timeout=5.0):
        """Next frame of ``want_type`` (other types are skipped)."""
        deadline = time.monotonic() + timeout
        while True:
            while self._pending:
                msg = self._pending.popleft()
                if msg["type"] == want_type:
                    return msg
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise AssertionError(f"no {want_type} frame within {timeout}s")
            self.sock.settimeout(remaining)
            msg = P.read_frame(self.sock)
            if msg is None:
                raise AssertionError(f"EOF while waiting for {want_type}")
            self._pending.extend(self._decompose(msg))

    def assert_no_frame(self, want_type, within=0.4):
        """Fail if a ``want_type`` frame arrives within the window."""
        while self._pending:
            msg = self._pending.popleft()
            if msg["type"] == want_type:
                raise AssertionError(f"unexpected {want_type}: {msg}")
        deadline = time.monotonic() + within
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            self.sock.settimeout(remaining)
            try:
                msg = P.read_frame(self.sock)
            except (TimeoutError, socket.timeout):
                return
            if msg is None:
                return
            for piece in self._decompose(msg):
                if piece["type"] == want_type:
                    raise AssertionError(f"unexpected {want_type}: {piece}")

    def stop_heartbeat(self):
        self._beating.clear()

    def close(self):
        self._closed.set()
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture
def handle():
    h = ClusterHandle(heartbeat_interval=0.1, heartbeat_timeout=0.6)
    h.start()
    yield h
    h.shutdown(drain_workers=False)


def result_frame(task_msg, *, knowledge=None, value=None, node=None, **extra):
    """A minimal RESULT frame answering a TASK lease."""
    msg = {
        "type": P.RESULT,
        "job": task_msg["job"],
        "task": task_msg["task"],
        "epoch": task_msg["epoch"],
        "nodes": 5,
        "prunes": 0,
        "backtracks": 4,
        "max_depth": 2,
        "goal": False,
    }
    if knowledge is not None:
        msg["knowledge"] = knowledge
    if value is not None:
        msg["value"] = value
        msg["node"] = P.encode_node(node)
    msg.update(extra)
    return msg


class TestLeasing:
    def test_job_and_root_task_reach_worker(self, handle):
        w = FakeWorker(*handle.address)
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            job = w.recv(P.JOB)
            assert job["factory"] == ENUM_PAYLOAD["factory"]
            task = w.recv(P.TASK)
            assert task["epoch"] == 0
            assert task["depth"] == 0
            w.send(result_frame(task, knowledge=17))
            res = fut.result(timeout=10)
            assert res.value == 17
            assert res.metrics.nodes == 5
            assert res.workers == 1
        finally:
            w.close()

    def test_late_joiner_receives_active_job(self, handle):
        w1 = FakeWorker(*handle.address, name="first")
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            task = w1.recv(P.TASK)
            # A worker joining mid-job is sent the JOB immediately.
            w2 = FakeWorker(*handle.address, name="late")
            try:
                assert w2.recv(P.JOB)["job"] == task["job"]
            finally:
                w2.close()
            w1.send(result_frame(task, knowledge=1))
            fut.result(timeout=10)
        finally:
            w1.close()

    def test_offcut_fans_out_to_other_workers(self, handle):
        w1 = FakeWorker(*handle.address, name="w1")
        w2 = FakeWorker(*handle.address, name="w2")
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            task = w1.recv(P.TASK)
            w1.send({
                "type": P.OFFCUT,
                "job": task["job"],
                "task": task["task"],
                "epoch": task["epoch"],
                "depth": 3,
                "nodes": [P.encode_node((1, 2)), P.encode_node((3, 4))],
            })
            # One offcut should be leased to the idle w2 (w1 still holds
            # its root lease; slots=1).
            t2 = w2.recv(P.TASK)
            assert t2["depth"] == 3
            assert P.decode_node(t2["node"]) in ((1, 2), (3, 4))
            w1.send(result_frame(task, knowledge=1))
            # After w1's RESULT frees its slot, the second offcut lands.
            t3 = w1.recv(P.TASK)
            w1.send(result_frame(t3, knowledge=10))
            w2.send(result_frame(t2, knowledge=100))
            res = fut.result(timeout=10)
            assert res.value == 111  # all three accumulators combined
            assert res.metrics.spawns == 2
            assert res.workers == 2
        finally:
            w1.close()
            w2.close()


class TestEpochs:
    def test_stale_frames_are_dropped(self, handle):
        w = FakeWorker(*handle.address)
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            task = w.recv(P.TASK)
            # Stale OFFCUT: wrong epoch.  If accepted it would bump the
            # outstanding counter and the job below could never finish.
            w.send({
                "type": P.OFFCUT,
                "job": task["job"],
                "task": task["task"],
                "epoch": task["epoch"] + 7,
                "depth": 1,
                "nodes": [P.encode_node((9,))],
            })
            # Stale RESULT: wrong epoch.  If accepted the job would
            # complete with the wrong accumulator.
            w.send(result_frame(task, knowledge=999, epoch=task["epoch"] + 7))
            assert not fut.done()
            # The correctly-epoched RESULT completes the job; its being
            # the completion proves both stale frames were dropped.
            w.send(result_frame(task, knowledge=5))
            res = fut.result(timeout=10)
            assert res.value == 5
        finally:
            w.close()

    def test_dead_worker_task_reassigned_with_bumped_epoch(self, handle):
        # Optimisation payload: re-running a dead worker's subtree is
        # idempotent under max-merge (enumeration instead fails loudly,
        # tested below).
        w1 = FakeWorker(*handle.address, name="doomed")
        w2 = FakeWorker(*handle.address, name="survivor")
        try:
            fut = handle.run_job_future(OPT_PAYLOAD, timeout=15)
            task1 = w1.recv(P.TASK)
            assert task1["epoch"] == 0
            w1.stop_heartbeat()  # silence -> watchdog declares w1 dead
            task2 = w2.recv(P.TASK, timeout=5.0)
            assert task2["task"] == task1["task"]
            assert task2["epoch"] == 1  # re-lease under a fresh epoch
            w2.send(result_frame(task2, value=9, node=("n9",)))
            res = fut.result(timeout=10)
            assert res.value == 9
            assert res.node == ("n9",)
            assert res.metrics.reassigned == 1
            assert res.workers == 1  # only the survivor contributed
        finally:
            w1.close()
            w2.close()

    def test_enumeration_job_fails_loudly_on_worker_death(self, handle):
        # An enumeration task's partial accumulator dies with its
        # worker; completing anyway would silently miscount.
        w = FakeWorker(*handle.address)
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=15)
            w.recv(P.TASK)
            w.stop_heartbeat()
            with pytest.raises(ClusterJobFailed, match="enumeration"):
                fut.result(timeout=10)
        finally:
            w.close()


class TestIncumbent:
    def test_only_strict_improvements_rebroadcast(self, handle):
        w1 = FakeWorker(*handle.address, name="finder")
        w2 = FakeWorker(*handle.address, name="listener")
        try:
            fut = handle.run_job_future(OPT_PAYLOAD, timeout=15)
            task = w1.recv(P.TASK)
            job_id = task["job"]

            def publish(value):
                w1.send({
                    "type": P.INCUMBENT,
                    "job": job_id,
                    "value": value,
                    "node": P.encode_node((value,)),
                })

            publish(5)
            assert w2.recv(P.INCUMBENT)["value"] == 5
            publish(5)  # tie: no rebroadcast
            publish(4)  # regression: no rebroadcast
            w2.assert_no_frame(P.INCUMBENT, within=0.4)
            publish(6)  # strict improvement again
            assert w2.recv(P.INCUMBENT)["value"] == 6
            w1.send(result_frame(task, value=6, node=(6,)))
            res = fut.result(timeout=10)
            assert res.value == 6
            assert res.node == (6,)
            assert res.metrics.broadcasts == 2
        finally:
            w1.close()
            w2.close()

    def test_witness_survives_publisher_death(self, handle):
        # The witness travels with the INCUMBENT publish, so the best
        # value keeps its witness even if the finder dies before its
        # RESULT and the re-run prunes the witness subtree away.
        w1 = FakeWorker(*handle.address, name="finder")
        w2 = FakeWorker(*handle.address, name="survivor")
        try:
            fut = handle.run_job_future(OPT_PAYLOAD, timeout=15)
            task1 = w1.recv(P.TASK)
            w1.send({
                "type": P.INCUMBENT,
                "job": task1["job"],
                "value": 50,
                "node": P.encode_node(("witness-50",)),
            })
            w2.recv(P.INCUMBENT)  # broadcast seen cluster-wide
            w1.stop_heartbeat()  # finder dies before sending RESULT
            task2 = w2.recv(P.TASK, timeout=5.0)
            assert task2["epoch"] == 1
            # The re-run prunes everything (stale bound 50): its RESULT
            # carries no witness at all.
            w2.send(result_frame(task2))
            res = fut.result(timeout=10)
            assert res.value == 50
            assert res.node == ("witness-50",)
            assert res.metrics.reassigned == 1
        finally:
            w1.close()
            w2.close()


def offcut_frame(task_msg, nodes, depth=3):
    """An OFFCUT frame splitting ``nodes`` off a held lease."""
    return {
        "type": P.OFFCUT,
        "job": task_msg["job"],
        "task": task_msg["task"],
        "epoch": task_msg["epoch"],
        "depth": depth,
        "nodes": [P.encode_node(n) for n in nodes],
    }


def lease_to_task(raw, lease):
    """One ``[id, epoch, node, depth]`` entry as a classic TASK dict."""
    task_id, epoch, node, depth = lease
    return {"type": P.TASK, "job": raw["job"], "task": task_id,
            "epoch": epoch, "node": node, "depth": depth}


class TestBatching:
    def test_offcut_batch_leased_in_one_frame(self, handle):
        # A v2 worker with free slots gets all its grants in a single
        # TASK frame, not one frame per lease.
        w = FakeWorker(*handle.address, slots=3)
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            root = w.recv(P.TASK)
            w.send(offcut_frame(root, [(1, 2), (3, 4)]))
            raw = w.recv_raw(P.TASK)
            assert len(raw["leases"]) == 2
            w.send(result_frame(root, knowledge=1))
            for lease in raw["leases"]:
                w.send(result_frame(lease_to_task(raw, lease), knowledge=10))
            res = fut.result(timeout=10)
            assert res.value == 21
            assert res.metrics.spawns == 2
        finally:
            w.close()

    def test_round_robin_spreads_leases_across_workers(self, handle):
        # Grants rotate one-lease-per-worker-per-pass, so a burst of
        # offcuts cannot all pile onto whichever worker is checked
        # first — that hoarding is what flattens search-order anomalies.
        w1 = FakeWorker(*handle.address, name="w1", slots=2)
        w2 = FakeWorker(*handle.address, name="w2", slots=2)
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            root = w1.recv(P.TASK)
            # w1 holds the root (1 free slot), w2 is idle (2 free).
            w1.send(offcut_frame(root, [(1,), (2,), (3,), (4,)]))
            raw1 = w1.recv_raw(P.TASK)
            raw2 = w2.recv_raw(P.TASK)
            assert len(raw1["leases"]) == 1
            assert len(raw2["leases"]) == 2
            # Completing the root frees w1's slot: the queued 4th offcut
            # lands there.
            w1.send(result_frame(root, knowledge=1))
            raw3 = w1.recv_raw(P.TASK)
            assert len(raw3["leases"]) == 1
            for raw, worker, value in ((raw1, w1, 10), (raw2, w2, 100),
                                       (raw3, w1, 10000)):
                for lease in raw["leases"]:
                    worker.send(
                        result_frame(lease_to_task(raw, lease), knowledge=value)
                    )
            res = fut.result(timeout=10)
            assert res.value == 1 + 10 + 100 + 100 + 10000
            assert res.metrics.spawns == 4
            assert res.workers == 2
        finally:
            w1.close()
            w2.close()

    def test_v1_worker_receives_single_lease_frames(self, handle):
        # A v1 peer predates ``leases``: every grant must arrive as its
        # own classic single-lease frame, and the codec must be JSON.
        w = FakeWorker(*handle.address, version=1, slots=2)
        try:
            assert w.codec in (None, "json")
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            root = w.recv_raw(P.TASK)
            assert "leases" not in root
            assert root["epoch"] == 0
            w.send(offcut_frame(root, [(1,), (2,)]))
            t2 = w.recv_raw(P.TASK)
            assert "leases" not in t2
            w.send(result_frame(root, knowledge=1))
            t3 = w.recv_raw(P.TASK)
            assert "leases" not in t3
            for t, value in ((t2, 10), (t3, 100)):
                w.send(result_frame(t, knowledge=value))
            res = fut.result(timeout=10)
            assert res.value == 111
        finally:
            w.close()

    def test_binary_codec_negotiated_end_to_end(self, handle):
        w = FakeWorker(*handle.address, codecs=["binary", "json"])
        try:
            assert w.codec == "binary"
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            task = w.recv(P.TASK)
            w.send(result_frame(task, knowledge=17))
            assert fut.result(timeout=10).value == 17
        finally:
            w.close()

    def test_mixed_codec_workers_share_one_job(self, handle):
        # Negotiation is per-connection: a JSON worker and a binary
        # worker exchange offcuts through the same coordinator.
        w1 = FakeWorker(*handle.address, name="legacy")
        w2 = FakeWorker(*handle.address, name="modern",
                        codecs=["binary", "json"])
        try:
            assert w1.codec == "json" and w2.codec == "binary"
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            root = w1.recv(P.TASK)
            w1.send(offcut_frame(root, [(7, 7)]))
            t2 = w2.recv(P.TASK)
            assert P.decode_node(t2["node"]) == (7, 7)
            w1.send(result_frame(root, knowledge=1))
            w2.send(result_frame(t2, knowledge=10))
            res = fut.result(timeout=10)
            assert res.value == 11
            assert res.workers == 2
        finally:
            w1.close()
            w2.close()

    def test_batched_release_requeues_under_bumped_epoch(self, handle):
        # A RELEASE frame hands several unstarted leases back at once;
        # each re-queues under epoch+1 so anything else the releasing
        # worker says about them is stale by construction.
        w = FakeWorker(*handle.address, slots=3)
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=10)
            root = w.recv(P.TASK)
            w.send(offcut_frame(root, [(1,), (2,)]))
            raw = w.recv_raw(P.TASK)
            assert len(raw["leases"]) == 2
            w.send({
                "type": P.RELEASE,
                "job": raw["job"],
                "tasks": [[lease[0], lease[1]] for lease in raw["leases"]],
            })
            # Both come back in a fresh batch with bumped epochs.
            raw2 = w.recv_raw(P.TASK)
            assert len(raw2["leases"]) == 2
            assert sorted(l[0] for l in raw2["leases"]) == \
                sorted(l[0] for l in raw["leases"])
            assert all(l[1] == 1 for l in raw2["leases"])
            w.send(result_frame(root, knowledge=1))
            for lease in raw2["leases"]:
                w.send(result_frame(lease_to_task(raw2, lease), knowledge=10))
            res = fut.result(timeout=10)
            assert res.value == 21
        finally:
            w.close()


class TestTimeout:
    def test_job_timeout_raises_and_notifies_workers(self, handle):
        w = FakeWorker(*handle.address)
        try:
            fut = handle.run_job_future(ENUM_PAYLOAD, timeout=0.5)
            task = w.recv(P.TASK)
            with pytest.raises(ClusterJobTimeout):
                fut.result(timeout=10)
            done = w.recv(P.JOB_DONE)
            assert done["job"] == task["job"]
        finally:
            w.close()
