"""Tests for Numerical Semigroups enumeration (A007323)."""

import pytest

from repro.apps.semigroups import (
    GENUS_COUNTS,
    SemigroupInstance,
    minimal_generators,
    semigroups_spec,
)
from repro.core.searchtypes import Enumeration
from repro.core.sequential import sequential_search
from repro.util.bitset import bit_indices, mask_below


def count_genus(g: int) -> int:
    inst = SemigroupInstance(max_genus=g)
    spec = semigroups_spec(inst, count_genus=g)
    return sequential_search(spec, Enumeration()).value


class TestMinimalGenerators:
    def test_naturals_generated_by_one(self):
        mask = mask_below(20)
        assert minimal_generators(mask, 19) == [1]

    def test_even_numbers_and_three(self):
        # S = <2, 3> = {0, 2, 3, 4, ...}: generators are 2 and 3.
        limit = 15
        mask = mask_below(limit + 1) & ~0b10  # remove 1
        assert minimal_generators(mask, limit) == [2, 3]

    def test_multiples_of_three_shifted(self):
        # S = <3, 5, 7> = {0,3,5,6,7,8,...}
        elements = {0, 3, 5, 6, 7} | set(range(8, 16))
        mask = sum(1 << e for e in elements)
        assert minimal_generators(mask, 15) == [3, 5, 7]

    def test_generator_not_sum_of_two_elements(self):
        mask = mask_below(16) & ~0b10  # N minus {1}
        for g in minimal_generators(mask, 15):
            nonzero = [e for e in bit_indices(mask) if e > 0]
            for a in nonzero:
                for b in nonzero:
                    assert a + b != g


class TestTreeStructure:
    def test_root_is_naturals(self):
        inst = SemigroupInstance(max_genus=3)
        spec = semigroups_spec(inst)
        assert spec.root.genus == 0
        assert spec.root.frobenius == -1

    def test_root_has_single_child(self):
        # The paper singles NS out: the tree is very narrow at the root.
        inst = SemigroupInstance(max_genus=3)
        spec = semigroups_spec(inst)
        kids = list(spec.children_of(spec.root))
        assert len(kids) == 1
        assert kids[0].frobenius == 1

    def test_children_increase_genus_by_one(self):
        inst = SemigroupInstance(max_genus=4)
        spec = semigroups_spec(inst)
        stack = [spec.root]
        while stack:
            node = stack.pop()
            for child in spec.children_of(node):
                assert child.genus == node.genus + 1
                assert child.frobenius > node.frobenius
                stack.append(child)

    def test_enumeration_stops_at_max_genus(self):
        inst = SemigroupInstance(max_genus=2)
        spec = semigroups_spec(inst)
        stack = [spec.root]
        while stack:
            node = stack.pop()
            kids = list(spec.children_of(node))
            if node.genus == 2:
                assert kids == []
            stack.extend(kids)


class TestGenusCounts:
    @pytest.mark.parametrize("genus", range(0, 13))
    def test_matches_oeis(self, genus):
        assert count_genus(genus) == GENUS_COUNTS[genus]

    def test_total_tree_size_is_partial_sum(self):
        inst = SemigroupInstance(max_genus=8)
        spec = semigroups_spec(inst)
        total = sequential_search(spec, Enumeration()).value
        assert total == sum(GENUS_COUNTS[: 8 + 1])

    def test_count_genus_validation(self):
        inst = SemigroupInstance(max_genus=3)
        with pytest.raises(ValueError):
            semigroups_spec(inst, count_genus=5)

    def test_negative_genus_rejected(self):
        with pytest.raises(ValueError):
            SemigroupInstance(max_genus=-1)
