"""The self-gate: the repo's own source must analyze clean.

This is the tier-1 mirror of the CI ``analyze`` job — if a PR
introduces an unsuppressed finding, this test fails locally before CI
ever sees it.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRepoIsClean:
    def test_src_repro_has_no_unsuppressed_errors(self):
        report = analyze_paths(REPO_ROOT)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.errors == 0, (
            "repro analyze found unsuppressed errors — fix them or add"
            " an inline '# repro: allow[rule] -- reason':\n" + rendered
        )

    def test_no_stale_suppressions(self):
        report = analyze_paths(REPO_ROOT)
        stale = [
            f for f in report.findings if f.rule == "suppression-hygiene"
        ]
        assert stale == [], "\n".join(f.render() for f in stale)

    def test_analysis_covers_the_whole_package(self):
        report = analyze_paths(REPO_ROOT)
        # 90+ modules today; a collapse to a handful means discovery
        # broke, not that the code shrank.
        assert report.files >= 60
        assert set(report.rules) == {
            "lock-discipline",
            "async-blocking",
            "protocol-exhaustiveness",
            "factory-imports",
            "thread-call-safety",
        }
