"""Real distributed search over TCP (coordinator/worker runtime).

The paper's headline evaluation is distributed-memory scaling — k-clique
refutations across 17 localities (Fig. 4) on HPX.  This package is the
repository's real-network counterpart to that substrate: a socket-based
multi-node runtime executing the Budget, Stack-Stealing and Ordered
coordinations, where work and knowledge move over a wire instead of a
simulated network or shared memory.

- :mod:`repro.cluster.protocol` — the length-prefixed wire protocol
  (HELLO/TASK/OFFCUT/INCUMBENT/RESULT/HEARTBEAT/SHUTDOWN …) and the
  node/spec transport codecs; frame bodies are JSON or the compact
  binary format of :mod:`repro.cluster.codec`, negotiated per
  connection in HELLO/WELCOME.
- :mod:`repro.cluster.coordinator` — the coordinator: an asyncio accept
  loop owning the global task queue and incumbent, outstanding-task
  accounting for distributed termination detection, heartbeat-timeout
  fault tolerance with task re-lease (epochs prevent double counting),
  and best-first incumbent merge that rebroadcasts only strict
  improvements.
- :mod:`repro.cluster.worker` — worker nodes: the PR-2 fast-path search
  loop wrapped in a TCP client with reconnect-with-backoff and graceful
  drain on SHUTDOWN; ``run_worker`` optionally fans out to several
  local worker processes.
- :mod:`repro.cluster.local` — ``cluster_search``: spin up an embedded
  coordinator plus N localhost worker processes for one search under
  any cluster coordination (the ``backend="cluster"`` skeleton route
  and the benchmark driver).
- :mod:`repro.cluster.backend` — :class:`ClusterBackend`, the service
  :class:`~repro.service.scheduler.Backend` that dispatches scheduler
  jobs cluster-wide (``repro serve --backend cluster``).

Staleness stays correctness-safe exactly as in the simulator and the
multiprocessing backend (§4.3): a worker holding an out-of-date
incumbent only prunes less, never wrongly, because bounds are monotone
and the final answer is max-merged from per-task results.

Quick start (three shells)::

    repro cluster-worker --connect 127.0.0.1:7031          # twice
    repro cluster-coordinator --listen 127.0.0.1:7031 \\
        --jobfile jobs.jsonl --min-workers 2

or self-contained in one process tree::

    repro maxclique --instance brock100-1 --skeleton budget \\
        --backend cluster --cluster-workers 4

See docs/cluster.md for the protocol, termination detection and the
failure model.
"""

from repro.cluster.backend import ClusterBackend
from repro.cluster.coordinator import ClusterHandle, Coordinator
from repro.cluster.local import (
    cluster_budget_search,
    cluster_search,
    run_with_cluster,
)
from repro.cluster.worker import ClusterWorker, run_worker

__all__ = [
    "Coordinator",
    "ClusterHandle",
    "ClusterWorker",
    "run_worker",
    "cluster_search",
    "cluster_budget_search",
    "run_with_cluster",
    "ClusterBackend",
]
