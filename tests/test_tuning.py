"""Tests for the simulated tuning sweep (§5.5 tooling)."""

import pytest

from repro.core.searchtypes import Enumeration, Optimisation
from repro.tuning import tune

from tests.conftest import make_toy_spec


def wide_spec(width=5, depth=4):
    children = {}
    values = {"root": 1}

    def grow(name, d):
        if d == depth:
            return
        kids = [f"{name}/{i}" for i in range(width)]
        children[name] = kids
        for k in kids:
            values[k] = 1
            grow(k, d + 1)

    grow("root", 0)
    return make_toy_spec(children, values, with_bound=False)


@pytest.fixture(scope="module")
def report():
    return tune(
        wide_spec(),
        Enumeration(),
        localities=1,
        workers_per_locality=4,
        d_cutoffs=(1, 2),
        budgets=(5, 50),
    )


class TestTune:
    def test_sweep_covers_all_points(self, report):
        # depthbounded x2 + stacksteal x2 + budget x2
        assert len(report.results) == 6
        assert {r.skeleton for r in report.results} == {
            "depthbounded",
            "stacksteal",
            "budget",
        }

    def test_best_is_max_speedup(self, report):
        assert report.best.speedup == max(r.speedup for r in report.results)

    def test_best_for_skeleton(self, report):
        best_db = report.best_for("depthbounded")
        assert best_db.skeleton == "depthbounded"
        assert best_db.speedup >= min(
            r.speedup for r in report.results if r.skeleton == "depthbounded"
        )

    def test_best_for_unknown_skeleton(self, report):
        with pytest.raises(ValueError):
            report.best_for("ordered")

    def test_ranked_descending(self, report):
        speeds = [r.speedup for r in report.ranked()]
        assert speeds == sorted(speeds, reverse=True)

    def test_render(self, report):
        text = report.render()
        assert "recommendation:" in text
        assert "speedup" in text

    def test_parallel_gains_on_regular_tree(self, report):
        # A regular 5^4 tree on 4 workers must show real speedup for at
        # least one configuration.
        assert report.best.speedup > 2.0

    def test_sequential_not_tunable(self):
        with pytest.raises(ValueError):
            tune(wide_spec(), Enumeration(), skeletons=("sequential",))

    def test_unknown_skeleton_rejected(self):
        with pytest.raises(ValueError):
            tune(wide_spec(), Enumeration(), skeletons=("bestfirst",))

    def test_extension_skeletons_tunable(self):
        report = tune(
            wide_spec(width=4, depth=3),
            Enumeration(),
            localities=1,
            workers_per_locality=3,
            skeletons=("ordered", "random"),
            d_cutoffs=(1,),
            spawn_probabilities=(0.1,),
        )
        assert {r.skeleton for r in report.results} == {"ordered", "random"}

    def test_optimisation_tuning(self):
        from repro.apps.maxclique import maxclique_spec
        from repro.instances.graphs import uniform_graph

        report = tune(
            maxclique_spec(uniform_graph(30, 0.5, seed=7)),
            Optimisation(),
            localities=1,
            workers_per_locality=4,
            d_cutoffs=(1, 2),
            budgets=(10,),
        )
        assert report.best.speedup > 0
        # determinism: same sweep, same report
        again = tune(
            maxclique_spec(uniform_graph(30, 0.5, seed=7)),
            Optimisation(),
            localities=1,
            workers_per_locality=4,
            d_cutoffs=(1, 2),
            budgets=(10,),
        )
        assert [r.speedup for r in report.ranked()] == [
            r.speedup for r in again.ranked()
        ]

    def test_empty_report_best_raises(self):
        from repro.tuning import TuningReport

        with pytest.raises(ValueError):
            TuningReport("x", 1, 1.0).best
