"""Tests for the resumable SearchTask state machines (every coordination)."""

import pytest

from repro.core.params import SkeletonParams
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.tasks import BUDGET, DEPTH, SEQ, STACK, SearchTask

from .conftest import make_toy_spec


def run_to_completion(task, stype, spec, knowledge=None):
    """Drive a task and any tasks it spawns, sequentially; return
    (knowledge, processed_nodes, spawn_events)."""
    if knowledge is None:
        knowledge = stype.initial_knowledge(spec)
    processed = 0
    spawned_all = []
    queue = [task]
    while queue:
        t = queue.pop(0)
        while not t.finished:
            knowledge, out = t.step(knowledge)
            processed += int(out.processed)
            for sp in out.spawned:
                spawned_all.append(sp)
                queue.append(
                    SearchTask(
                        spec,
                        stype,
                        sp.root,
                        policy=t.policy,
                        params=t.params,
                        root_depth=sp.depth,
                    )
                )
            if out.goal:
                return knowledge, processed, spawned_all
    return knowledge, processed, spawned_all


class TestSequentialPolicy:
    def test_explores_whole_tree(self, toy_spec_unbounded):
        stype = Enumeration()
        task = SearchTask(toy_spec_unbounded, stype, toy_spec_unbounded.root)
        k, processed, spawned = run_to_completion(task, stype, toy_spec_unbounded)
        assert processed == 4
        assert spawned == []

    def test_optimisation_finds_max(self, toy_spec):
        stype = Optimisation()
        task = SearchTask(toy_spec, stype, toy_spec.root)
        k, _, _ = run_to_completion(task, stype, toy_spec)
        assert k.value == 7
        assert k.node == "ca"

    def test_pruning_skips_dominated_subtrees(self, toy_spec):
        # Visiting order root,a,...: once incumbent reaches 7 (node ca),
        # nothing else is expanded below pruned nodes.  With bound = exact
        # subtree max, "a" is expanded only while incumbent < 3.
        stype = Optimisation()
        task = SearchTask(toy_spec, stype, toy_spec.root)
        k, processed, _ = run_to_completion(task, stype, toy_spec)
        assert k.value == 7
        assert processed <= 8  # never more than the whole tree

    def test_unknown_policy_rejected(self, toy_spec):
        with pytest.raises(ValueError):
            SearchTask(toy_spec, Enumeration(), toy_spec.root, policy="magic")

    def test_step_after_finish_is_stable(self, toy_spec_unbounded):
        stype = Enumeration()
        task = SearchTask(toy_spec_unbounded, stype, toy_spec_unbounded.root)
        k = stype.initial_knowledge(toy_spec_unbounded)
        while not task.finished:
            k, _ = task.step(k)
        k2, out = task.step(k)
        assert out.finished and k2 == k


class TestGoalShortCircuit:
    def test_goal_detected_on_processing(self, toy_spec):
        stype = Decision(target=5)
        task = SearchTask(toy_spec, stype, toy_spec.root)
        k, processed, _ = run_to_completion(task, stype, toy_spec)
        assert k.value == 5
        # Sequential order: root, a, aa, ab, b -> goal at "b"; the "c"
        # branch (which could also reach 5 via clipping 7) is never needed.
        assert processed <= 5

    def test_goal_at_root(self, toy_spec):
        stype = Decision(target=0)
        task = SearchTask(toy_spec, stype, toy_spec.root)
        k, out = task.step(stype.initial_knowledge(toy_spec))
        assert out.goal and out.finished

    def test_root_prune_kills_task(self, toy_spec):
        # A task whose root bound cannot beat the incumbent dies at start.
        stype = Optimisation()
        task = SearchTask(toy_spec, stype, "a")  # subtree max = 3
        from repro.core.searchtypes import Incumbent

        k, out = task.step(Incumbent(7, "ca"))
        assert out.pruned and out.finished


class TestDepthBoundedPolicy:
    def _spawning_spec(self):
        children = {"root": ["a", "b"], "a": ["aa", "ab"], "b": ["ba"]}
        values = {n: 1 for n in ["root", "a", "b", "aa", "ab", "ba"]}
        return make_toy_spec(children, values, with_bound=False)

    def test_spawns_children_above_cutoff(self):
        spec = self._spawning_spec()
        stype = Enumeration()
        params = SkeletonParams(d_cutoff=1)
        task = SearchTask(spec, stype, spec.root, policy=DEPTH, params=params)
        k = stype.initial_knowledge(spec)
        spawned = []
        while not task.finished:
            k, out = task.step(k)
            spawned.extend(out.spawned)
        assert [sp.root for sp in spawned] == ["a", "b"]
        assert all(sp.depth == 1 for sp in spawned)
        assert k == 1  # only the root was processed locally

    def test_spawned_tasks_respect_global_depth(self):
        spec = self._spawning_spec()
        stype = Enumeration()
        params = SkeletonParams(d_cutoff=2)
        task = SearchTask(
            spec, stype, "a", policy=DEPTH, params=params, root_depth=1
        )
        k = stype.initial_knowledge(spec)
        spawned = []
        while not task.finished:
            k, out = task.step(k)
            spawned.extend(out.spawned)
        # node "a" is at global depth 1 < 2, so its children spawn
        assert [sp.root for sp in spawned] == ["aa", "ab"]
        assert all(sp.depth == 2 for sp in spawned)

    def test_total_work_conserved(self):
        spec = self._spawning_spec()
        stype = Enumeration()
        params = SkeletonParams(d_cutoff=2)
        task = SearchTask(spec, stype, spec.root, policy=DEPTH, params=params)
        k, processed, _ = run_to_completion(task, stype, spec)
        assert k == 6  # every node counted exactly once across tasks
        assert processed == 6

    def test_cutoff_zero_never_spawns(self):
        spec = self._spawning_spec()
        stype = Enumeration()
        params = SkeletonParams(d_cutoff=0)
        task = SearchTask(spec, stype, spec.root, policy=DEPTH, params=params)
        k, processed, spawned = run_to_completion(task, stype, spec)
        assert spawned == []
        assert k == 6


class TestBudgetPolicy:
    def _deep_spec(self):
        # A left spine with right leaves: backtracks accumulate quickly.
        children = {
            "root": ["l1", "r1"],
            "l1": ["l2", "r2"],
            "l2": ["l3", "r3"],
            "l3": ["l4"],
        }
        nodes = ["root", "l1", "r1", "l2", "r2", "l3", "r3", "l4"]
        return make_toy_spec(children, {n: 1 for n in nodes}, with_bound=False)

    def test_budget_spawns_lowest_and_resets(self):
        spec = self._deep_spec()
        stype = Enumeration()
        params = SkeletonParams(budget=2)
        task = SearchTask(spec, stype, spec.root, policy=BUDGET, params=params)
        k = stype.initial_knowledge(spec)
        spawned = []
        while not task.finished:
            before = task.backtracks
            k, out = task.step(k)
            if out.spawned:
                spawned.extend(out.spawned)
                assert before >= params.budget
                assert task.backtracks == 0
        assert spawned, "budget exhaustion must spawn work"

    def test_budget_conserves_total_count(self):
        spec = self._deep_spec()
        stype = Enumeration()
        params = SkeletonParams(budget=1)
        task = SearchTask(spec, stype, spec.root, policy=BUDGET, params=params)
        k, processed, _ = run_to_completion(task, stype, spec)
        assert k == 8

    def test_huge_budget_never_spawns(self):
        spec = self._deep_spec()
        stype = Enumeration()
        params = SkeletonParams(budget=10_000)
        task = SearchTask(spec, stype, spec.root, policy=BUDGET, params=params)
        _, _, spawned = run_to_completion(task, stype, spec)
        assert spawned == []


class TestStackStealSplit:
    def _spec(self):
        children = {"root": ["a", "b", "c"], "a": ["aa", "ab"]}
        nodes = ["root", "a", "b", "c", "aa", "ab"]
        return make_toy_spec(children, {n: 1 for n in nodes}, with_bound=False)

    def _started_task(self, spec, stype):
        task = SearchTask(spec, stype, spec.root, policy=STACK)
        k = stype.initial_knowledge(spec)
        k, _ = task.step(k)  # process root, push its generator
        k, _ = task.step(k)  # expand into "a"
        return task, k

    def test_split_one_takes_lowest_unexplored(self):
        spec = self._spec()
        task, _ = self._started_task(spec, Enumeration())
        stolen = task.try_split(chunked=False)
        assert [sp.root for sp in stolen] == ["b"]
        assert stolen[0].depth == 1

    def test_split_chunked_takes_whole_level(self):
        spec = self._spec()
        task, _ = self._started_task(spec, Enumeration())
        stolen = task.try_split(chunked=True)
        assert [sp.root for sp in stolen] == ["b", "c"]

    def test_split_before_start_gives_nothing(self):
        spec = self._spec()
        task = SearchTask(spec, Enumeration(), spec.root, policy=STACK)
        assert task.try_split(chunked=True) == []

    def test_split_conserves_total_work(self):
        spec = self._spec()
        stype = Enumeration()
        task, k = self._started_task(spec, stype)
        stolen = task.try_split(chunked=True)
        # finish the victim
        while not task.finished:
            k, out = task.step(k)
        # run the stolen subtrees
        for sp in stolen:
            t = SearchTask(spec, stype, sp.root, policy=STACK, root_depth=sp.depth)
            while not t.finished:
                k, out = t.step(k)
        assert k == 6

    def test_split_exhausted_task_gives_nothing(self):
        spec = self._spec()
        stype = Enumeration()
        task = SearchTask(spec, stype, "b", policy=STACK)  # leaf task
        k = stype.initial_knowledge(spec)
        k, _ = task.step(k)
        assert task.try_split(chunked=True) == []


class TestChainTreeBudgetRegression:
    """Chain-shaped trees through the fast-path budget loop.

    Before the degenerate-split fix, every budget trip on a chain
    drained the single remaining child into an offcut: the whole search
    ping-ponged through the work queue one node at a time (task count ~
    nodes/budget, a full OFFCUT/TASK round trip each on the cluster
    backend).  The fix keeps a lone no-deeper-work child local, so a
    chain runs as ONE task — with node counts identical to sequential.
    """

    @staticmethod
    def _drive_budget_fastpath(spec, budget):
        """Replica of the drivers' inlined budget loop (enumeration,
        no pruning): returns (processed_nodes, tasks_run)."""
        from repro.core.tasks import split_lowest_inlined

        pending = [spec.root]
        nodes = 0
        tasks = 0
        while pending:
            root = pending.pop(0)
            tasks += 1
            nodes += 1  # the task root itself
            stack = [spec.generator(spec.space, root)]
            task_nodes = 0
            while stack:
                gen = stack[-1]
                if gen.has_next():
                    child = gen.next()
                    nodes += 1
                    task_nodes += 1
                    stack.append(spec.generator(spec.space, child))
                else:
                    stack.pop()
                if task_nodes >= budget:
                    offcuts, _ = split_lowest_inlined(stack)
                    pending.extend(offcuts)
                    task_nodes = 0
        return nodes, tasks

    def _chain_spec(self, length):
        names = ["root"] + [f"c{i}" for i in range(1, length)]
        children = {a: [b] for a, b in zip(names, names[1:])}
        return make_toy_spec(children, {n: 1 for n in names}, with_bound=False)

    def test_chain_runs_as_one_task(self):
        from repro.core.searchtypes import Enumeration
        from repro.core.sequential import sequential_search

        spec = self._chain_spec(8)
        nodes, tasks = self._drive_budget_fastpath(spec, budget=1)
        assert tasks == 1  # was ~chain length before the fix
        seq = sequential_search(spec, Enumeration())
        assert nodes == seq.metrics.nodes == 8

    def test_branching_tree_still_splits(self):
        from repro.core.searchtypes import Enumeration
        from repro.core.sequential import sequential_search

        children = {
            "root": ["a", "b"],
            "a": ["aa", "ab"],
            "b": ["ba", "bb"],
        }
        names = ["root", "a", "b", "aa", "ab", "ba", "bb"]
        spec = make_toy_spec(children, {n: 1 for n in names}, with_bound=False)
        nodes, tasks = self._drive_budget_fastpath(spec, budget=1)
        assert tasks > 1  # real balance is still shared
        seq = sequential_search(spec, Enumeration())
        assert nodes == seq.metrics.nodes == 7


class TestCurrentDepth:
    def test_tracks_global_depth(self, toy_spec):
        stype = Enumeration()
        task = SearchTask(toy_spec, stype, "a", root_depth=1)
        assert task.current_depth() == 1
        k = stype.initial_knowledge(toy_spec)
        task.step(k)  # start: push root frame
        task.step(k)  # expand first child (aa at global depth 2)
        assert task.current_depth() == 2


class TestSplitLowestInlined:
    """The (spawn-budget) rule on the fast-path driver's plain generator
    list, mirroring GeneratorStack.split_lowest semantics."""

    @staticmethod
    def _gens(*lists):
        from repro.core.nodegen import ListNodeGenerator

        return [ListNodeGenerator(list(items)) for items in lists]

    def test_drains_first_non_exhausted_frame(self):
        from repro.core.tasks import split_lowest_inlined

        gens = self._gens(["a", "b"], ["x"], ["y", "z"])
        nodes, index = split_lowest_inlined(gens)
        assert nodes == ["a", "b"]
        assert index == 0
        # The drained frame yields nothing afterwards; deeper frames are
        # untouched.
        assert not gens[0].has_next()
        assert gens[1].has_next()

    def test_skips_exhausted_frames(self):
        from repro.core.tasks import split_lowest_inlined

        gens = self._gens([], [], ["p", "q"], ["r"])
        nodes, index = split_lowest_inlined(gens)
        assert nodes == ["p", "q"]
        assert index == 2

    def test_all_exhausted(self):
        from repro.core.tasks import split_lowest_inlined

        nodes, index = split_lowest_inlined(self._gens([], []))
        assert nodes == []
        assert index == -1

    def test_empty_stack(self):
        from repro.core.tasks import split_lowest_inlined

        assert split_lowest_inlined([]) == ([], -1)

    def test_single_remaining_child_is_kept_local(self):
        # Degenerate offcut: one child left and nothing deeper.  Handing
        # it away would empty the donor for zero balancing benefit, so
        # the split is refused and the child must still be drawable.
        from repro.core.tasks import split_lowest_inlined

        gens = self._gens(["only"])
        assert split_lowest_inlined(gens) == ([], -1)
        assert gens[0].has_next()
        assert gens[0].next() == "only"
        assert not gens[0].has_next()

    def test_single_child_restored_behind_exhausted_frames(self):
        from repro.core.tasks import split_lowest_inlined

        gens = self._gens([], [], ["tail"])
        assert split_lowest_inlined(gens) == ([], -1)
        assert gens[2].next() == "tail"

    def test_single_child_with_deeper_work_still_splits(self):
        # The refusal is only for the no-deeper-work case: with deeper
        # frames still holding nodes the donor keeps local work, so a
        # one-node offcut is a legitimate split.
        from repro.core.tasks import split_lowest_inlined

        gens = self._gens(["only"], ["deep1", "deep2"])
        nodes, index = split_lowest_inlined(gens)
        assert nodes == ["only"]
        assert index == 0
        assert gens[1].has_next()

    def test_refusal_is_repeatable(self):
        # Budget loops call the split on every trip; each refusal must
        # restore the child for the next attempt, not lose it.
        from repro.core.tasks import split_lowest_inlined

        gens = self._gens(["only"])
        for _ in range(3):
            assert split_lowest_inlined(gens) == ([], -1)
        assert gens[0].next() == "only"

    def test_matches_generator_stack_split(self, toy_spec):
        # Same tree state driven through GeneratorStack.split_lowest and
        # through the inlined list must give away the same nodes.
        from repro.core.genstack import GeneratorStack
        from repro.core.tasks import split_lowest_inlined

        stack = GeneratorStack()
        stack.push("root", toy_spec.children_of("root"))
        first = stack.next_from_top()[0]
        stack.push(first, toy_spec.children_of(first))

        gens = [toy_spec.generator(toy_spec.space, "root")]
        inlined_first = gens[0].next()
        gens.append(toy_spec.generator(toy_spec.space, inlined_first))
        assert inlined_first == first

        expected, _, _ = stack.split_lowest()
        nodes, index = split_lowest_inlined(gens)
        assert nodes == expected
        assert index == 0
