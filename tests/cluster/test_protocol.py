"""Unit tests for the cluster wire protocol: framing and codecs."""

import socket

import pytest

from repro.cluster import protocol as P


def _pipe():
    """A connected socket pair (both ends blocking)."""
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = _pipe()
        try:
            a.sendall(P.frame_bytes({"type": P.HELLO, "version": 1, "name": "w"}))
            msg = P.read_frame(b)
            assert msg == {"type": P.HELLO, "version": 1, "name": "w"}
        finally:
            a.close()
            b.close()

    def test_multiple_frames_keep_boundaries(self):
        a, b = _pipe()
        try:
            a.sendall(
                P.frame_bytes({"type": P.HEARTBEAT})
                + P.frame_bytes({"type": P.BYE, "n": 2})
            )
            assert P.read_frame(b)["type"] == P.HEARTBEAT
            assert P.read_frame(b) == {"type": P.BYE, "n": 2}
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pipe()
        a.close()
        try:
            assert P.read_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = _pipe()
        try:
            frame = P.frame_bytes({"type": P.HEARTBEAT})
            a.sendall(frame[: len(frame) - 2])  # torn write
            a.close()
            with pytest.raises(ConnectionError):
                P.read_frame(b)
        finally:
            b.close()

    def test_oversized_announcement_rejected(self):
        a, b = _pipe()
        try:
            a.sendall((P.MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(P.ProtocolError):
                P.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = _pipe()
        try:
            import json

            body = json.dumps([1, 2, 3]).encode()
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(P.ProtocolError):
                P.read_frame(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_body_rejected(self):
        a, b = _pipe()
        try:
            body = b"\xff\xfenot json"
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(P.ProtocolError):
                P.read_frame(b)
        finally:
            a.close()
            b.close()


class _SlottedNode:
    """An application-style node class (not JSON-representable)."""

    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b

    def __eq__(self, other):
        return (self.a, self.b) == (other.a, other.b)


class TestNodeCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            42,
            3.5,
            "text",
            [1, 2, [3]],
            (1, 2, (3, "x")),
            {1, 2, 3},
            frozenset({4, 5}),
            {"k": [1, (2,)], "j": {"nested": {6}}},
            (frozenset({1}), [{"a": (None,)}]),
        ],
    )
    def test_exact_round_trip(self, value):
        encoded = P.encode_node(value)
        decoded = P.decode_node(encoded)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_json_safe_values_stay_readable(self):
        # Plain structures travel structurally, not as opaque pickles.
        import json

        encoded = P.encode_node({"depth": 3, "path": [1, 2]})
        assert json.loads(json.dumps(encoded)) == encoded
        assert "__pickle__" not in json.dumps(encoded)

    def test_app_node_class_round_trips_via_pickle_tag(self):
        node = _SlottedNode(7, (1, 2))
        encoded = P.encode_node(node)
        assert set(encoded) == {"__pickle__"}
        assert P.decode_node(encoded) == node

    def test_tag_collision_in_dict_degrades_to_pickle(self):
        # A user dict that happens to use a tag key must not be
        # misparsed as a tagged value on the way back.
        tricky = {"__tuple__": [1, 2]}
        assert P.decode_node(P.encode_node(tricky)) == tricky


class TestEveryFrameTypeAdversarial:
    """One realistic message per protocol frame type, loaded with the
    payload shapes that break naive codecs: empty sets, nested tuples,
    non-ASCII text, tag-colliding dicts — each must survive a real
    socket round trip byte-exactly."""

    NASTY_NODE = (
        frozenset(),  # empty frozenset
        set(),  # empty set
        ((1, (2, (3,))), ()),  # nested and empty tuples
        {"ключ": ["väärtus", "値", "\N{SNOWMAN}"]},  # non-ASCII both sides
        {"__tuple__": [1]},  # tag collision
        [None, True, -0.0, 2**63],  # JSON edge numerics
    )

    MESSAGES = [
        {"type": P.HELLO, "version": P.PROTOCOL_VERSION, "name": "wörker-0"},
        {"type": P.WELCOME, "worker_id": 3, "heartbeat_interval": 0.5},
        {"type": P.JOB, "job_id": "j-δ", "factory": "m:f",
         "factory_args": None, "stype_kind": "optimisation",
         "stype_kwargs": {}, "budget": 1, "share_poll": 64},
        {"type": P.TASK, "task_id": 9, "epoch": 2, "depth": 4},
        {"type": P.OFFCUT, "task_id": 9, "epoch": 2, "depth": 5},
        {"type": P.INCUMBENT, "job_id": "j", "value": -1},
        {"type": P.RESULT, "task_id": 9, "epoch": 2, "nodes": 0,
         "goal": False},
        {"type": P.HEARTBEAT},
        {"type": P.JOB_DONE, "job_id": "j"},
        {"type": P.SHUTDOWN},
        {"type": P.BYE},
        {"type": P.ERROR, "reason": "нет — 不行 — ❌"},
    ]

    @pytest.mark.parametrize(
        "msg", MESSAGES, ids=lambda m: m["type"].lower()
    )
    def test_frame_round_trips_with_nasty_payload(self, msg):
        loaded = dict(msg, payload=P.encode_node(self.NASTY_NODE))
        a, b = _pipe()
        try:
            a.sendall(P.frame_bytes(loaded))
            got = P.read_frame(b)
        finally:
            a.close()
            b.close()
        decoded = P.decode_node(got.pop("payload"))
        assert decoded == self.NASTY_NODE
        assert [type(x) for x in decoded] == [type(x) for x in self.NASTY_NODE]
        assert got == msg

    def test_oversized_body_rejected_at_send_time(self):
        # The sender refuses to emit a frame the receiver would reject:
        # a loud ProtocolError, never a silent truncation.
        blob = "x" * (P.MAX_FRAME + 1)
        with pytest.raises(P.ProtocolError, match="exceeds MAX_FRAME"):
            P.frame_bytes({"type": P.OFFCUT, "payload": blob})

    def test_empty_collections_keep_their_types(self):
        for value in (set(), frozenset(), (), {}):
            decoded = P.decode_node(P.encode_node(value))
            assert decoded == value and type(decoded) is type(value)

    def test_non_ascii_survives_utf8_framing(self):
        msg = {"type": P.INCUMBENT, "witness": "π≈3.14159 — ﷽ — 🧩"}
        a, b = _pipe()
        try:
            a.sendall(P.frame_bytes(msg))
            assert P.read_frame(b) == msg
        finally:
            a.close()
            b.close()


def _top_level_factory():
    """A factory the wire can name."""
    return 42


class TestSpecTransport:
    def test_factory_path_round_trip(self):
        path = P.factory_path(_top_level_factory)
        assert path == "tests.cluster.test_protocol:_top_level_factory"
        assert P.resolve_factory(path) is _top_level_factory

    def test_lambda_rejected(self):
        with pytest.raises(ValueError, match="top-level"):
            P.factory_path(lambda: None)

    def test_nested_function_rejected(self):
        def nested():
            return None

        with pytest.raises(ValueError, match="top-level"):
            P.factory_path(nested)

    def test_unresolvable_path_raises_protocol_error(self):
        with pytest.raises(P.ProtocolError):
            P.resolve_factory("no.such.module:fn")
        with pytest.raises(P.ProtocolError):
            P.resolve_factory("repro.cluster.protocol:no_such_attr")
        with pytest.raises(P.ProtocolError):
            P.resolve_factory("not-a-path")

    def test_library_factory_is_wireable(self):
        from repro.instances.library import library_spec_factory

        path = P.factory_path(library_spec_factory)
        assert P.resolve_factory(path) is library_spec_factory
