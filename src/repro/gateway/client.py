"""A thin synchronous client for the gateway's HTTP API.

``repro submit --url``, ``repro gateway-top``, the tests and the
benchmarks all drive the gateway through this one class, so the wire
contract is exercised from Python exactly the way ``curl`` would
exercise it — stdlib :mod:`http.client` only, one connection per call,
chunked decoding handled by the standard response object.

The 429 backpressure contract surfaces as a typed
:class:`Backpressure` exception carrying the server's ``Retry-After``
hint, so batch submitters can implement honest pacing loops::

    while True:
        try:
            record = client.submit(spec)
            break
        except Backpressure as bp:
            time.sleep(bp.retry_after)
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Iterator, Optional
from urllib.parse import urlsplit

from repro.gateway.prometheus import parse_metrics

__all__ = ["GatewayError", "Backpressure", "GatewayClient"]


class GatewayError(Exception):
    """A non-2xx gateway response; carries status and decoded body."""

    def __init__(self, status: int, body) -> None:
        detail = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.body = body


class Backpressure(GatewayError):
    """A 429/503: the queue is full (or the gateway is draining);
    ``retry_after`` is the server's pacing hint in seconds."""

    def __init__(self, status: int, body, retry_after: float) -> None:
        super().__init__(status, body)
        self.retry_after = retry_after


class GatewayClient:
    """Synchronous HTTP client for one gateway base URL.

    Args:
        url: base URL, e.g. ``http://127.0.0.1:8080``.
        timeout: per-request socket timeout (streams override it).
    """

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"only http:// gateways are supported, got {url!r}")
        if not split.hostname:
            raise ValueError(f"no host in gateway url {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    def _connect(self, timeout: Optional[float]) -> HTTPConnection:
        return HTTPConnection(self.host, self.port, timeout=timeout)

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> tuple[int, dict, dict]:
        """One request; returns (status, headers, decoded JSON body)."""
        conn = self._connect(self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            try:
                decoded = json.loads(raw.decode()) if raw else {}
            except ValueError:
                decoded = {"error": raw.decode(errors="replace")}
            return resp.status, dict(resp.getheaders()), decoded
        finally:
            conn.close()

    @staticmethod
    def _raise_for(status: int, headers: dict, body) -> None:
        if status in (429, 503):
            try:
                retry_after = float(headers.get("Retry-After", 1.0))
            except ValueError:
                retry_after = 1.0
            raise Backpressure(status, body, retry_after)
        if status >= 400:
            raise GatewayError(status, body)

    # -- the API -------------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """``POST /jobs``; returns the job record.  Raises
        :class:`Backpressure` on 429/503, :class:`GatewayError` on
        other non-2xx."""
        status, headers, body = self._request("POST", "/jobs", spec)
        self._raise_for(status, headers, body)
        return body

    def submit_paced(
        self,
        spec: dict,
        *,
        attempts: int = 20,
        sleep=time.sleep,
    ) -> dict:
        """Submit with honest pacing: on backpressure, wait the
        server's ``Retry-After`` and try again (up to ``attempts``)."""
        last: Optional[Backpressure] = None
        for _ in range(attempts):
            try:
                return self.submit(spec)
            except Backpressure as bp:
                last = bp
                sleep(bp.retry_after)
        raise last  # type: ignore[misc]  # attempts >= 1 guarantees it

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}``; the job record."""
        status, headers, body = self._request("GET", f"/jobs/{job_id}")
        self._raise_for(status, headers, body)
        return body

    def result(self, job_id: str) -> tuple[int, dict]:
        """``GET /jobs/{id}/result``; returns ``(status, body)`` —
        200 carries ``body["result"]``, 202 means still running, 409
        a non-DONE terminal state.  404 still raises."""
        status, headers, body = self._request("GET", f"/jobs/{job_id}/result")
        if status == 404:
            self._raise_for(status, headers, body)
        return status, body

    def events(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> Iterator[dict]:
        """``GET /jobs/{id}/events``: yield status events as they
        stream, ending after the terminal event.  ``timeout`` bounds
        each silent gap (the server pings well inside it)."""
        conn = self._connect(timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status != 200:
                raw = resp.read()
                try:
                    body = json.loads(raw.decode())
                except ValueError:
                    body = {"error": raw.decode(errors="replace")}
                self._raise_for(resp.status, dict(resp.getheaders()), body)
            while True:
                line = resp.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def wait(self, job_id: str, *, timeout: Optional[float] = None) -> dict:
        """Follow the status stream to its terminal event, then return
        the final job record."""
        for _ in self.events(job_id, timeout=timeout):
            pass
        return self.job(job_id)

    def metrics_text(self) -> str:
        """``GET /metrics`` as raw exposition text."""
        conn = self._connect(self.timeout)
        try:
            conn.request("GET", "/metrics")
            resp = conn.getresponse()
            raw = resp.read().decode()
            if resp.status != 200:
                raise GatewayError(resp.status, {"error": raw})
            return raw
        finally:
            conn.close()

    def metrics(self) -> dict:
        """``GET /metrics`` parsed into ``{(name, labels): value}``."""
        return parse_metrics(self.metrics_text())

    def health(self) -> dict:
        """``GET /healthz``."""
        status, headers, body = self._request("GET", "/healthz")
        self._raise_for(status, headers, body)
        return body
