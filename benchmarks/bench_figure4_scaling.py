"""Figure 4: k-clique scaling over 1..17 localities (15 workers each).

The paper scales a hard k-clique decision instance (spreads in H(4,4))
to 255 workers on 17 localities and plots runtime + speedup relative to
one locality for Depth-Bounded (d=2), Stack-Stealing (chunked) and
Budget skeletons.

This bench reproduces the experiment on the library's ``kclique-fig4``
instance — an *unsatisfiable* decision search (prove no (w+1)-clique),
chosen because refutations are pruning-stable and make the scaling
curve reproducible; the paper's caveat (§5.2) about anomaly noise
applies to witness searches.  Expected shape: all three skeletons
speed up monotonically with locality count; Depth-Bounded and
Stack-Stealing stay near-linear until task granularity runs out, and
the Budget skeleton's position depends on its budget knob (§5.5).
"""

from repro.core.params import SkeletonParams
from repro.util.asciiplot import ascii_chart

from ._harness import FULL, fmt_row, sequential_baseline, run_parallel, write_result

LOCALITY_LADDER = [1, 2, 4, 8, 16, 17] if FULL else [1, 2, 4, 8, 17]
WORKERS_PER_LOCALITY = 15
INSTANCE = "kclique-fig4"

SKELETONS = [
    ("depthbounded", {"d_cutoff": 2}),
    ("stacksteal", {"chunked": True}),
    ("budget", {"budget": 50}),
]


def test_figure4_scaling(benchmark):
    seq_time, seq_res = sequential_baseline(INSTANCE)
    runtimes: dict[str, list[float]] = {}
    efficiencies: dict[str, list[float]] = {}

    def run_all():
        for skeleton, knobs in SKELETONS:
            times = []
            effs = []
            for locs in LOCALITY_LADDER:
                params = SkeletonParams(
                    localities=locs,
                    workers_per_locality=WORKERS_PER_LOCALITY,
                    **knobs,
                )
                res = run_parallel(INSTANCE, skeleton, params)
                assert res.found is seq_res.found
                times.append(res.virtual_time)
                effs.append(res.efficiency())
            runtimes[skeleton] = times
            efficiencies[skeleton] = effs

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = [14] + [12] * len(LOCALITY_LADDER)
    lines = [
        f"Figure 4: k-clique scaling on {INSTANCE} "
        f"({seq_res.metrics.nodes} sequential nodes, seq vtime {seq_time:.0f})",
        "runtime (virtual work units) and speedup relative to 1 locality",
        fmt_row(["skeleton"] + [f"{n} loc" for n in LOCALITY_LADDER], widths),
    ]
    for skeleton, _ in SKELETONS:
        times = runtimes[skeleton]
        base = times[0]
        cells = [f"{t:.0f} ({base / t:.1f}x)" for t in times]
        lines.append(fmt_row([skeleton] + cells, widths))
    lines.append("worker efficiency (busy time / makespan):")
    for skeleton, _ in SKELETONS:
        cells = [f"{e:.0%}" for e in efficiencies[skeleton]]
        lines.append(fmt_row([skeleton] + cells, widths))
    lines.append(
        "paper shape: runtime falls monotonically to 17 localities; "
        "maximal relative speedup ~12-14x on 255 workers; "
        "§5.4: >50% efficiency is common even for irregular searches"
    )
    # The two panels of Figure 4, as terminal charts.
    lines.append("")
    lines.append(
        ascii_chart(
            {sk: list(zip(LOCALITY_LADDER, runtimes[sk])) for sk, _ in SKELETONS},
            title="Figure 4 (left): runtime vs localities",
            xlabel="localities",
            ylabel="virtual time",
            log_y=True,
            width=56,
            height=12,
        )
    )
    lines.append("")
    lines.append(
        ascii_chart(
            {
                sk: [
                    (loc, runtimes[sk][0] / t)
                    for loc, t in zip(LOCALITY_LADDER, runtimes[sk])
                ]
                for sk, _ in SKELETONS
            },
            title="Figure 4 (right): speedup (rel. 1 locality) vs localities",
            xlabel="localities",
            ylabel="speedup",
            width=56,
            height=12,
        )
    )
    write_result("figure4_scaling", lines)

    # Shape assertions: every skeleton gains from 1 -> max localities,
    # and the dynamic skeletons keep scaling past 4 localities.
    for skeleton, _ in SKELETONS:
        times = runtimes[skeleton]
        assert times[-1] < times[0], f"{skeleton} failed to scale"
    for skeleton in ("depthbounded", "stacksteal"):
        times = runtimes[skeleton]
        assert times[-1] < times[2], f"{skeleton} stopped scaling by 4 localities"
