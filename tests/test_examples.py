"""Smoke tests: every example script runs end-to-end and prints sane
output.  Examples are executed in-process (import + main()) so failures
surface as ordinary assertions."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "maximum clique: {a, d, f, g} (size 4)" in out
        assert "3-clique exists: True" in out

    def test_custom_application(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["custom_application.py", "6"])
        load_example("custom_application").main()
        out = capsys.readouterr().out
        assert "6-queens solutions: 4 (expected 4)" in out
        assert "found a placement: True" in out

    def test_maxclique_instances(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["maxclique_instances.py", "sanr90-1", "stacksteal"]
        )
        load_example("maxclique_instances").main()
        out = capsys.readouterr().out
        assert "maximum clique size: 11" in out

    def test_maxclique_instances_unknown_name(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["maxclique_instances.py", "no-such"])
        with pytest.raises(SystemExit):
            load_example("maxclique_instances").main()

    @pytest.mark.slow
    def test_parameter_sweep(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["parameter_sweep.py"])
        load_example("parameter_sweep").main()
        out = capsys.readouterr().out
        assert "Depth-Bounded cutoff sweep:" in out
        assert "Stack-Stealing" in out

    @pytest.mark.slow
    def test_distributed_scaling(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["distributed_scaling.py"])
        load_example("distributed_scaling").main()
        out = capsys.readouterr().out
        assert "speedup relative to 1 locality" in out

    def test_schedule_trace(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["schedule_trace.py"])
        load_example("schedule_trace").main()
        out = capsys.readouterr().out
        assert "util|" in out
        assert out.count("===") >= 6  # three sections

    def test_formal_model_demo(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["formal_model_demo.py"])
        load_example("formal_model_demo").main()
        out = capsys.readouterr().out
        assert "skeleton optimum: clique size 4" in out
        assert "with admissible pruning" in out

    def test_files_roundtrip(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setattr(sys, "argv", ["files_roundtrip.py", str(tmp_path)])
        load_example("files_roundtrip").main()
        out = capsys.readouterr().out
        assert "maximum clique 11" in out
        assert "optimal tour length" in out
