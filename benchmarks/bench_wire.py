"""Wire codec microbenchmark: JSON vs binary, sizes and throughput.

Not a paper table: this measures the repository's own wire formats
(``repro.cluster.codec``, docs/cluster.md) on the frame shapes the
cluster runtime actually exchanges — a batched TASK lease grant, an
OFFCUT returning split subtrees, a counters-laden RESULT, an INCUMBENT
broadcast and a bare HEARTBEAT — with both tuple-tagged structured
nodes and opaque pickle-tagged nodes.

Two quantities per (frame, codec):

- **size**: encoded body bytes.  Smaller frames matter at every hop on
  a real network; on localhost they mostly proxy for copy cost.
- **throughput**: encode+decode round trips per second, single thread.
  This is the CPU the coordinator burns per frame — the term that
  actually bounds lease turnaround on one box.

Results go to ``results/wire.txt`` (human table) and
``results/wire.json`` (machine-readable).

Run directly: ``PYTHONPATH=src python benchmarks/bench_wire.py``
"""

from __future__ import annotations

import json
import platform
import time

from _harness import RESULTS_DIR, SCALE, write_result

from repro.cluster.codec import CODECS, decode_body
from repro.cluster.protocol import encode_node

TARGET_SECONDS = max(0.05, 0.25 * SCALE)  # per (frame, codec) measurement


def _tuple_node(i: int):
    """A structured node like UTS/MaxClique ship: nested tuples, a
    frozenset candidate set, small ints."""
    return (i, (i + 1, i + 2), frozenset(range(i % 5 + 2)), "expand")


def _frames() -> list[tuple[str, dict]]:
    import base64
    import pickle

    task_batch = {
        "type": "TASK",
        "job": 3,
        "leases": [
            [100 + i, 0, encode_node(_tuple_node(i)), 4] for i in range(8)
        ],
    }
    offcut = {
        "type": "OFFCUT",
        "job": 3,
        "task": 104,
        "epoch": 0,
        "depth": 6,
        "nodes": [encode_node(_tuple_node(i)) for i in range(6)],
    }
    result = {
        "type": "RESULT", "job": 3, "task": 104, "epoch": 0,
        "nodes": 15321, "prunes": 204, "backtracks": 9531,
        "max_depth": 23, "goal": False, "knowledge": 88421,
    }
    incumbent = {
        "type": "INCUMBENT", "job": 3, "value": 17,
        "node": encode_node(_tuple_node(17)),
    }
    pickled = base64.b64encode(
        pickle.dumps({"adj": list(range(40)), "chosen": (1, 5, 9)})
    ).decode("ascii")
    task_pickle = {
        "type": "TASK", "job": 3,
        "leases": [[200 + i, 0, {"__pickle__": pickled}, 2]
                   for i in range(4)],
    }
    heartbeat = {"type": "HEARTBEAT"}
    return [
        ("TASK x8 tuple-node", task_batch),
        ("TASK x4 pickle-node", task_pickle),
        ("OFFCUT x6", offcut),
        ("RESULT", result),
        ("INCUMBENT", incumbent),
        ("HEARTBEAT", heartbeat),
    ]


def _roundtrips_per_s(codec, msg: dict) -> float:
    # Calibrate a batch size, then time encode+decode loops.
    n = 64
    while True:
        t0 = time.perf_counter()
        for _ in range(n):
            decode_body(codec.encode(msg))
        dt = time.perf_counter() - t0
        if dt >= TARGET_SECONDS:
            return n / dt
        n *= 4


def main() -> None:
    rows = [
        f"{'frame':<20} {'codec':<7} {'bytes':>6} {'rt/s':>10} "
        f"{'size':>6} {'speed':>6}"
    ]
    records = []
    for label, msg in _frames():
        stats = {}
        for name, codec in CODECS.items():
            body = codec.encode(msg)
            assert decode_body(body) == msg, f"{label}/{name}: bad roundtrip"
            stats[name] = (len(body), _roundtrips_per_s(codec, msg))
        jsize, jrate = stats["json"]
        for name in CODECS:
            size, rate = stats[name]
            rows.append(
                f"{label:<20} {name:<7} {size:>6} {rate:>10.0f} "
                f"{jsize / size:>5.2f}x {rate / jrate:>5.2f}x"
            )
            records.append({
                "frame": label, "codec": name, "bytes": size,
                "roundtrips_per_s": round(rate),
                "size_ratio_vs_json": round(jsize / size, 3),
                "speed_ratio_vs_json": round(rate / jrate, 3),
            })

    header = [
        "wire codec microbenchmark (encode + decode round trips, one thread)",
        f"host: {platform.platform()}  python: {platform.python_version()}",
        "size/speed columns are vs the JSON encoding of the same frame.",
        "",
    ]
    write_result("wire", header + rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "wire.json").write_text(json.dumps(records, indent=2) + "\n")


if __name__ == "__main__":
    main()
