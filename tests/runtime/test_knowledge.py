"""Tests for delayed incumbent broadcast (§4.3 knowledge management)."""

from repro.core.searchtypes import Decision, Incumbent, Optimisation
from repro.runtime.costmodel import CostModel
from repro.runtime.knowledge import KnowledgeManager
from repro.runtime.sim import Simulator
from repro.runtime.topology import Topology


def make_km(stype=None, localities=2, on_goal=None):
    sim = Simulator()
    km = KnowledgeManager(
        stype or Optimisation(),
        Incumbent(0, "root"),
        Topology(localities=localities, workers_per_locality=1),
        CostModel(broadcast_latency_local=1.0, broadcast_latency_remote=10.0),
        sim,
        on_goal,
    )
    return sim, km


class TestBroadcastDelay:
    def test_publish_updates_global_immediately(self):
        sim, km = make_km()
        km.publish(0, Incumbent(5, "x"))
        assert km.global_best.value == 5
        # but no locality view has changed yet
        assert km.view(0).value == 0
        assert km.view(1).value == 0

    def test_local_view_updates_after_local_latency(self):
        sim, km = make_km()
        km.publish(0, Incumbent(5, "x"))
        sim.at(2.0, sim.stop)  # run past local latency only
        sim.run()
        assert km.view(0).value == 5
        assert km.view(1).value == 0  # remote latency (10) not reached

    def test_remote_view_updates_after_remote_latency(self):
        sim, km = make_km()
        km.publish(0, Incumbent(5, "x"))
        sim.run()
        assert km.view(1).value == 5

    def test_out_of_order_arrivals_never_regress(self):
        sim, km = make_km()
        km.publish(0, Incumbent(5, "x"))
        km.publish(1, Incumbent(3, "y"))  # weaker, published elsewhere
        sim.run()
        assert km.view(0).value == 5
        assert km.view(1).value == 5
        assert km.global_best.value == 5

    def test_broadcast_counter(self):
        sim, km = make_km()
        km.publish(0, Incumbent(1, "a"))
        km.publish(1, Incumbent(2, "b"))
        assert km.broadcasts == 2


class TestGoalCallback:
    def test_on_goal_fires_at_target(self):
        hits = []
        sim, km = make_km(stype=Decision(target=4), on_goal=hits.append)
        km.publish(0, Incumbent(3, "x"))
        assert hits == []
        km.publish(1, Incumbent(4, "y"))
        assert len(hits) == 1
        assert hits[0].value == 4

    def test_on_goal_not_fired_for_optimisation(self):
        hits = []
        sim, km = make_km(on_goal=hits.append)
        km.publish(0, Incumbent(100, "x"))
        assert hits == []
