"""Order-preserving distributed workpools.

Standard deque-based work-stealing breaks heuristic search order (§2.3),
so YewPar uses bespoke order-preserving pools (§4.3): tasks are handed
out in the order the search heuristic would visit them, and steals
prefer tasks *near the root* — heuristically the largest subtrees, which
amortise the communication cost (§4.2).

:class:`Workpool` realises this as a priority pool keyed on
``(depth, spawn sequence)``: local pops and remote steals both take the
shallowest, earliest-spawned task.  For the ordering ablation bench a
``"lifo"`` discipline (most-recently-spawned first, the classic deque)
is also provided.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

__all__ = ["Workpool", "PoolEntry"]


class PoolEntry:
    """A queued task with its ordering key."""

    __slots__ = ("depth", "seq", "task")

    def __init__(self, depth: int, seq: int, task: Any) -> None:
        self.depth = depth
        self.seq = seq
        self.task = task


class Workpool:
    """One locality's pool of pending tasks.

    ``discipline`` is ``"order"`` (depth-then-spawn-order priority, the
    YewPar depthpool analogue), ``"lifo"`` (most recent first, the
    classic work-stealing deque that *breaks* heuristic order) or
    ``"fifo"`` (strict spawn order, ignoring depth).
    """

    DISCIPLINES = ("order", "lifo", "fifo")

    def __init__(self, discipline: str = "order") -> None:
        if discipline not in self.DISCIPLINES:
            raise ValueError(f"unknown pool discipline {discipline!r}")
        self.discipline = discipline
        self._heap: list[tuple[tuple, int, PoolEntry]] = []  # guarded-by: caller
        self._seq = 0  # guarded-by: caller

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def _key(self, depth: int, seq: int) -> tuple:
        if self.discipline == "order":
            return (depth, seq)
        if self.discipline == "fifo":
            return (seq,)
        return (-seq,)  # lifo

    def push(self, task: Any, depth: int, rank: tuple | None = None) -> None:
        """Add a spawned task; ``depth`` is its root's global depth.

        ``rank`` overrides the discipline key: the Ordered skeleton
        passes the task's heuristic path key so pops follow the exact
        sequential traversal order regardless of spawn interleaving.
        """
        entry = PoolEntry(depth, self._seq, task)
        key = rank if rank is not None else self._key(depth, self._seq)
        heapq.heappush(self._heap, (key, self._seq, entry))
        self._seq += 1

    def pop(self) -> Optional[Any]:
        """Take the highest-priority task, or None if empty.

        Local pops and remote steals use the same end: the simulator
        models contention in time, not in data-structure slots.
        """
        if not self._heap:
            return None
        _, _, entry = heapq.heappop(self._heap)
        return entry.task
