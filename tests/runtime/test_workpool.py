"""Tests for the order-preserving workpool disciplines."""

import pytest

from repro.runtime.workpool import Workpool


class TestOrderDiscipline:
    def test_pops_shallowest_first(self):
        p = Workpool("order")
        p.push("deep", depth=5)
        p.push("shallow", depth=1)
        assert p.pop() == "shallow"
        assert p.pop() == "deep"

    def test_ties_by_spawn_order(self):
        p = Workpool("order")
        p.push("first", depth=2)
        p.push("second", depth=2)
        assert p.pop() == "first"
        assert p.pop() == "second"

    def test_preserves_heuristic_order_within_depth(self):
        # Tasks spawned in traversal order come back in traversal order
        # — the property that deque-based stealing breaks (§2.3).
        p = Workpool("order")
        for i in range(10):
            p.push(f"t{i}", depth=3)
        assert [p.pop() for _ in range(10)] == [f"t{i}" for i in range(10)]


class TestLifoDiscipline:
    def test_most_recent_first(self):
        p = Workpool("lifo")
        p.push("old", depth=1)
        p.push("new", depth=9)
        assert p.pop() == "new"


class TestFifoDiscipline:
    def test_spawn_order_ignores_depth(self):
        p = Workpool("fifo")
        p.push("deep-but-first", depth=9)
        p.push("shallow-later", depth=0)
        assert p.pop() == "deep-but-first"


class TestCommon:
    def test_empty_pop_returns_none(self):
        assert Workpool().pop() is None

    def test_len_and_bool(self):
        p = Workpool()
        assert not p and len(p) == 0
        p.push("t", depth=0)
        assert p and len(p) == 1

    def test_unknown_discipline_rejected(self):
        with pytest.raises(ValueError):
            Workpool("random")
