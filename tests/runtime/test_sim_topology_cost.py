"""Tests for the simulation engine, topology and cost model."""

import pytest

from repro.runtime.costmodel import CostModel
from repro.runtime.sim import Simulator
from repro.runtime.topology import Topology


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(5.0, lambda: log.append("late"))
        sim.at(1.0, lambda: log.append("early"))
        sim.run()
        assert log == ["early", "late"]
        assert sim.now == 5.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append("first"))
        sim.at(1.0, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: sim.at(2.0, lambda: log.append(sim.now)))
        sim.run()
        assert log == [3.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.at(-1.0, lambda: None)

    def test_stop_discards_pending(self):
        sim = Simulator()
        log = []
        sim.at(1.0, sim.stop)
        sim.at(2.0, lambda: log.append("never"))
        executed = sim.run()
        assert log == []
        assert executed == 1
        assert sim.stopped

    def test_max_events_guard(self):
        sim = Simulator()

        def respawn():
            sim.at(1.0, respawn)

        sim.at(0.0, respawn)
        with pytest.raises(RuntimeError):
            sim.run(max_events=50)

    def test_run_returns_event_count(self):
        sim = Simulator()
        for i in range(5):
            sim.at(i, lambda: None)
        assert sim.run() == 5


class TestTopology:
    def test_total_workers(self):
        t = Topology(localities=3, workers_per_locality=5)
        assert t.total_workers == 15

    def test_locality_of(self):
        t = Topology(localities=2, workers_per_locality=4)
        assert t.locality_of(0) == 0
        assert t.locality_of(3) == 0
        assert t.locality_of(4) == 1
        assert t.locality_of(7) == 1

    def test_workers_of(self):
        t = Topology(localities=2, workers_per_locality=3)
        assert list(t.workers_of(1)) == [3, 4, 5]

    def test_is_local(self):
        t = Topology(localities=2, workers_per_locality=2)
        assert t.is_local(0, 1)
        assert not t.is_local(1, 2)

    def test_out_of_range_rejected(self):
        t = Topology(localities=1, workers_per_locality=2)
        with pytest.raises(ValueError):
            t.locality_of(2)
        with pytest.raises(ValueError):
            t.workers_of(1)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            Topology(localities=0)
        with pytest.raises(ValueError):
            Topology(workers_per_locality=0)


class TestCostModel:
    def test_per_node_includes_framework_overhead(self):
        c = CostModel(node_cost=1.0, framework_node_overhead=0.1)
        assert c.per_node() == pytest.approx(1.1)
        assert c.per_node(3) == pytest.approx(3.3)

    def test_specialised_strips_overhead(self):
        c = CostModel(framework_node_overhead=0.2)
        s = c.specialised()
        assert s.framework_node_overhead == 0.0
        assert s.node_cost == c.node_cost

    def test_steal_latency_selects_tier(self):
        c = CostModel(steal_latency_local=2.0, steal_latency_remote=20.0)
        assert c.steal_latency(local=True) == 2.0
        assert c.steal_latency(local=False) == 20.0

    def test_broadcast_latency_selects_tier(self):
        c = CostModel(broadcast_latency_local=1.0, broadcast_latency_remote=9.0)
        assert c.broadcast_latency(local=True) == 1.0
        assert c.broadcast_latency(local=False) == 9.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(node_cost=0.0)
        with pytest.raises(ValueError):
            CostModel(spawn_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(steal_retry_backoff=10.0, steal_retry_cap=1.0)
