"""Deterministic fault-injection hooks for the cluster runtime.

The fault-tolerance path (epoch leases, heartbeat watchdog, re-lease on
worker death — see :mod:`repro.cluster.coordinator`) was originally
exercised by a single SIGKILL e2e test.  These hooks let a *seeded
schedule* of faults — a :class:`repro.verify.chaos.FaultPlan` — be
injected at fixed points instead, so every chaos run is reproducible
from its seed.

Event dicts (JSON-able, so plans travel through process-spawn args or
the ``REPRO_CHAOS`` environment variable):

- ``{"kind": "kill_worker", "worker": NAME, "at_task": N}`` —
  worker-side: hard-exit (``os._exit``, no BYE, no drain) the moment the
  worker *starts* its ``N``-th task, so it dies holding a live lease.
- ``{"kind": "kill_on_retire", "worker": NAME}`` — worker-side:
  hard-exit the moment a RETIRE frame arrives, *before* the graceful
  handback runs — the worker dies mid-retire still holding its leases,
  so the coordinator's crash re-lease path must recover exactly what
  the cooperative RELEASE would have returned.
- ``{"kind": "drop_frame", "worker": NAME, "frame_type": T,
  "after": K, "count": C}`` — worker-side: silently discard outbound
  frames ``K+1 .. K+C`` of type ``T``.  Only HEARTBEAT and INCUMBENT
  may be dropped: those are the frames whose loss the protocol
  tolerates by design (beats are redundant liveness, incumbent values
  are repeated in RESULT).  Dropping OFFCUT or RESULT would lose work
  without any fault the protocol could observe — TCP either delivers a
  frame or breaks the connection, never silently eats one — so asking
  for it is a plan bug and raises ValueError.
- ``{"kind": "delay_heartbeat", "worker": NAME, "beat": B,
  "delay": S}`` — worker-side: sleep ``S`` extra seconds before sending
  heartbeat number ``B``.  With ``S`` past the coordinator's
  heartbeat timeout this forces a watchdog re-lease while the worker is
  merely slow, exercising the stale-epoch drop path.
- ``{"kind": "partition", "worker": NAME, "after_frames": K,
  "count": C}`` — coordinator-side: drop inbound frames ``K+1 .. K+C``
  from that worker (counted across reconnects), simulating a severed
  link.  The watchdog declares the worker dead and re-leases its tasks;
  once the drop budget is spent the link "heals" and the worker may
  rejoin.

Counters are per-hook-object state, so the schedule is a pure function
of the event list and the order of local actions — no clocks, no
randomness at injection time.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Optional

__all__ = ["CHAOS_ENV", "KILL_EXIT_CODE", "SAFE_DROP_TYPES",
           "WorkerFaults", "CoordinatorFaults"]

# Environment variable carrying a JSON FaultPlan for workers launched
# outside cluster_budget_search (the `repro cluster-worker` CLI path).
CHAOS_ENV = "REPRO_CHAOS"

# Exit code of a chaos-killed worker: distinguishable from real crashes
# in CI logs, and non-zero so supervisors treat it as a death.
KILL_EXIT_CODE = 57

SAFE_DROP_TYPES = frozenset({"HEARTBEAT", "INCUMBENT"})

_WORKER_KINDS = (
    "kill_worker", "kill_on_retire", "drop_frame", "delay_heartbeat"
)


class WorkerFaults:
    """Worker-side injection state for one worker's share of a plan."""

    def __init__(self, events: list) -> None:
        self._kill_at: Optional[int] = None
        self._kill_on_retire = False
        self._drops: list[dict] = []  # {frame_type, after, count, seen}
        self._delays: dict[int, float] = {}  # beat number -> extra seconds
        self._beats = 0
        for ev in events:
            kind = ev.get("kind")
            if kind == "kill_worker":
                at = int(ev["at_task"])
                self._kill_at = at if self._kill_at is None else min(self._kill_at, at)
            elif kind == "kill_on_retire":
                self._kill_on_retire = True
            elif kind == "drop_frame":
                ftype = ev["frame_type"]
                if ftype not in SAFE_DROP_TYPES:
                    raise ValueError(
                        f"refusing to drop {ftype} frames: the protocol "
                        "only tolerates losing "
                        f"{sorted(SAFE_DROP_TYPES)} (TCP never silently "
                        "drops a delivered frame; losing work frames "
                        "models no real fault)"
                    )
                self._drops.append({
                    "frame_type": ftype,
                    "after": int(ev.get("after", 0)),
                    "count": int(ev.get("count", 1)),
                    "seen": 0,
                })
            elif kind == "delay_heartbeat":
                self._delays[int(ev["beat"])] = float(ev["delay"])
            elif kind == "partition":
                pass  # coordinator-side; ignore here
            else:
                raise ValueError(f"unknown fault kind {kind!r}")

    @classmethod
    def from_events(cls, events, worker_name: str) -> Optional["WorkerFaults"]:
        """The worker-side hooks for ``worker_name``, or None if the plan
        has nothing for it."""
        if not events:
            return None
        mine = [
            ev for ev in events
            if ev.get("worker") == worker_name
            and ev.get("kind") in _WORKER_KINDS
        ]
        return cls(mine) if mine else None

    @classmethod
    def from_env(cls, worker_name: str) -> Optional["WorkerFaults"]:
        """Hooks from the ``REPRO_CHAOS`` environment variable, if set."""
        raw = os.environ.get(CHAOS_ENV)
        if not raw:
            return None
        try:
            plan = json.loads(raw)
        except ValueError as exc:
            raise ValueError(f"undecodable {CHAOS_ENV} plan: {exc}") from None
        return cls.from_events(plan.get("events", []), worker_name)

    # -- hook points ---------------------------------------------------------

    def on_task_start(self, task_number: int) -> None:
        """Called as the worker starts its ``task_number``-th task; may
        hard-exit the process (simulating SIGKILL mid-lease)."""
        if self._kill_at is not None and task_number >= self._kill_at:
            sys.stderr.flush()
            os._exit(KILL_EXIT_CODE)

    def on_retire(self) -> None:
        """Called when a RETIRE frame arrives, before the graceful
        handback; may hard-exit the process (dying mid-retire with
        leases live)."""
        if self._kill_on_retire:
            sys.stderr.flush()
            os._exit(KILL_EXIT_CODE)

    def drop_outbound(self, frame_type: str) -> bool:
        """True if this outbound frame should be silently discarded."""
        dropped = False
        for drop in self._drops:
            if drop["frame_type"] != frame_type:
                continue
            drop["seen"] += 1
            if drop["after"] < drop["seen"] <= drop["after"] + drop["count"]:
                dropped = True
        return dropped

    def next_beat_delay(self) -> float:
        """Extra sleep before the next heartbeat (0.0 almost always)."""
        self._beats += 1
        return self._delays.get(self._beats, 0.0)


class CoordinatorFaults:
    """Coordinator-side injection state: inbound partitions by worker."""

    def __init__(self, events: list) -> None:
        # worker name -> {after, count, seen}; one window per worker.
        self._partitions: dict[str, dict] = {}
        for ev in events:
            if ev.get("kind") != "partition":
                continue
            self._partitions[str(ev["worker"])] = {
                "after": int(ev.get("after_frames", 0)),
                "count": int(ev.get("count", 400)),
                "seen": 0,
            }

    def __bool__(self) -> bool:
        return bool(self._partitions)

    def drop_inbound(self, worker_name: str, frame_type: str) -> bool:
        """True if this inbound frame should be dropped (and the sender's
        liveness deadline left to expire)."""
        window = self._partitions.get(worker_name)
        if window is None:
            return False
        window["seen"] += 1
        return window["after"] < window["seen"] <= window["after"] + window["count"]
