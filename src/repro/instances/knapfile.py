"""Knapsack instance files (Pisinger's benchmark layout).

The de-facto standard text layout used by the hard-instance generators::

    n
    capacity
    p_1 w_1
    p_2 w_2
    ...

Comment lines starting with ``#`` and blank lines are ignored, so the
files are self-documenting.  Reading sorts items into density order
(the canonical form every part of this library assumes).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.apps.knapsack import KnapsackInstance

__all__ = ["parse_knapsack", "parse_knapsack_text", "write_knapsack"]


def parse_knapsack_text(text: str) -> KnapsackInstance:
    """Parse knapsack file content."""
    tokens: list[str] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        tokens.extend(line.split())
    if len(tokens) < 2:
        raise ValueError("file too short: need item count and capacity")
    n = int(tokens[0])
    capacity = int(tokens[1])
    rest = tokens[2:]
    if len(rest) != 2 * n:
        raise ValueError(
            f"expected {2 * n} profit/weight tokens for {n} items, got {len(rest)}"
        )
    profits = [int(rest[2 * i]) for i in range(n)]
    weights = [int(rest[2 * i + 1]) for i in range(n)]
    return KnapsackInstance.sorted_by_density(profits, weights, capacity)


def parse_knapsack(path: Union[str, Path]) -> KnapsackInstance:
    """Load a knapsack instance file."""
    return parse_knapsack_text(Path(path).read_text())


def write_knapsack(
    inst: KnapsackInstance, path: Union[str, Path], *, comment: str = ""
) -> None:
    """Write an instance in the standard layout (density order)."""
    lines = []
    if comment:
        lines.append(f"# {comment}")
    lines.append(str(inst.n))
    lines.append(str(inst.capacity))
    lines.extend(f"{p} {w}" for p, w in zip(inst.profits, inst.weights))
    Path(path).write_text("\n".join(lines) + "\n")
