"""ClusterBackend: scheduler jobs dispatched cluster-wide.

Implements the service layer's :class:`~repro.service.scheduler.Backend`
protocol on top of a :class:`~repro.cluster.coordinator.ClusterHandle`,
so ``repro serve --backend cluster`` runs every queued search across
whatever workers are connected — local fan-out processes, other
machines, or both.

Failure translation keeps the scheduler's policy intact end to end:

- coordinator job timeout  -> :class:`JobTimeout`
- scheduler cancel event   -> coordinator cancel -> :class:`JobCancelled`
- cluster failure (enumeration worker death, no workers, bad payload)
  -> :class:`WorkerCrash`, which the scheduler retries exactly once —
  so a search that died because one worker crashed mid-enumeration gets
  its second chance on the surviving workers, and the retry resolves
  any coalesced followers just like the process backend's crash path.

One coordinator runs one job at a time, so concurrent scheduler workers
serialise on an internal lock; queueing above that is the scheduler's
job, not this backend's.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from multiprocessing import Process
from typing import Optional

from repro.cluster.coordinator import (
    ClusterError,
    ClusterHandle,
    ClusterJobCancelled,
    ClusterJobTimeout,
)
from repro.cluster.local import job_payload
from repro.cluster.worker import _worker_process_main
from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.runtime.processes import graceful_stop

__all__ = ["ClusterBackend"]


class ClusterBackend:
    """Execute scheduler jobs on a cluster coordinator.

    Args:
        handle: an already-started :class:`ClusterHandle` to attach to;
            None starts an embedded one (owned, shut down by
            :meth:`close`).
        deployment: an elastic
            :class:`~repro.deploy.deployment.ClusterDeployment` to run
            over instead; the backend uses (and on :meth:`close`,
            closes) the deployment's coordinator, and the fleet size is
            the deployment's business — typically an ``adapt()`` loop
            fed by the service queue's depth.  Mutually exclusive with
            ``handle`` and ``local_workers``.
        local_workers: fan out this many localhost worker processes
            (0 means external workers are expected to connect).
        min_workers: block each job until at least this many workers are
            connected (default: ``local_workers`` or 1).
        poll_interval: cancellation poll cadence while a job runs.
        wire_codec: preferred frame body format for an *embedded*
            coordinator and the local fan-out workers (an attached
            handle/deployment keeps its own setting).
    """

    def __init__(
        self,
        handle: Optional[ClusterHandle] = None,
        *,
        deployment=None,
        local_workers: int = 0,
        min_workers: Optional[int] = None,
        worker_wait: float = 20.0,
        poll_interval: float = 0.05,
        wire_codec: str = "binary",
    ) -> None:
        if deployment is not None and (handle is not None or local_workers):
            raise ValueError(
                "pass either a deployment or a handle/local_workers "
                "topology, not both"
            )
        self.deployment = deployment
        if deployment is not None:
            handle = deployment.handle
        self._owns_handle = handle is None
        self.handle = (
            handle if handle is not None
            else ClusterHandle(wire_codec=wire_codec)
        )
        if self._owns_handle:
            self.handle.start()
        self.min_workers = (
            min_workers if min_workers is not None else max(1, local_workers)
        )
        self.worker_wait = worker_wait
        self.poll_interval = poll_interval
        self._lock = threading.Lock()
        self._procs: list[Process] = []
        host, port = self.handle.address
        for i in range(local_workers):
            p = Process(
                target=_worker_process_main,
                args=(host, port, f"svc-{i}", None, None, 2, wire_codec),
                daemon=True,
            )
            p.start()
            self._procs.append(p)

    def execute(
        self,
        job,
        *,
        deadline: Optional[float] = None,
        cancel: Optional[threading.Event] = None,
    ) -> SearchResult:
        """Run one attempt of ``job`` across the cluster."""
        from repro.service.scheduler import JobCancelled, JobTimeout, WorkerCrash

        try:
            payload = self._payload_for(job.spec)
        except ValueError as exc:
            raise WorkerCrash(f"job not clusterable: {exc}") from exc
        with self._lock:
            timeout = (
                None if deadline is None
                else max(0.01, deadline - time.monotonic())
            )
            try:
                self.handle.wait_for_workers(
                    self.min_workers, timeout=self.worker_wait
                )
            except ClusterError as exc:
                raise WorkerCrash(str(exc)) from exc
            # One job runs at a time (we hold the lock), so routing the
            # coordinator's incumbent-improvement callback to this job's
            # progress hook is unambiguous.  Fires on the loop thread —
            # the hook (the scheduler's event sink) is thread-safe.
            self.handle.coordinator.on_incumbent = job.on_incumbent
            try:
                future = self.handle.run_job_future(payload, timeout=timeout)
                while True:
                    try:
                        return future.result(timeout=self.poll_interval)
                    except concurrent.futures.TimeoutError:
                        if cancel is not None and cancel.is_set():
                            self.handle.cancel_job("cancelled by scheduler")
                            try:
                                future.result(timeout=5.0)
                            except Exception:
                                pass
                            raise JobCancelled
                    except ClusterJobTimeout as exc:
                        raise JobTimeout from exc
                    except ClusterJobCancelled as exc:
                        raise JobCancelled from exc
                    except Exception as exc:
                        raise WorkerCrash(f"{type(exc).__name__}: {exc}") from exc
            finally:
                self.handle.coordinator.on_incumbent = None

    @staticmethod
    def _payload_for(spec) -> dict:
        """Reduce a service :class:`JobSpec` to a wire job definition.

        The instance name doubles as the spec-factory argument (the
        registry is deterministic on every node), the search type is
        resolved exactly as :func:`run_library_search` resolves it, and
        the budget, stacksteal and ordered skeletons are accepted —
        the coordinations whose work movement the cluster implements.
        """
        from repro.core.searchtypes import make_search_type
        from repro.instances.library import library_spec_factory, spec_for

        if spec.skeleton not in ("budget", "stacksteal", "ordered"):
            raise ValueError(
                f"the cluster backend runs the 'budget', 'stacksteal' or "
                f"'ordered' skeletons, not {spec.skeleton!r}"
            )
        _, default_type, default_kwargs = spec_for(spec.instance)
        stype_name = spec.search_type or default_type
        kwargs = dict(default_kwargs) if stype_name == default_type else {}
        kwargs.update(spec.stype_kwargs)
        stype = make_search_type(stype_name, **kwargs)
        params = SkeletonParams(**dict(spec.params)) if spec.params else SkeletonParams()
        return job_payload(
            library_spec_factory,
            (spec.instance,),
            stype,
            coordination=spec.skeleton,
            budget=params.budget,
            share_poll=params.share_poll,
            d_cutoff=params.d_cutoff,
            chunked=params.chunked,
        )

    def load_stats(self) -> dict:
        """The coordinator's point-in-time load snapshot (queued/leased
        tasks, per-worker liveness) — surfaced on the gateway's
        ``/metrics`` endpoint."""
        return self.handle.load_stats()

    def close(self) -> None:
        """Drain local workers / the deployment and (if owned) stop the
        coordinator."""
        if self.deployment is not None:
            self.deployment.close()
        if self._owns_handle:
            self.handle.shutdown(drain_workers=True)
        for p in self._procs:
            p.join(timeout=3.0)
            graceful_stop(p, grace=1.0)
        self._procs.clear()
