"""The simulator's cost model.

All simulated durations are in abstract *work units*; one unit is the
cost of processing one search-tree node in the hand-specialised
implementation (roughly a microsecond on the paper's hardware).  The
defaults encode the relative magnitudes that drive the paper's observed
behaviour:

- a node expansion dominates a backtrack,
- intra-locality communication is an order of magnitude cheaper than
  inter-locality communication (shared memory vs Ethernet),
- bound broadcast is asynchronous and slower across localities, so
  remote workers prune on stale bounds for a while (§4.3),
- the *generic framework* pays per-node overhead over hand-written code
  (node copying, generator indirection — Table 1's "cost of
  generality"), plus per-task bookkeeping (workpool entries, scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Durations (work units) charged by the simulated cluster.

    Attributes:
        node_cost: processing + expanding one node, specialised code.
        backtrack_cost: popping an exhausted generator.
        framework_node_overhead: *additional* per-node cost of the
            generic skeleton (lazy generator allocation, node copies).
            Zero models a hand-specialised implementation.
        spawn_cost: creating a task and pushing it to a workpool.
        schedule_cost: popping a task and installing it on a worker.
        steal_latency_local: one-way message between same-locality
            workers / pools.
        steal_latency_remote: one-way message between localities.
        broadcast_latency_local / _remote: delay until a strengthened
            incumbent becomes visible on the publishing / other
            localities.
        steal_retry_backoff: initial idle retry delay for thieves; grows
            exponentially to ``steal_retry_cap`` while steals fail.
    """

    node_cost: float = 1.0
    backtrack_cost: float = 0.1
    framework_node_overhead: float = 0.08
    spawn_cost: float = 0.4
    schedule_cost: float = 0.4
    steal_latency_local: float = 2.0
    steal_latency_remote: float = 25.0
    broadcast_latency_local: float = 1.0
    broadcast_latency_remote: float = 20.0
    steal_retry_backoff: float = 2.0
    steal_retry_cap: float = 64.0

    def __post_init__(self) -> None:
        if self.node_cost <= 0:
            raise ValueError("node_cost must be positive")
        for name in (
            "backtrack_cost",
            "framework_node_overhead",
            "spawn_cost",
            "schedule_cost",
            "steal_latency_local",
            "steal_latency_remote",
            "broadcast_latency_local",
            "broadcast_latency_remote",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.steal_retry_backoff <= 0 or self.steal_retry_cap < self.steal_retry_backoff:
            raise ValueError("invalid steal retry backoff parameters")

    def per_node(self, size: int = 1) -> float:
        """Cost of processing a node of weight ``size`` under the
        generic skeleton."""
        return (self.node_cost + self.framework_node_overhead) * size

    def specialised(self) -> "CostModel":
        """This model with all framework overheads removed — the
        hand-written baseline of Table 1."""
        return replace(self, framework_node_overhead=0.0, spawn_cost=self.spawn_cost * 0.5)

    def steal_latency(self, local: bool) -> float:
        """One-way steal-message latency for the locality relation."""
        return self.steal_latency_local if local else self.steal_latency_remote

    def broadcast_latency(self, local: bool) -> float:
        """Bound-broadcast delay for the locality relation."""
        return self.broadcast_latency_local if local else self.broadcast_latency_remote
