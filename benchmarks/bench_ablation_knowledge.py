"""Ablation: bound-broadcast latency (§4.3 knowledge management).

YewPar tolerates stale bounds: "the local bound does not need to be
up-to-date to maintain correctness ... at the cost of missing pruning
opportunities".  This bench sweeps the inter-locality broadcast latency
on branch-and-bound MaxClique and measures the cost of that staleness.

Expected shape: the result is identical at every latency (correctness),
while expanded nodes grow with latency (missed pruning), steeply once
the latency is comparable to the whole runtime.
"""

from dataclasses import replace

from repro.core.params import SkeletonParams

from ._harness import COST, fmt_row, run_parallel, sequential_baseline, write_result

INSTANCE = "sanr100-1"
PARAMS = SkeletonParams(localities=8, workers_per_locality=15, d_cutoff=2)
LATENCIES = [1.0, 20.0, 200.0, 2000.0, 20000.0]


def test_ablation_broadcast_latency(benchmark):
    results = {}

    def run_all():
        for latency in LATENCIES:
            cost = replace(COST, broadcast_latency_remote=latency)
            results[latency] = run_parallel(INSTANCE, "depthbounded", PARAMS, cost=cost)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    _, seq = sequential_baseline(INSTANCE)
    widths = [12, 10, 12, 10]
    lines = [
        f"Ablation: remote bound-broadcast latency ({INSTANCE}, "
        f"{PARAMS.workers} workers, Depth-Bounded d=2)",
        fmt_row(["latency", "nodes", "vtime", "optimum"], widths),
    ]
    for latency in LATENCIES:
        res = results[latency]
        lines.append(
            fmt_row(
                [f"{latency:g}", res.metrics.nodes, f"{res.virtual_time:.0f}", res.value],
                widths,
            )
        )
    lines.append(
        f"sequential nodes: {seq.metrics.nodes}; correctness holds at every "
        "latency, pruning degrades gracefully (paper §4.3)"
    )
    write_result("ablation_knowledge", lines)

    values = {res.value for res in results.values()}
    assert values == {seq.value}, "staleness must never change the optimum"
    assert results[LATENCIES[-1]].metrics.nodes >= results[LATENCIES[0]].metrics.nodes