"""Table 1 (columns 5-7): Depth-Bounded skeleton vs hand-coded parallel.

The paper compares the Depth-Bounded skeleton (15 workers) against an
OpenMP implementation that spawns one task per depth-1 node, reporting
a geometric-mean slowdown of +16.6%.  The comparison isolates *parallel
framework* overhead: both sides run the identical search decomposition.

Here both sides execute on the simulated cluster with d_cutoff = 1
(matching the OpenMP depth-1 task pragma): the "hand-coded" side uses
the specialised cost model (no per-node framework overhead, cheaper
task bookkeeping) and the skeleton side uses the full generic cost
model.  The virtual-time ratio is the modelled cost of generality under
parallel execution; the same-tree guarantee makes it an apples-to-
apples comparison.
"""

from repro.core.params import SkeletonParams
from repro.util.stats import geometric_mean

from ._harness import COST, fmt_row, run_parallel, suite_table1, write_result


def test_table1_parallel_overhead(benchmark):
    instances = suite_table1()
    params = SkeletonParams(localities=1, workers_per_locality=15, d_cutoff=1)
    generic: dict[str, float] = {}
    hand: dict[str, float] = {}
    nodes: dict[str, int] = {}

    def run_all():
        for name in instances:
            res_g = run_parallel(name, "depthbounded", params, cost=COST)
            res_h = run_parallel(
                name, "depthbounded", params, cost=COST.specialised()
            )
            generic[name] = res_g.virtual_time
            hand[name] = res_h.virtual_time
            nodes[name] = res_g.metrics.nodes

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = [14, 12, 12, 10, 9]
    lines = [
        "Table 1 (parallel, 15 workers): hand-coded vs Depth-Bounded skeleton",
        "(virtual work units; d_cutoff=1 mirrors the OpenMP depth-1 tasks)",
        fmt_row(["instance", "hand", "skeleton", "slowdown%", "nodes"], widths),
    ]
    ratios = []
    for name in instances:
        ratio = generic[name] / hand[name]
        ratios.append(ratio)
        lines.append(
            fmt_row(
                [
                    name,
                    f"{hand[name]:.0f}",
                    f"{generic[name]:.0f}",
                    f"{(ratio - 1) * 100:+.1f}",
                    nodes[name],
                ],
                widths,
            )
        )
    geo = (geometric_mean(ratios) - 1.0) * 100.0
    lines.append(f"geometric mean slowdown: {geo:+.1f}%  (paper: +16.6% for C++/OpenMP)")
    write_result("table1_par_overhead", lines)

    # The generic skeleton must cost more than the specialised model,
    # but the overhead should stay moderate (the paper's point).
    assert 0.0 < geo < 60.0
