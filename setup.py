"""Legacy setup shim: the execution environment is offline and lacks the
``wheel`` package, so editable installs must go through
``setup.py develop`` rather than PEP 517.  Metadata mirrors pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Python reproduction of 'YewPar: Skeletons for Exact Combinatorial "
        "Search' (PPoPP 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
