"""Concurrency-aware static analysis for the repro codebase.

The verify harness (:mod:`repro.verify`) attacks "same answer under
any interleaving" dynamically; this package attacks the *source code*
statically with five repo-specific rules — lock discipline over
``# guarded-by`` annotations, blocking calls in async bodies, wire
protocol exhaustiveness, spec-factory importability and cross-thread
loop call safety — plus a dynamic lock-acquisition-order tracer
(:mod:`repro.analysis.lockorder`) that turns the test suite into a
deadlock detector.  Entry points: ``repro analyze`` (CLI) and
:func:`analyze_paths` (programmatic, used by the self-test in tier-1).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.config import (
    AnalyzeConfig,
    discover_files,
    load_config,
)
from repro.analysis.core import (
    AnalysisReport,
    Project,
    Rule,
    run_analysis,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import all_rules, resolve_rules

__all__ = [
    "AnalysisReport",
    "AnalyzeConfig",
    "Finding",
    "Project",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "apply_baseline",
    "discover_files",
    "load_baseline",
    "load_config",
    "resolve_rules",
    "run_analysis",
    "save_baseline",
]


def analyze_paths(
    root: Union[str, Path],
    paths: Optional[Sequence[str]] = None,
    *,
    rules: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Convenience wrapper: discover, load and analyze in one call.

    *paths* overrides the pyproject ``include`` list; *rules* selects
    a subset by name (suppression hygiene is then skipped, see
    :func:`repro.analysis.core.run_analysis`).
    """
    root = Path(root)
    config = load_config(root)
    files = discover_files(root, config, paths)
    project = Project.load(root, files)
    selected = resolve_rules(rules)
    return run_analysis(
        project,
        selected,
        check_suppression_hygiene=not rules,
    )
