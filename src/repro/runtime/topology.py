"""Cluster topology: localities and workers.

Mirrors the paper's experimental setup — a set of *localities* (physical
machines), each hosting a fixed number of search workers (the paper uses
15 workers on 16-core machines, reserving one core for HPX's manager
thread, which the simulator does not need to model explicitly).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """``localities`` machines x ``workers_per_locality`` workers each.

    Workers are numbered globally ``0 .. total_workers-1``; worker ``w``
    lives on locality ``w // workers_per_locality``.
    """

    localities: int = 1
    workers_per_locality: int = 15

    def __post_init__(self) -> None:
        if self.localities < 1:
            raise ValueError("need at least one locality")
        if self.workers_per_locality < 1:
            raise ValueError("need at least one worker per locality")

    @property
    def total_workers(self) -> int:
        return self.localities * self.workers_per_locality

    def locality_of(self, worker: int) -> int:
        """The locality hosting global worker id ``worker``."""
        if not 0 <= worker < self.total_workers:
            raise ValueError(f"worker {worker} out of range")
        return worker // self.workers_per_locality

    def workers_of(self, locality: int) -> range:
        """Global worker ids hosted on ``locality``."""
        if not 0 <= locality < self.localities:
            raise ValueError(f"locality {locality} out of range")
        start = locality * self.workers_per_locality
        return range(start, start + self.workers_per_locality)

    def is_local(self, worker_a: int, worker_b: int) -> bool:
        """True if the two workers share a locality (cheap communication)."""
        return self.locality_of(worker_a) == self.locality_of(worker_b)
