#!/usr/bin/env python
"""Generate docs/api.md — a compact API reference from docstrings.

Walks the installed ``repro`` package and emits, per module, the public
classes (with public methods) and functions with their signatures and
first docstring paragraph.  Run after API changes:

    python scripts/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro

OUT = Path(__file__).parent.parent / "docs" / "api.md"


def first_paragraph(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n\n")[0].replace("\n", " ").strip()


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def document_module(module) -> list[str]:
    lines: list[str] = []
    members = [
        (name, obj)
        for name, obj in vars(module).items()
        if not name.startswith("_")
        and getattr(obj, "__module__", None) == module.__name__
        and (inspect.isclass(obj) or inspect.isfunction(obj))
    ]
    if not members:
        return lines
    lines.append(f"## `{module.__name__}`")
    lines.append("")
    lines.append(first_paragraph(module))
    lines.append("")
    for name, obj in members:
        if inspect.isclass(obj):
            lines.append(f"### class `{name}{signature_of(obj)}`")
            lines.append("")
            lines.append(first_paragraph(obj))
            lines.append("")
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(member):
                    continue
                lines.append(
                    f"- `{mname}{signature_of(member)}` — {first_paragraph(member)}"
                )
            lines.append("")
        else:
            lines.append(f"### `{name}{signature_of(obj)}`")
            lines.append("")
            lines.append(first_paragraph(obj))
            lines.append("")
    return lines


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Generated from docstrings by `scripts/gen_api_docs.py`; regenerate",
        "after API changes.  Module docstrings carry the design discussion —",
        "this file is the signature index.",
        "",
    ]
    for module in walk_modules():
        lines.extend(document_module(module))
    OUT.write_text("\n".join(lines) + "\n")
    print(f"wrote {OUT} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
