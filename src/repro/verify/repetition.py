"""Repetition oracle: the same cell, N times — the answers must agree.

The differential harness (:mod:`repro.verify.differential`) checks each
backend *against the sequential oracle*; this module checks each
backend *against itself*.  ``run_repetition`` executes every
(instance, worker-count) cell ``repeat`` times and demands:

- **every coordination**: the objective value and decision flag are
  identical across repetitions and across worker counts (a racy
  incumbent merge shows up here as run-to-run wobble);
- **ordered on the replicable runtimes** (processes, cluster): the
  *full fingerprint* — value, witness, node/prune/backtrack counts and
  max depth — is bit-identical across repetitions, across worker
  counts, and equal to :func:`repro.core.ordered.ordered_reference_search`.
  That is the Replicable BnB guarantee (Archibald et al.): same seed,
  any parallelism, same search — enforced, not hoped for;
- **ordered under chaos** (cluster): a ``kill_worker`` fault plan must
  not change the fingerprint either — re-leased ordered tasks are pure
  functions of (root, bound), so a worker death is invisible in the
  final counts.

``metrics.reassigned`` is deliberately *outside* the fingerprint: it
counts speculative re-runs and fault re-leases, which depend on arrival
timing by design.  Everything the paper calls "the search performed"
(nodes, prunes, the answer) is inside.

Entry point: ``repro verify --repeat N [--coordination C]``.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Optional

from repro.core.ordered import ordered_reference_search
from repro.core.results import SearchResult, _encode_node
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.util.rng import SplitMix64
from repro.verify.chaos import FaultPlan
from repro.verify.differential import BackendConfig, run_config
from repro.verify.generators import (
    FAMILIES,
    Instance,
    sample_instance,
    search_setup,
)

__all__ = [
    "REPLICABLE_BACKENDS",
    "result_fingerprint",
    "run_repetition",
]

# Runtimes whose ordered coordination implements the fixed-bound ledger
# (bit-identical node counts); the simulator's ordered pool is
# deterministic per seed but its counts legitimately vary with the
# worker count, so it is held to the value-stability bar only.
REPLICABLE_BACKENDS = ("processes", "cluster")

_WORKER_COUNTS = (1, 2, 4)

# The validated chaos round: kill the second worker after its third
# task, leaving two survivors to finish the job.  Pinned (not drawn)
# so "the chaos cell failed" is re-runnable verbatim.
_CHAOS_WORKERS = 3
_CHAOS_PLAN = {
    "events": [{"kind": "kill_worker", "worker": "local-1", "at_task": 3}]
}


def _canon(value) -> str:
    """Canonical JSON form of a value/witness for exact comparison."""
    return json.dumps(_encode_node(value), sort_keys=True)


def result_fingerprint(result: SearchResult, *, counts: bool = False) -> dict:
    """The comparable identity of a search result.

    With ``counts=False`` this is the *answer* (value and decision
    flag — the witness is excluded, because non-ordered coordinations
    may legitimately return a different equal-value witness depending
    on arrival order); with ``counts=True`` it is the *search* — the
    answer, the witness (ordered pins the tie-break, so it is part of
    the promise), and the node/prune/backtrack/max-depth counters that
    the ordered coordination reproduces bit-identically.
    """
    fp = {
        "value": _canon(result.value),
        "found": result.found,
    }
    if counts:
        m = result.metrics
        fp["node"] = _canon(result.node)
        fp["nodes"] = m.nodes
        fp["prunes"] = m.prunes
        fp["backtracks"] = m.backtracks
        fp["max_depth"] = m.max_depth
    return fp


def _cell_config(
    backend: str,
    coordination: str,
    workers: int,
    knobs: dict,
    *,
    fault_plan: Optional[FaultPlan] = None,
) -> BackendConfig:
    """One repetition cell: shared per-round knobs + a worker count."""
    if backend == "sequential":
        return BackendConfig("sequential", "sequential")
    merged = dict(knobs)
    if backend == "sim":
        merged.update(localities=1, workers_per_locality=max(1, workers),
                      spawn_probability=0.1)
    elif backend == "processes":
        merged["n_processes"] = workers
    elif backend == "cluster":
        merged["cluster_workers"] = workers
    else:
        raise ValueError(f"unknown backend {backend!r}")
    return BackendConfig(backend, coordination, merged, fault_plan=fault_plan)


def _diff(label_a: str, a: dict, label_b: str, b: dict) -> list[str]:
    """Field-by-field fingerprint mismatches, one issue line each."""
    issues = []
    for key in a:
        if a[key] != b[key]:
            issues.append(
                f"{key} differs: {label_a} -> {a[key]!r}, "
                f"{label_b} -> {b[key]!r}"
            )
    return issues


def run_repetition(
    *,
    backend: str = "cluster",
    coordination: str = "ordered",
    seed: int = 0,
    rounds: int = 3,
    repeat: int = 5,
    worker_counts: tuple = _WORKER_COUNTS,
    chaos: Optional[bool] = None,
    artifact_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    cluster_timeout: float = 60.0,
) -> int:
    """The ``repro verify --repeat`` driver.  Returns an exit code.

    Each round draws one seeded instance and runs it ``repeat`` times
    at every worker count (plus, for the cluster backend, one
    ``kill_worker`` chaos cell) under one shared knob draw.  ``chaos``
    defaults to on for the cluster backend — fault tolerance that
    changes the answer is not fault tolerance — and is unavailable
    elsewhere.
    """
    emit = log if log is not None else (lambda line: None)
    if backend not in ("sequential", "sim", "processes", "cluster"):
        raise ValueError(f"unknown backend {backend!r}")
    if chaos is None:
        chaos = backend == "cluster"
    if chaos and backend != "cluster":
        raise ValueError("chaos repetition applies to the cluster backend")
    if repeat < 1:
        raise ValueError("repeat must be >= 1")

    replicable = (
        coordination == "ordered" and backend in REPLICABLE_BACKENDS
    )
    rng = SplitMix64((seed << 4) ^ 0x0DD5EED5)
    failures = 0
    for round_no in range(rounds):
        inst = sample_instance(FAMILIES[round_no % len(FAMILIES)], rng)
        spec, kind, stype_kwargs = search_setup(inst)
        stype = make_search_type(kind, **stype_kwargs)
        knobs = {
            "seed": rng.randrange(1 << 16),
            "d_cutoff": 1 + rng.randrange(3),
            "budget": (1, 2, 5, 20)[rng.randrange(4)],
            "share_poll": (4, 16, 64)[rng.randrange(3)],
        }
        if backend == "cluster":
            knobs["wire_codec"] = ("json", "binary")[rng.randrange(2)]

        # The cross-cell truth this round's cells are held to.
        if replicable:
            reference = result_fingerprint(
                ordered_reference_search(
                    spec, stype, d_cutoff=knobs["d_cutoff"]
                ),
                counts=True,
            )
        else:
            reference = result_fingerprint(sequential_search(spec, stype))

        cells = [
            (f"w={w}", _cell_config(backend, coordination, w, knobs))
            for w in (worker_counts if backend != "sequential" else (1,))
        ]
        if chaos and (coordination == "ordered" or kind != "enumeration"):
            # Enumeration only survives worker death under ordered
            # (pure re-runnable tasks); elsewhere it fails loudly by
            # design, so the chaos cell would test the wrong thing.
            cells.append((
                f"w={_CHAOS_WORKERS} chaos[kill_worker local-1]",
                _cell_config(
                    backend, coordination, _CHAOS_WORKERS, knobs,
                    fault_plan=FaultPlan(seed, list(_CHAOS_PLAN["events"])),
                ),
            ))

        issues: list[str] = []
        cell_prints: dict[str, list] = {}
        for cell_label, cfg in cells:
            prints = []
            for rep in range(repeat):
                try:
                    result = run_config(
                        inst, cfg, cluster_timeout=cluster_timeout
                    )
                except Exception as exc:  # noqa: BLE001 — crash = finding
                    issues.append(
                        f"{cell_label} rep {rep}: raised "
                        f"{type(exc).__name__}: {exc}"
                    )
                    prints.append(None)
                    continue
                prints.append(result_fingerprint(result, counts=replicable))
            cell_prints[cell_label] = prints
            good = [p for p in prints if p is not None]
            for rep, fp in enumerate(prints):
                if fp is not None and good and fp != good[0]:
                    issues += _diff(
                        f"{cell_label} rep {prints.index(good[0])}",
                        good[0], f"{cell_label} rep {rep}", fp,
                    )
        # Across cells (worker counts and the chaos round) every
        # surviving fingerprint must match the reference.
        for cell_label, prints in cell_prints.items():
            for fp in prints:
                if fp is not None and fp != reference:
                    issues += _diff("reference", reference, cell_label, fp)
                    break  # one line set per cell is enough signal

        issues = list(dict.fromkeys(issues))  # dedupe, keep order
        label = f"{backend} {coordination} x{repeat}"
        if not issues:
            emit(
                f"round {round_no}: {inst.describe()} | {label}: "
                f"{len(cells)} cell(s) stable"
            )
            continue
        failures += 1
        emit(f"round {round_no}: {inst.describe()} | {label}: FAIL")
        for issue in issues:
            emit(f"  {issue}")
        _write_artifact(
            artifact_dir, round_no, backend, coordination, inst,
            knobs, repeat, cell_prints, reference, issues,
        )
    if failures:
        emit(
            f"repetition: {failures} unstable round(s) over {rounds} "
            f"round(s)"
        )
        return 1
    emit(f"repetition: all {rounds} round(s) stable under x{repeat}")
    return 0


def _write_artifact(
    artifact_dir: Optional[str],
    round_no: int,
    backend: str,
    coordination: str,
    inst: Instance,
    knobs: dict,
    repeat: int,
    cell_prints: dict,
    reference: dict,
    issues: list,
) -> None:
    if not artifact_dir:
        return
    os.makedirs(artifact_dir, exist_ok=True)
    path = os.path.join(
        artifact_dir, f"repeat-r{round_no}-{backend}-{coordination}.json"
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "round": round_no,
                "backend": backend,
                "coordination": coordination,
                "instance": inst.to_dict(),
                "knobs": dict(knobs),
                "repeat": repeat,
                "reference": reference,
                "fingerprints": cell_prints,
                "issues": list(issues),
            },
            fh,
            indent=2,
        )
