"""Tests for the seeded graph generators."""

import pytest

from repro.instances.graphs import (
    brock_like,
    cycle_graph,
    p_hat_like,
    planted_clique,
    uniform_graph,
)
from repro.util.bitset import bitset_from_iterable


class TestUniform:
    def test_deterministic(self):
        assert uniform_graph(20, 0.5, 7) == uniform_graph(20, 0.5, 7)

    def test_seed_changes_graph(self):
        assert uniform_graph(20, 0.5, 7) != uniform_graph(20, 0.5, 8)

    def test_density_tracks_p(self):
        g = uniform_graph(60, 0.3, 9)
        assert 0.2 < g.density() < 0.4

    def test_extremes(self):
        assert uniform_graph(10, 0.0, 1).edge_count() == 0
        assert uniform_graph(10, 1.0, 1).edge_count() == 45

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            uniform_graph(5, 1.5, 1)


class TestPlanted:
    def test_contains_planted_clique(self):
        g = planted_clique(30, 0.2, 8, seed=3)
        # find it by checking every vertex subset is too slow; instead
        # verify via the solver in test_maxclique; here check edge bound:
        # a planted clique forces at least C(8,2) edges
        assert g.edge_count() >= 28

    def test_deterministic(self):
        assert planted_clique(30, 0.2, 8, 3) == planted_clique(30, 0.2, 8, 3)

    def test_k_exceeds_n_rejected(self):
        with pytest.raises(ValueError):
            planted_clique(5, 0.5, 6, 1)


class TestBrock:
    def test_contains_k_clique(self):
        from repro.apps.kclique import solve_kclique

        g = brock_like(40, 0.5, 10, seed=5)
        assert solve_kclique(g, 10).found is True

    def test_degrees_camouflaged(self):
        # Clique members' degrees stay near the background mean.
        g = brock_like(60, 0.5, 12, seed=6)
        degs = sorted(g.degree(v) for v in range(g.n))
        # no obvious 12-vertex degree outlier block at the top
        assert degs[-1] - degs[0] < 35

    def test_k_exceeds_n_rejected(self):
        with pytest.raises(ValueError):
            brock_like(5, 0.5, 6, 1)


class TestPHat:
    def test_wide_degree_spread(self):
        g = p_hat_like(60, 0.1, 0.9, seed=7)
        degs = [g.degree(v) for v in range(g.n)]
        assert max(degs) - min(degs) > 15

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            p_hat_like(10, 0.9, 0.1, 1)


class TestCycle:
    def test_structure(self):
        g = cycle_graph(5)
        assert g.edge_count() == 5
        assert all(g.degree(v) == 2 for v in range(5))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            cycle_graph(2)
