"""Tests for skeleton composition (the 12 combinations, Figure 3)."""

import pytest

from repro.core import skeletons as sk
from repro.core.params import SkeletonParams
from repro.core.searchtypes import Decision
from repro.core.skeletons import ALL_SKELETONS, Skeleton, make_skeleton


class TestComposition:
    def test_skeleton_registry(self):
        # The paper's 12 (4 coordinations x 3 types) plus two extension
        # coordinations (Random, Ordered) x 3 types.
        assert len(ALL_SKELETONS) == 18
        paper_coords = ("sequential", "depthbounded", "stacksteal", "budget")
        paper_12 = [k for k in ALL_SKELETONS if k.split("-")[0] in paper_coords]
        assert len(paper_12) == 12

    def test_names(self):
        assert "depthbounded-optimisation" in ALL_SKELETONS
        assert "sequential-enumeration" in ALL_SKELETONS

    def test_named_constants_exported(self):
        # Listing-5 style constants exist for every combination.
        assert sk.StackStealingOptimisation.coordination == "stacksteal"
        assert sk.DepthBoundedEnumeration.search_type == "enumeration"
        assert sk.BudgetDecision.search_type == "decision"
        assert sk.SequentialOptimisation.coordination == "sequential"
        assert sk.RandomSpawnEnumeration.coordination == "random"

    def test_unknown_coordination_rejected(self):
        with pytest.raises(ValueError):
            Skeleton("bestfirst", "optimisation")

    def test_unknown_search_type_rejected(self):
        with pytest.raises(ValueError):
            Skeleton("budget", "approximation")

    def test_make_skeleton(self):
        s = make_skeleton("budget", "decision")
        assert s.name == "budget-decision"


class TestSearchDispatch:
    def test_sequential_runs_directly(self, toy_spec):
        res = sk.SequentialOptimisation.search(toy_spec)
        assert res.value == 7
        assert res.virtual_time is None

    def test_parallel_runs_on_cluster(self, toy_spec):
        params = SkeletonParams(localities=1, workers_per_locality=2, d_cutoff=1)
        res = sk.DepthBoundedOptimisation.search(toy_spec, params)
        assert res.value == 7
        assert res.virtual_time is not None
        assert res.workers == 2

    def test_decision_kwargs_forwarded(self, toy_spec):
        res = sk.SequentialDecision.search(toy_spec, target=5)
        assert res.found is True

    def test_prebuilt_search_type(self, toy_spec):
        res = sk.SequentialDecision.search(toy_spec, stype=Decision(target=5))
        assert res.found is True

    def test_stype_and_kwargs_conflict(self, toy_spec):
        with pytest.raises(ValueError):
            sk.SequentialDecision.search(toy_spec, stype=Decision(target=5), target=3)

    def test_mismatched_stype_rejected(self, toy_spec):
        with pytest.raises(ValueError):
            sk.SequentialOptimisation.search(toy_spec, stype=Decision(target=5))


class TestTopLevelSearch:
    def test_search_function(self, toy_spec):
        from repro import search

        res = search(toy_spec, skeleton="stacksteal", search_type="optimisation",
                     params=SkeletonParams(localities=1, workers_per_locality=2))
        assert res.value == 7

    def test_search_defaults_sequential(self, toy_spec):
        from repro import search

        res = search(toy_spec)
        assert res.workers == 1


class TestRandomCoordination:
    """The §4.2 extension: random task creation via the generic (spawn)."""

    def test_matches_sequential(self, toy_spec):
        params = SkeletonParams(
            localities=1, workers_per_locality=3, spawn_probability=0.3
        )
        res = sk.RandomSpawnOptimisation.search(toy_spec, params)
        assert res.value == 7

    def test_spawn_rate_scales_with_probability(self):
        from repro.apps.maxclique import maxclique_spec
        from repro.instances.graphs import uniform_graph

        spec = maxclique_spec(uniform_graph(25, 0.5, seed=12))
        lo = sk.RandomSpawnEnumeration.search(
            spec, SkeletonParams(localities=1, workers_per_locality=3,
                                 spawn_probability=0.01))
        hi = sk.RandomSpawnEnumeration.search(
            spec, SkeletonParams(localities=1, workers_per_locality=3,
                                 spawn_probability=0.4))
        assert hi.metrics.spawns > lo.metrics.spawns
        assert hi.value == lo.value  # enumeration is spawn-invariant

    def test_deterministic_per_seed(self, toy_spec):
        params = SkeletonParams(localities=1, workers_per_locality=2,
                                spawn_probability=0.5)
        from repro.core.searchtypes import Enumeration

        a = sk.RandomSpawnEnumeration.search(toy_spec, params)
        b = sk.RandomSpawnEnumeration.search(toy_spec, params)
        assert a.metrics.spawns == b.metrics.spawns
        assert a.virtual_time == b.virtual_time
