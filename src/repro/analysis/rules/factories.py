"""factory-imports: every spec-factory reference actually resolves.

Cluster jobs ship search-space factories by name
(``module:qualname``, built by ``protocol.factory_path`` and resolved
on the worker by ``protocol.resolve_factory``).  A typo'd or moved
factory only explodes when a worker finally leases the job — this rule
moves that failure to analysis time by checking:

- string literals shaped like ``repro.<module>:<qualname>`` (outside
  docstrings) import and resolve via :func:`importlib.import_module`
  plus ``getattr`` chains;
- names passed as ``spec_factory=``/``factory=`` keywords or as the
  argument of ``factory_path(...)`` resolve through the module's
  imports, and the *imported* attribute really exists — a
  from-import of a function that was renamed upstream is caught here;
- such names must be module-level callables: a lambda or closure has
  no stable ``module:qualname`` address and cannot cross the wire.

Local variables (e.g. a factory picked at runtime inside the CLI) are
skipped — only references the checker can resolve statically are
judged.
"""

from __future__ import annotations

import ast
import importlib
import re
from typing import Iterable, Iterator, Optional

from repro.analysis.core import Rule, SourceFile
from repro.analysis.findings import Finding

__all__ = ["FactoryImportsRule"]

_FACTORY_STR = re.compile(
    r"^repro(\.[A-Za-z_]\w*)+:[A-Za-z_]\w*(\.[A-Za-z_]\w*)*$"
)
_FACTORY_KEYWORDS = ("spec_factory", "factory")


def _resolve_path(path: str) -> Optional[str]:
    """Import ``module:qualname``; returns an error string or None."""
    module_name, _, qualname = path.partition(":")
    try:
        module = importlib.import_module(module_name)
    except Exception as exc:  # ImportError and anything import-time
        return f"module '{module_name}' does not import: {exc}"
    obj = module
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            return (
                f"'{module_name}' has no attribute"
                f" '{part}' (resolving '{qualname}')"
            )
    return None


class FactoryImportsRule(Rule):
    name = "factory-imports"
    description = (
        "module:qualname factory references and spec_factory="
        " arguments resolve to importable module-level callables"
    )

    def check_file(self, src: SourceFile) -> Iterable[Finding]:
        """Resolve every ``module:qualname`` factory reference."""
        docstrings = self._docstring_nodes(src.tree)
        imports = self._import_map(src.tree)
        module_defs = {
            node.name
            for node in src.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and id(node) not in docstrings
                and _FACTORY_STR.match(node.value)
            ):
                error = _resolve_path(node.value)
                if error:
                    yield Finding(
                        path=src.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=self.name,
                        message=(
                            f"factory reference '{node.value}' does"
                            f" not resolve: {error}"
                        ),
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    src, node, imports, module_defs
                )

    # -- helpers ------------------------------------------------------------

    def _docstring_nodes(self, tree: ast.Module) -> set[int]:
        ids: set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(
                node,
                (
                    ast.Module,
                    ast.ClassDef,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                ),
            ):
                continue
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
        return ids

    def _import_map(self, tree: ast.Module) -> dict[str, tuple[str, str]]:
        """local name -> (module, attr) for from-imports; attr '' for
        whole-module imports."""
        mapping: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    mapping[local] = (item.name, "")
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative imports: skip, not addressable
                    continue
                module = node.module or ""
                for item in node.names:
                    local = item.asname or item.name
                    mapping[local] = (module, item.name)
        return mapping

    def _check_call(
        self,
        src: SourceFile,
        call: ast.Call,
        imports: dict[str, tuple[str, str]],
        module_defs: set[str],
    ) -> Iterator[Finding]:
        candidates: list[ast.expr] = []
        func_name = None
        if isinstance(call.func, ast.Name):
            func_name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            func_name = call.func.attr
        if func_name == "factory_path" and call.args:
            candidates.append(call.args[0])
        for kw in call.keywords:
            if kw.arg in _FACTORY_KEYWORDS:
                candidates.append(kw.value)
        for value in candidates:
            if isinstance(value, ast.Lambda):
                yield Finding(
                    path=src.rel,
                    line=value.lineno,
                    col=value.col_offset,
                    rule=self.name,
                    message=(
                        "a lambda has no module:qualname address and"
                        " cannot be shipped as a spec factory"
                    ),
                )
                continue
            if not isinstance(value, ast.Name):
                continue  # dynamic expression: not statically judged
            name = value.id
            if name in module_defs:
                continue  # defined here at module level: addressable
            if name not in imports:
                continue  # a local/parameter: not statically judged
            module, attr = imports[name]
            target = f"{module}:{attr}" if attr else f"{module}:__name__"
            error = _resolve_path(target)
            if error:
                yield Finding(
                    path=src.rel,
                    line=value.lineno,
                    col=value.col_offset,
                    rule=self.name,
                    message=(
                        f"spec factory '{name}' (from {target})"
                        f" does not resolve: {error}"
                    ),
                )
