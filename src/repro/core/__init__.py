"""The YewPar skeleton library core (paper Section 4).

Composition model (Figure 3):

    Search Skeleton     = Search Coordination + Search Type
    Search Application  = Search Skeleton + Lazy Node Generator

Users write a Lazy Node Generator (:mod:`repro.core.nodegen`) and an
objective/bound, bundle them in a :class:`SearchSpec`, and hand the spec
to one of the 12 skeletons (:mod:`repro.core.skeletons`).
"""

from repro.core.nodegen import (
    GeneratorFactory,
    IterNodeGenerator,
    ListNodeGenerator,
    NodeGenerator,
)
from repro.core.ordered import (
    OrderedFrontier,
    OrderedLedger,
    OrderedTask,
    ordered_frontier,
    ordered_reference_search,
    run_task_fixed_bound,
)
from repro.core.params import SkeletonParams
from repro.core.results import (
    SearchMetrics,
    SearchResult,
    result_from_dict,
    validate_result,
)
from repro.core.searchtypes import (
    Decision,
    Enumeration,
    Incumbent,
    Optimisation,
    SearchType,
    make_search_type,
)
from repro.core.sequential import sequential_search
from repro.core.skeletons import ALL_SKELETONS, Skeleton, make_skeleton
from repro.core.space import SearchSpec
from repro.core.tasks import SearchTask, SpawnedTask, StepOutcome

__all__ = [
    "NodeGenerator",
    "IterNodeGenerator",
    "ListNodeGenerator",
    "GeneratorFactory",
    "SkeletonParams",
    "OrderedTask",
    "OrderedFrontier",
    "OrderedLedger",
    "ordered_frontier",
    "ordered_reference_search",
    "run_task_fixed_bound",
    "SearchMetrics",
    "SearchResult",
    "result_from_dict",
    "validate_result",
    "SearchType",
    "Enumeration",
    "Optimisation",
    "Decision",
    "Incumbent",
    "make_search_type",
    "sequential_search",
    "Skeleton",
    "make_skeleton",
    "ALL_SKELETONS",
    "SearchSpec",
    "SearchTask",
    "SpawnedTask",
    "StepOutcome",
]
