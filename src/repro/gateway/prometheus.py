"""Prometheus text exposition (and a small parser) for the gateway.

``GET /metrics`` renders every shard's :class:`ServiceMetrics` snapshot
plus — when the shard runs over the cluster backend — its coordinator's
``load_stats`` in the Prometheus text format (version 0.0.4): one
``# HELP``/``# TYPE`` pair per family, one sample per shard, label
values escaped per the exposition rules (``\\`` → ``\\\\``, ``"`` →
``\\"``, newline → ``\\n``).  The SetupBench exemplar validates services
by scraping exactly such an endpoint; :func:`parse_metrics` is the
other half of that contract — the dashboard, the tests and CI all
consume the endpoint through it, so the format is round-tripped in
anger, not just eyeballed.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Tuple

from repro.service.metrics import MetricsSnapshot

__all__ = [
    "escape_label_value",
    "escape_help",
    "sample_line",
    "render_families",
    "render_service",
    "parse_metrics",
]


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string (backslash and newline only)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    """Render a sample value: integers exactly, floats via repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def sample_line(
    name: str, value, labels: Optional[Mapping[str, str]] = None
) -> str:
    """One sample line: ``name{k="v",...} value``."""
    if labels:
        inner = ",".join(
            f'{k}="{escape_label_value(v)}"' for k, v in labels.items()
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


# A family is (name, type, help, [(labels, value), ...]); samples with a
# None value are skipped (e.g. latency quantiles before the first job).
Family = Tuple[str, str, str, Iterable[Tuple[Optional[Mapping[str, str]], object]]]


def render_families(families: Iterable[Family]) -> str:
    """Render families to exposition text (families without live
    samples are omitted entirely)."""
    lines: list[str] = []
    for name, mtype, help_text, samples in families:
        body = [
            sample_line(name, value, labels)
            for labels, value in samples
            if value is not None
        ]
        if not body:
            continue
        lines.append(f"# HELP {name} {escape_help(help_text)}")
        lines.append(f"# TYPE {name} {mtype}")
        lines.extend(body)
    return "\n".join(lines) + "\n"


def _snapshot_families(
    snapshots: Mapping[str, MetricsSnapshot]
) -> list[Family]:
    """Metric families over per-shard service snapshots."""
    shards = list(snapshots.items())

    def per_shard(getter) -> list:
        return [({"shard": label}, getter(snap)) for label, snap in shards]

    families: list[Family] = [
        ("repro_jobs_submitted_total", "counter",
         "Jobs accepted into the service (incl. cache hits and rejects).",
         per_shard(lambda s: s.submitted)),
        ("repro_jobs_rejected_total", "counter",
         "Submissions turned away by admission control (backpressure).",
         per_shard(lambda s: s.rejected)),
        ("repro_jobs_coalesced_total", "counter",
         "Duplicate submissions attached to an in-flight twin.",
         per_shard(lambda s: s.coalesced)),
        ("repro_jobs_retried_total", "counter",
         "Attempts re-dispatched after a worker crash.",
         per_shard(lambda s: s.retries)),
        ("repro_jobs_executed_total", "counter",
         "Jobs actually handed to a backend (the dedup witness).",
         per_shard(lambda s: s.executed)),
        ("repro_cache_hits_total", "counter",
         "Result-cache hits, including coalesced fan-outs.",
         per_shard(lambda s: s.cache_hits)),
        ("repro_cache_misses_total", "counter",
         "Result-cache misses.",
         per_shard(lambda s: s.cache_misses)),
        ("repro_queue_depth", "gauge",
         "Live queued jobs awaiting a worker.",
         per_shard(lambda s: s.queue_depth)),
        ("repro_jobs_running", "gauge",
         "Jobs currently executing on a backend.",
         per_shard(lambda s: s.running)),
        ("repro_job_latency_seconds", "summary",
         "Submit-to-terminal latency quantiles over completed jobs.",
         [({"shard": label, "quantile": q}, v)
          for label, snap in shards
          for q, v in (("0.5", snap.latency_p50), ("0.95", snap.latency_p95))]),
        ("repro_jobs_completed_total", "counter",
         "Jobs by terminal state.",
         [({"shard": label, "state": state}, count)
          for label, snap in shards
          for state, count in sorted(snap.jobs_by_state.items())]),
        ("repro_fleet_workers", "gauge",
         "Elastic fleet size (live workers).",
         [({"shard": label}, snap.fleet_size)
          for label, snap in shards if snap.fleet_peak]),
        ("repro_fleet_workers_peak", "gauge",
         "Elastic fleet high-water mark.",
         [({"shard": label}, snap.fleet_peak)
          for label, snap in shards if snap.fleet_peak]),
    ]
    return families


def _load_stat_families(load_stats: Mapping[str, dict]) -> list[Family]:
    """Metric families over per-shard coordinator load snapshots."""
    shards = list(load_stats.items())
    if not shards:
        return []

    def per_shard(key) -> list:
        return [({"shard": label}, stats.get(key)) for label, stats in shards]

    return [
        ("repro_cluster_workers_connected", "gauge",
         "Cluster workers connected to this shard's coordinator.",
         per_shard("connected")),
        ("repro_cluster_workers_retiring", "gauge",
         "Cluster workers draining toward retirement.",
         per_shard("retiring")),
        ("repro_cluster_job_active", "gauge",
         "Whether the shard's coordinator is running a job right now.",
         [(labels, int(bool(v))) for labels, v in per_shard("job_active")]),
        ("repro_cluster_queued_tasks", "gauge",
         "Subtree tasks queued on the coordinator.",
         per_shard("queued_tasks")),
        ("repro_cluster_leased_tasks", "gauge",
         "Subtree tasks leased to workers.",
         per_shard("leased_tasks")),
        ("repro_cluster_outstanding_tasks", "gauge",
         "Outstanding tasks (termination counter).",
         per_shard("outstanding")),
        ("repro_cluster_tasks_reassigned", "gauge",
         "Tasks re-leased after worker death in the active job.",
         per_shard("reassigned")),
    ]


def render_service(
    snapshots: Mapping[str, MetricsSnapshot],
    *,
    load_stats: Optional[Mapping[str, dict]] = None,
    gateway: Optional[Mapping[str, object]] = None,
    requests: Optional[Mapping[Tuple[str, int], int]] = None,
) -> str:
    """The full ``/metrics`` document.

    Args:
        snapshots: shard label -> :class:`MetricsSnapshot`.
        load_stats: shard label -> coordinator ``load_stats()`` dict
            (cluster-backed shards only).
        gateway: gateway-level gauges (``shards``, ``draining``,
            ``streams_active``, ``uptime_seconds``).
        requests: ``(method, status)`` -> count of HTTP requests served.
    """
    families = _snapshot_families(snapshots)
    families.extend(_load_stat_families(load_stats or {}))
    gw = gateway or {}
    families.extend([
        ("repro_gateway_shards", "gauge",
         "Scheduler shards behind this gateway.",
         [(None, gw.get("shards"))]),
        ("repro_gateway_draining", "gauge",
         "1 while the gateway is draining toward shutdown.",
         [(None, gw.get("draining"))]),
        ("repro_gateway_streams_active", "gauge",
         "Open chunked status streams.",
         [(None, gw.get("streams_active"))]),
        ("repro_gateway_uptime_seconds", "gauge",
         "Seconds since the gateway started serving.",
         [(None, gw.get("uptime_seconds"))]),
        ("repro_gateway_requests_total", "counter",
         "HTTP requests served, by method and status code.",
         [({"method": method, "code": str(code)}, count)
          for (method, code), count in sorted((requests or {}).items())]),
    ])
    return render_families(families)


def parse_metrics(text: str) -> dict:
    """Parse exposition text back into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs (empty for
    unlabelled samples).  Handles the escapes :func:`escape_label_value`
    produces; used by the dashboard, the tests and CI to assert on the
    endpoint rather than on internals.
    """
    out: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            labels_text, _, value_text = rest.rpartition("} ")
            labels = []
            i = 0
            while i < len(labels_text):
                eq = labels_text.index("=", i)
                key = labels_text[i:eq].lstrip(",").strip()
                # value is a quoted string starting at eq+1
                assert labels_text[eq + 1] == '"'
                j = eq + 2
                buf = []
                while labels_text[j] != '"':
                    if labels_text[j] == "\\":
                        nxt = labels_text[j + 1]
                        buf.append(
                            {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt)
                        )
                        j += 2
                    else:
                        buf.append(labels_text[j])
                        j += 1
                labels.append((key, "".join(buf)))
                i = j + 1
            out[(name, tuple(sorted(labels)))] = float(value_text)
        else:
            name, _, value_text = line.rpartition(" ")
            out[(name, ())] = float(value_text)
    return out
