#!/usr/bin/env python
"""Figure-4-in-miniature: k-clique scaling across simulated localities.

Runs the k-clique decision search on a planted-clique graph over
1..8 localities of 15 workers each and prints runtime + relative
speedup for the three parallel skeletons — the shape of Figure 4 at
laptop scale.  (The full 17-locality sweep lives in
benchmarks/bench_figure4_scaling.py.)

Run:  python examples/distributed_scaling.py
"""

from repro import SkeletonParams, search
from repro.instances.library import spec_for

SKELETONS = [
    ("depthbounded", {"d_cutoff": 2}),
    ("stacksteal", {"chunked": True}),
    ("budget", {"budget": 500}),
]
LOCALITIES = [1, 2, 4, 8]


def main() -> None:
    spec, stype, kwargs = spec_for("kclique-uniform-100")
    print(f"instance: {spec.name} (decision target {kwargs['target']})")
    print(f"{'skeleton':>14} | " + " | ".join(f"{n:>2} loc" for n in LOCALITIES))

    for skeleton, knobs in SKELETONS:
        times = []
        for locs in LOCALITIES:
            params = SkeletonParams(
                localities=locs, workers_per_locality=15, **knobs
            )
            res = search(spec, skeleton=skeleton, search_type="decision",
                         params=params, **kwargs)
            assert res.found is True
            times.append(res.virtual_time)
        base = times[0]
        cells = " | ".join(
            f"{t:7.0f} ({base / t:4.1f}x)" for t in times
        )
        print(f"{skeleton:>14} | {cells}")
    print("\n(times in simulated work units; speedup relative to 1 locality)")


if __name__ == "__main__":
    main()
