"""Replicable Ordered coordination: shared machinery (Archibald et al.).

The Ordered skeleton promises something the other coordinations do not:
two runs with the same seed and *any* worker count return the identical
objective, the identical witness, and the identical node count.  The
scheme here is the repro's rendering of the Replicable Parallel Branch
and Bound discipline (PAPERS.md, "Replicable parallel branch and bound
search"):

1. **Deterministic spawn order.**  A sequential depth-bounded expansion
   (:func:`ordered_frontier`) walks the tree above ``d_cutoff`` exactly
   as the Depth-Bounded coordination would and numbers the frontier
   subtrees in discovery (traversal) order — the sequence number is the
   task's priority, lexicographic on its sibling-index path key.

2. **Atomic tasks, pinned bounds.**  Each frontier subtree is searched
   to completion by :func:`run_task_fixed_bound` starting from an
   explicit incumbent *bound*.  The runner is a pure function of
   ``(root, bound)``: it never reads shared knowledge mid-flight, so
   re-running a task — on another worker, after a crash, at a different
   worker count — reproduces its node/prune/backtrack counters bit for
   bit.  Local strengthening inside the task is allowed (it is derived
   from the same two inputs).

3. **In-order finalisation with a bound journal.**  The
   :class:`OrderedLedger` parks results as they arrive and *finalises*
   them strictly in sequence order.  Task ``i`` may only finalise a run
   whose starting bound equals the **required bound** ``B*_i`` — the
   best objective over the phase-1 prefix and every finalised task
   ``j < i``.  A result computed from a staler (or, under speculation,
   any other) bound is discarded and the task re-issued with ``B*_i``
   pinned; every accepted ``(seq, bound, nodes)`` triple is appended to
   the :attr:`~OrderedLedger.journal`.  Only finalised runs contribute
   to the returned metrics, which is what makes the node count a
   deterministic function of the instance — enforced, not hoped for.

4. **Priority tie-break.**  The incumbent merge at finalisation is
   strict (``>`` replaces): when several tasks attain the optimum the
   witness is the one from the lowest sequence number — priority wins
   over arrival time, matching the sequential discovery order.

:func:`ordered_reference_search` executes the same contract on a single
thread with no queues and no shared state; it is the oracle the
repetition harness compares every parallel Ordered run against.  It
deliberately merges inline rather than through the ledger so the
``ordered-tiebreak`` verification mutation (see :class:`OrderedLedger`)
corrupts the backends but never the reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.params import SkeletonParams
from repro.core.results import SearchMetrics, SearchResult
from repro.core.searchtypes import Incumbent, SearchType, _active_mutation
from repro.core.space import SearchSpec
from repro.core.tasks import ORDERED, SearchTask, SpawnedTask

__all__ = [
    "OrderedTask",
    "OrderedFrontier",
    "ordered_frontier",
    "run_task_fixed_bound",
    "OrderedLedger",
    "ordered_reference_search",
]


@dataclass(frozen=True)
class OrderedTask:
    """One frontier subtree with its discovery-order priority.

    ``seq`` is the position in the sequential depth-bounded traversal —
    lower runs (and finalises) first.  ``depth`` is the root's global
    depth; ``key`` the sibling-index path from the search root (kept for
    diagnostics: sorting by key *is* sorting by seq).
    """

    seq: int
    node: Any
    depth: int
    key: tuple = ()


@dataclass
class OrderedFrontier:
    """Phase-1 output: numbered tasks plus the prefix searched to make them.

    ``knowledge`` / ``metrics`` cover exactly the nodes the expansion
    visited (the region above ``d_cutoff``); ``goal`` is True when a
    decision search short-circuited during expansion, in which case
    ``tasks`` is empty and the search is already complete.
    """

    tasks: list[OrderedTask] = field(default_factory=list)
    knowledge: Any = None
    goal: bool = False
    metrics: SearchMetrics = field(default_factory=SearchMetrics)


def ordered_frontier(
    spec: SearchSpec,
    stype: SearchType,
    *,
    d_cutoff: int = 2,
) -> OrderedFrontier:
    """Sequentially expand the depth-``d_cutoff`` frontier in traversal order.

    Subtree roots at depth >= ``d_cutoff`` become :class:`OrderedTask`s
    numbered in discovery order; everything above is processed here,
    threading one knowledge value through the walk exactly as the
    sequential search would.  Deterministic by construction — no clocks,
    no randomness, no worker interleaving.
    """
    # d_cutoff=0 degenerates gracefully: the root is expanded with no
    # spawn rule firing, i.e. phase 1 completes the whole search
    # sequentially and the task list comes back empty.
    params = SkeletonParams(d_cutoff=d_cutoff)
    knowledge = stype.initial_knowledge(spec)
    metrics = SearchMetrics()
    frontier: list[SpawnedTask] = []
    goal = False
    # Depth-first worklist: expanding a subtree root above the cutoff
    # visits that node and spawns its children; pushing the spawns in
    # reverse keeps the pop order lexicographic on path keys, i.e. the
    # sequential traversal order.
    pending: list[SpawnedTask] = [SpawnedTask(spec.root, 0, ())]
    while pending and not goal:
        sp = pending.pop()
        if sp.depth >= d_cutoff and sp.depth > 0:
            frontier.append(sp)
            continue
        sub = SearchTask(
            spec,
            stype,
            sp.root,
            policy=ORDERED,
            params=params,
            root_depth=sp.depth,
            key=sp.key,
        )
        spawned: list[SpawnedTask] = []
        while not sub.finished:
            knowledge, out = sub.step(knowledge)
            metrics.nodes += int(out.processed)
            metrics.weighted_nodes += out.weight if out.processed else 0
            metrics.prunes += int(out.pruned)
            metrics.backtracks += int(out.backtracked)
            depth = sp.depth + len(sub.stack)
            if depth > metrics.max_depth:
                metrics.max_depth = depth
            spawned.extend(out.spawned)
            if out.goal:
                goal = True
                break
        pending.extend(reversed(spawned))
    if goal:
        frontier = []
    frontier.sort(key=lambda sp: sp.key)
    tasks = [
        OrderedTask(seq=i, node=sp.root, depth=sp.depth, key=sp.key)
        for i, sp in enumerate(frontier)
    ]
    metrics.spawns = len(tasks)
    return OrderedFrontier(
        tasks=tasks, knowledge=knowledge, goal=goal, metrics=metrics
    )


def run_task_fixed_bound(
    spec: SearchSpec,
    stype: SearchType,
    root: Any,
    root_depth: int,
    bound: Optional[int] = None,
    *,
    poll: int = 1024,
    should_abort: Optional[Callable[[], bool]] = None,
) -> Optional[dict]:
    """Search the subtree under ``root`` atomically from a pinned bound.

    The replicable unit of work: a pure function of ``(root, bound)``.
    Pruning starts from ``Incumbent(bound, None)`` and is strengthened
    only by nodes found *inside* this subtree — the shared incumbent is
    never consulted, so the visit sequence (and every counter) is
    reproducible on any worker at any time.  ``bound`` is ignored for
    enumeration, which accumulates from the monoid zero.

    Returns a payload dict (``nodes``/``prunes``/``backtracks``/
    ``max_depth``/``goal`` plus ``value``+``node`` for incumbent types or
    ``knowledge`` for enumeration; ``value`` is None when nothing beat
    the bound) — or None if ``should_abort()`` answered True at a
    ``poll``-node check, in which case nothing was published anywhere.
    """
    enum = stype.kind == "enumeration"
    process = stype.process
    is_goal = stype.is_goal
    should_prune = stype.should_prune if (not enum and spec.can_prune) else None
    generator = spec.generator
    space = spec.space

    if enum:
        know = stype.initial_knowledge(spec)
    else:
        know = Incumbent(bound if bound is not None else 0, None)
    nodes = 1
    prunes = backtracks = max_depth = 0
    goal = False
    since = 0

    # -- the task root (the (schedule) rule) --
    expand = True
    if enum:
        know, _ = process(spec, root, know)
    else:
        know, improved = process(spec, root, know)
        if improved and is_goal(know):
            goal = True
            expand = False
        elif should_prune is not None and should_prune(spec, root, know):
            prunes = 1
            expand = False

    if expand:
        stack = [generator(space, root)]
        max_depth = root_depth + 1
        while stack:
            gen = stack[-1]
            if gen.has_next():
                child = gen.next()
                nodes += 1
                since += 1
                if enum:
                    know, _ = process(spec, child, know)
                    stack.append(generator(space, child))
                    if root_depth + len(stack) > max_depth:
                        max_depth = root_depth + len(stack)
                else:
                    know, improved = process(spec, child, know)
                    if improved and is_goal(know):
                        goal = True
                        break
                    if should_prune is not None and should_prune(
                        spec, child, know
                    ):
                        prunes += 1
                    else:
                        stack.append(generator(space, child))
                        if root_depth + len(stack) > max_depth:
                            max_depth = root_depth + len(stack)
            else:
                stack.pop()
                backtracks += 1
            if since >= poll:
                since = 0
                if should_abort is not None and should_abort():
                    return None

    payload: dict = {
        "nodes": nodes,
        "prunes": prunes,
        "backtracks": backtracks,
        "max_depth": max_depth,
        "goal": goal,
    }
    if enum:
        payload["knowledge"] = know
    else:
        payload["value"] = know.value if know.node is not None else None
        payload["node"] = know.node
    return payload


class OrderedLedger:
    """Finalises ordered task results in sequence order, enforcing bounds.

    Both parallel Ordered drivers (the multiprocessing parent and the
    cluster coordinator) feed arriving ``(seq, payload)`` pairs to
    :meth:`record` and then call :meth:`advance`, which finalises the
    longest ready prefix and answers with the re-runs it demands: a
    parked result whose ``payload["bound"]`` differs from the required
    bound ``B*_seq`` is discarded and ``(seq, B*_seq)`` returned for
    re-issue.  Speculative execution (dispatching a task with whatever
    bound is current) is therefore always *safe* — at worst it is
    re-run once, after its prefix has finalised, with the bound pinned.

    The ``ordered-tiebreak`` entry of the ``REPRO_VERIFY_MUTATION``
    switch (docs/verify.md) corrupts exactly the determinism guarantee
    this class provides: the witness is merged at *arrival* time with a
    ``>=`` comparison (arrival-order wins ties) instead of at
    finalisation with ``>`` (priority wins).  Required bounds are
    tracked separately from the witness, so the mutation perturbs only
    witness identity — the signature the repetition oracle pins against
    :func:`ordered_reference_search`, which does not route through this
    class and stays sound.
    """

    def __init__(self, stype: SearchType, frontier: OrderedFrontier) -> None:
        self._stype = stype
        self._enum = stype.kind == "enumeration"
        self._tasks = frontier.tasks
        self._n = len(frontier.tasks)
        self._next = 0
        self._parked: dict[int, dict] = {}
        self.knowledge = frontier.knowledge
        self.goal = frontier.goal
        self.metrics = SearchMetrics(**frontier.metrics.to_dict())
        self.journal: list[tuple[int, Optional[int], int]] = []
        # Finalised-prefix best, the source of required bounds.  Kept
        # apart from the witness incumbent so the tie-break mutation
        # below cannot leak into bound enforcement (and node counts).
        self._best: Optional[int] = (
            None if self._enum else frontier.knowledge.value
        )
        self._mutated = _active_mutation() == "ordered-tiebreak"

    # -- queries ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Every task finalised, or a decision goal short-circuited."""
        return self.goal or self._next >= self._n

    @property
    def next_seq(self) -> int:
        """The sequence number finalisation is waiting on."""
        return self._next

    @property
    def task_count(self) -> int:
        return self._n

    def required_bound(self, seq: Optional[int] = None) -> Optional[int]:
        """The bound task ``seq`` must have run from to finalise *now*.

        Only exact for ``seq == next_seq`` (later tasks' bounds are not
        yet determined); for speculative dispatch it is the best guess
        available.  None for enumeration, which has no bound.
        """
        return self._best

    # -- the driver protocol ------------------------------------------------

    def record(self, seq: int, payload: dict) -> None:
        """Park one arrived result (later arrivals for a seq replace)."""
        if seq < self._next or seq >= self._n or self.finished:
            return  # finalised already, or arrived after a goal: stale
        self._parked[seq] = payload
        if (
            self._mutated
            and not self._enum
            and payload.get("node") is not None
            and payload["value"] >= self.knowledge.value
        ):
            # Deliberate bug (mutation test): merge the witness on
            # arrival, >= — whichever tied optimum lands last wins,
            # which is exactly the anomaly Ordered exists to forbid.
            self.knowledge = Incumbent(payload["value"], payload["node"])

    def advance(self) -> list[tuple[int, Optional[int]]]:
        """Finalise the ready prefix; return tasks to re-issue.

        Each returned ``(seq, bound)`` pair names a parked result that
        was rejected because it ran from the wrong bound; the caller
        must execute the task again with ``bound`` pinned.  At most one
        re-run is demanded per call: nothing after ``seq`` can finalise
        until it does.
        """
        while not self.finished and self._next in self._parked:
            payload = self._parked[self._next]
            if not self._enum and payload.get("bound") != self._best:
                del self._parked[self._next]
                self.metrics.reassigned += 1
                return [(self._next, self._best)]
            del self._parked[self._next]
            self._finalise(payload)
            self._next += 1
        return []

    def _finalise(self, payload: dict) -> None:
        self.journal.append(
            (self._next, payload.get("bound"), payload["nodes"])
        )
        m = self.metrics
        m.nodes += payload["nodes"]
        m.prunes += payload["prunes"]
        m.backtracks += payload["backtracks"]
        if payload["max_depth"] > m.max_depth:
            m.max_depth = payload["max_depth"]
        if self._enum:
            self.knowledge = self._stype.combine(
                self.knowledge, payload["knowledge"]
            )
            return
        value = payload.get("value")
        if value is not None and value > self._best:
            self._best = value
            if not self._mutated:
                # Priority tie-break: strict improvement replaces, ties
                # keep the earlier (lower-seq) witness.
                self.knowledge = Incumbent(value, payload["node"])
        if payload["goal"] or self._stype.is_goal(self.knowledge):
            self.goal = True


def ordered_reference_search(
    spec: SearchSpec,
    stype: SearchType,
    *,
    d_cutoff: int = 2,
) -> SearchResult:
    """The single-threaded executable contract for Ordered runs.

    Expands the frontier, runs every task in sequence order with the
    exact finalised-prefix bound, and merges inline (strict ``>``, so
    priority wins ties).  Every conforming parallel Ordered run — any
    backend, any worker count, crashes or not — must reproduce this
    result bit for bit: value, witness, found flag, and the ``nodes`` /
    ``prunes`` / ``backtracks`` / ``max_depth`` counters.

    Deliberately does *not* drive :class:`OrderedLedger`, so the
    verification mutations that corrupt the parallel merge paths leave
    this oracle sound.
    """
    started = time.perf_counter()
    frontier = ordered_frontier(spec, stype, d_cutoff=d_cutoff)
    knowledge = frontier.knowledge
    metrics = frontier.metrics
    goal = frontier.goal
    enum = stype.kind == "enumeration"
    best = None if enum else knowledge.value
    for task in frontier.tasks:
        if goal:
            break
        payload = run_task_fixed_bound(
            spec, stype, task.node, task.depth, best
        )
        metrics.nodes += payload["nodes"]
        metrics.prunes += payload["prunes"]
        metrics.backtracks += payload["backtracks"]
        if payload["max_depth"] > metrics.max_depth:
            metrics.max_depth = payload["max_depth"]
        if enum:
            knowledge = stype.combine(knowledge, payload["knowledge"])
            continue
        value = payload["value"]
        if value is not None and value > best:
            best = value
            knowledge = Incumbent(value, payload["node"])
        if payload["goal"] or stype.is_goal(knowledge):
            goal = True
    # Parallel ordered backends do not track per-node weights; pin the
    # reference to the same convention so fingerprints are comparable.
    metrics.weighted_nodes = metrics.nodes
    elapsed = time.perf_counter() - started
    if enum:
        return SearchResult(
            kind=stype.kind,
            value=knowledge,
            metrics=metrics,
            wall_time=elapsed,
            workers=1,
        )
    return SearchResult(
        kind=stype.kind,
        value=knowledge.value,
        node=knowledge.node,
        found=(goal or stype.is_goal(knowledge))
        if stype.kind == "decision"
        else None,
        metrics=metrics,
        wall_time=elapsed,
        workers=1,
    )
