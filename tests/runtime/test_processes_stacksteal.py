"""Tests for the multiprocessing Stack-Stealing backend.

Stack-stealing moves *live generator frames* between workers, so the
bar is: enumeration bit-identical to sequential (every node counted
exactly once no matter how the stack is split), optimisation exact in
value with a valid witness.  Work movement (steal counts) is timing
dependent and only sanity-checked, never pinned.
"""

import pytest

from repro.core.searchtypes import Enumeration, Optimisation
from repro.core.results import validate_result
from repro.core.sequential import sequential_search
from repro.runtime.processes import multiprocessing_stacksteal_search

from tests.runtime.test_processes import (
    CLIQUE_ARGS,
    clique_spec_factory,
    decision_factory,
    enumeration_factory,
    optimisation_factory,
    uts_spec_factory,
)

UTS_ARGS = (3.0, 6, 11)


class TestCorrectness:
    def test_optimisation_matches_sequential(self):
        spec = clique_spec_factory(*CLIQUE_ARGS)
        seq = sequential_search(spec, Optimisation())
        res = multiprocessing_stacksteal_search(
            clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
            n_processes=3,
        )
        assert res.value == seq.value
        assert validate_result(spec, res)

    def test_enumeration_counts_exact(self):
        seq = sequential_search(uts_spec_factory(*UTS_ARGS), Enumeration())
        res = multiprocessing_stacksteal_search(
            uts_spec_factory, UTS_ARGS, enumeration_factory,
            n_processes=3, share_poll=16,
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_decision_found(self):
        seq = sequential_search(
            clique_spec_factory(*CLIQUE_ARGS), Optimisation()
        )
        res = multiprocessing_stacksteal_search(
            clique_spec_factory, CLIQUE_ARGS, decision_factory, (seq.value,),
            n_processes=2,
        )
        assert res.found is True

    def test_unchunked_split_matches_sequential(self):
        # chunked=False steals a single frame per request instead of
        # half the victim's lowest level: different work movement, the
        # same answer and the same node accounting.
        seq = sequential_search(uts_spec_factory(*UTS_ARGS), Enumeration())
        res = multiprocessing_stacksteal_search(
            uts_spec_factory, UTS_ARGS, enumeration_factory,
            n_processes=3, chunked=False, share_poll=16,
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_steals_are_counted(self):
        # A deep irregular tree shared among hungry workers: at least
        # one steal must actually happen (the whole tree starts as one
        # task, so 3 workers stay idle until thefts move work).
        res = multiprocessing_stacksteal_search(
            uts_spec_factory, (2.0, 12, 7), enumeration_factory,
            n_processes=4, share_poll=8,
        )
        assert res.metrics.steals > 0
        assert res.workers == 4


class TestEdgeCases:
    def test_single_process_degenerates_to_sequential(self):
        spec = uts_spec_factory(2.0, 4, 3)
        seq = sequential_search(spec, Enumeration())
        res = multiprocessing_stacksteal_search(
            uts_spec_factory, (2.0, 4, 3), enumeration_factory,
            n_processes=1,
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes
        assert res.metrics.steals == 0  # nobody to steal from

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            multiprocessing_stacksteal_search(
                clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                n_processes=0,
            )
        with pytest.raises(ValueError):
            multiprocessing_stacksteal_search(
                clique_spec_factory, CLIQUE_ARGS, optimisation_factory,
                n_processes=2, share_poll=0,
            )
