"""The network front door: asyncio HTTP over sharded coordinators.

``repro serve`` drains a job file and exits; production traffic is
concurrent, streaming and long-lived.  This package is the layer that
turns the service machinery (:mod:`repro.service`) into a network
service — the master/client serving architecture tree-search
frameworks like mts converge on:

- :mod:`repro.gateway.http` — minimal HTTP/1.1 over asyncio streams
  (no frameworks, chunked streaming responses).
- :mod:`repro.gateway.events` — the thread-safe job-status event hub
  (``queued → leased → incumbent… → done``) bridging scheduler threads
  and the asyncio loop.
- :mod:`repro.gateway.shard` — :class:`ShardRouter`: N independent
  scheduler/coordinator shards, routed by content-addressed job hash so
  duplicates coalesce on one shard while independent jobs fan out.
- :mod:`repro.gateway.server` — :class:`Gateway`: ``POST /jobs`` with
  429-backpressure, job records, chunked JSONL status streams, result
  retrieval, and a Prometheus-style ``GET /metrics``; graceful drain.
- :mod:`repro.gateway.prometheus` — the text exposition (and parser).
- :mod:`repro.gateway.client` — :class:`GatewayClient`, the sync
  client behind ``repro submit --url`` and the tests.
- :mod:`repro.gateway.dashboard` — ``repro gateway-top``, a live ASCII
  dashboard over the scraped ``/metrics``.

Quick start::

    from repro.gateway import Gateway, GatewayClient, GatewayHandle, ShardRouter

    handle = GatewayHandle(Gateway(ShardRouter(n_shards=2)))
    handle.start()
    client = GatewayClient(handle.url)
    record = client.submit({"app": "maxclique", "instance": "sanr90-1"})
    final = client.wait(record["job"])
    handle.close()

The CLI front ends are ``repro gateway`` (run a server; SIGTERM drains
in-flight jobs first), ``repro submit --url`` (remote submission) and
``repro gateway-top`` (dashboard); see ``docs/gateway.md``.
"""

from repro.gateway.client import Backpressure, GatewayClient, GatewayError
from repro.gateway.events import EventBroker
from repro.gateway.server import Gateway, GatewayHandle
from repro.gateway.shard import Shard, ShardRouter, shard_of_key

__all__ = [
    "Backpressure",
    "EventBroker",
    "Gateway",
    "GatewayClient",
    "GatewayError",
    "GatewayHandle",
    "Shard",
    "ShardRouter",
    "shard_of_key",
]
