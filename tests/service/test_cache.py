"""Tests for the content-addressed result cache and coalescing registry."""

import pytest

from repro.core.results import SearchResult
from repro.service.cache import ResultCache


def result(value):
    return SearchResult(kind="optimisation", value=value, node=("n",))


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLRU:
    def test_get_put_round_trip(self):
        c = ResultCache(capacity=4)
        c.put("k1", result(7))
        assert c.get("k1").value == 7
        assert c.hits == 1 and c.misses == 0

    def test_miss_counted(self):
        c = ResultCache()
        assert c.get("nope") is None
        assert c.misses == 1
        assert c.hit_rate() == 0.0

    def test_eviction_order_is_least_recently_used(self):
        c = ResultCache(capacity=2)
        c.put("a", result(1))
        c.put("b", result(2))
        c.get("a")  # refresh a; b is now LRU
        c.put("c", result(3))
        assert "a" in c and "c" in c
        assert "b" not in c

    def test_hit_rate_none_before_lookups(self):
        assert ResultCache().hit_rate() is None

    def test_bad_capacity_and_ttl(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(ttl=0)


class TestTTL:
    def test_entries_expire(self):
        clock = FakeClock()
        c = ResultCache(ttl=10.0, clock=clock)
        c.put("k", result(1))
        clock.now = 9.9
        assert c.get("k") is not None
        clock.now = 10.0
        assert c.get("k") is None  # expired: counted as a miss
        assert c.hits == 1 and c.misses == 1

    def test_contains_respects_ttl(self):
        clock = FakeClock()
        c = ResultCache(ttl=5.0, clock=clock)
        c.put("k", result(1))
        assert "k" in c
        clock.now = 6.0
        assert "k" not in c

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        c = ResultCache(clock=clock)
        c.put("k", result(1))
        clock.now = 1e9
        assert c.get("k") is not None


class TestCoalescing:
    def test_lead_join_finish(self):
        c = ResultCache()
        c.lead("k", "j1")
        assert c.leader_of("k") == "j1"
        assert c.join("k", "j2") == "j1"
        assert c.join("k", "j3") == "j1"
        assert c.finish("k") == ["j2", "j3"]
        assert c.leader_of("k") is None

    def test_double_lead_rejected(self):
        c = ResultCache()
        c.lead("k", "j1")
        with pytest.raises(ValueError):
            c.lead("k", "j2")

    def test_finish_is_idempotent(self):
        c = ResultCache()
        assert c.finish("unknown") == []

    def test_drop_follower(self):
        c = ResultCache()
        c.lead("k", "j1")
        c.join("k", "j2")
        assert c.drop_follower("k", "j2") is True
        assert c.drop_follower("k", "j2") is False
        assert c.finish("k") == []

    def test_coalesced_hit_counts_toward_hit_rate(self):
        c = ResultCache()
        c.get("k")  # miss
        c.record_coalesced_hit()
        assert c.hit_rate() == pytest.approx(0.5)
