"""Monoid laws for the search-knowledge monoids (paper §3.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.monoids import BoundedMaxMonoid, MaxMonoid, SumMonoid

nats = st.integers(min_value=0, max_value=10_000)


def monoid_laws(monoid, values):
    """Check associativity, commutativity and identity on sample triples."""
    a, b, c = values
    assert monoid.plus(a, monoid.plus(b, c)) == monoid.plus(monoid.plus(a, b), c)
    assert monoid.plus(a, b) == monoid.plus(b, a)
    assert monoid.plus(a, monoid.zero()) == a


class TestSumMonoid:
    @given(nats, nats, nats)
    def test_laws(self, a, b, c):
        monoid_laws(SumMonoid(), (a, b, c))

    def test_fold(self):
        assert SumMonoid().fold([1, 2, 3]) == 6

    def test_fold_empty(self):
        assert SumMonoid().fold([]) == 0

    def test_not_ordered(self):
        with pytest.raises(NotImplementedError):
            SumMonoid().leq(1, 2)

    def test_unbounded(self):
        assert SumMonoid().greatest() is None


class TestMaxMonoid:
    @given(nats, nats, nats)
    def test_laws(self, a, b, c):
        monoid_laws(MaxMonoid(), (a, b, c))

    @given(nats, nats)
    def test_plus_is_max_of_order(self, a, b):
        m = MaxMonoid()
        s = m.plus(a, b)
        assert m.leq(a, s) and m.leq(b, s)
        assert s in (a, b)

    def test_zero_is_least(self):
        m = MaxMonoid()
        assert m.leq(m.zero(), 17)

    def test_unbounded(self):
        assert MaxMonoid().greatest() is None


class TestBoundedMaxMonoid:
    @given(st.integers(min_value=0, max_value=50), st.data())
    def test_laws(self, k, data):
        m = BoundedMaxMonoid(k)
        vals = st.integers(min_value=0, max_value=k)
        monoid_laws(m, (data.draw(vals), data.draw(vals), data.draw(vals)))

    def test_greatest(self):
        assert BoundedMaxMonoid(5).greatest() == 5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BoundedMaxMonoid(3).plus(1, 4)

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            BoundedMaxMonoid(-1)

    @given(st.integers(min_value=0, max_value=20))
    def test_greatest_absorbs(self, k):
        m = BoundedMaxMonoid(k)
        assert m.plus(k, 0) == k
