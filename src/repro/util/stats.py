"""Summary statistics for the benchmark harnesses.

The paper reports geometric means of overheads and speedups (Tables 1
and 2) and worst/random/best speedups over parameter sweeps.  These
helpers compute exactly those quantities so the bench output matches the
paper's row format.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

__all__ = [
    "geometric_mean",
    "percentile",
    "relative_speedups",
    "summarize_overheads",
    "SweepSummary",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    ``q`` is in [0, 100].  Used by the service metrics layer for
    p50/p95 job latencies; raises on empty input (an empty latency set
    is a caller decision, not a statistic).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(data[lo])
    frac = rank - lo
    # Clamp: the two-product form can overshoot data[hi] by one ulp.
    return float(min(max(data[lo] * (1.0 - frac) + data[hi] * frac, data[lo]), data[hi]))


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Computed in log space so that long products of small ratios do not
    underflow.  Raises on empty input or non-positive entries — both
    indicate a harness bug, not a legitimate measurement.
    """
    total = 0.0
    count = 0
    for v in values:
        if v <= 0.0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
        total += math.log(v)
        count += 1
    if count == 0:
        raise ValueError("geometric mean of empty sequence")
    return math.exp(total / count)


def relative_speedups(
    baseline: Mapping[str, float], measured: Mapping[str, float]
) -> dict[str, float]:
    """Per-key speedup ``baseline[k] / measured[k]`` for shared keys."""
    out: dict[str, float] = {}
    for key, base in baseline.items():
        if key in measured:
            if measured[key] <= 0:
                raise ValueError(f"non-positive runtime for {key!r}")
            out[key] = base / measured[key]
    return out


def summarize_overheads(
    reference: Mapping[str, float],
    candidate: Mapping[str, float],
    *,
    min_runtime: float = 0.0,
) -> dict[str, float]:
    """Percentage slowdowns of ``candidate`` relative to ``reference``.

    Table 1 computes its mean slowdown only over instances whose runtime
    exceeds 1.5 s, because tiny instances produce wild relative numbers
    (the paper's san400_0.9_1 example: +0.36 s reads as a 221 % slowdown).
    ``min_runtime`` reproduces that filter against the *reference* time.
    Returns ``{instance: slowdown_percent}``.
    """
    out: dict[str, float] = {}
    for key, ref in reference.items():
        if key not in candidate:
            continue
        if ref < min_runtime:
            continue
        out[key] = (candidate[key] / ref - 1.0) * 100.0
    return out


class SweepSummary:
    """Worst / random / best aggregation over a parameter sweep.

    Table 2 reports, per (application, skeleton), the geometric-mean
    speedup across instances when the tunable parameter is chosen
    worst-case, at random, and best-case.  ``add(instance, param,
    speedup)`` records one sweep point; the properties aggregate.
    """

    def __init__(self, rng_seed: int = 0) -> None:
        self._points: dict[str, dict[object, float]] = {}
        self._seed = rng_seed

    def add(self, instance: str, param: object, speedup: float) -> None:
        """Record the speedup of one (instance, parameter) run."""
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        self._points.setdefault(instance, {})[param] = speedup

    @property
    def instances(self) -> Sequence[str]:
        return sorted(self._points)

    def _per_instance(self, pick) -> list[float]:
        if not self._points:
            raise ValueError("no sweep points recorded")
        return [pick(sweep) for sweep in self._points.values()]

    def worst(self) -> float:
        """Geo-mean speedup when the parameter is chosen worst per instance."""
        return geometric_mean(self._per_instance(lambda s: min(s.values())))

    def best(self) -> float:
        """Geo-mean speedup when the parameter is chosen best per instance."""
        return geometric_mean(self._per_instance(lambda s: max(s.values())))

    def random(self) -> float:
        """Geo-mean speedup for one fixed random parameter choice per instance.

        Deterministic in the summary's seed, mirroring the paper's "some
        random choice of parameters" column.
        """
        from repro.util.rng import SplitMix64

        rng = SplitMix64(self._seed)
        picks: list[float] = []
        for instance in sorted(self._points):
            sweep = self._points[instance]
            keys = sorted(sweep, key=repr)
            picks.append(sweep[keys[rng.randrange(len(keys))]])
        return geometric_mean(picks)
