"""Commutative monoids for accumulating search knowledge (Section 3.2).

All three search types are folds of the search tree into a commutative
monoid ``<M, +, 0>``:

- **Enumeration** uses any commutative monoid and sums objective values.
- **Optimisation** needs the monoid to induce a total order with least
  element 0 and ``+`` acting as max.
- **Decision** additionally needs the order to be *bounded*; reaching the
  greatest element short-circuits the whole search.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

T = TypeVar("T")

__all__ = ["CommutativeMonoid", "SumMonoid", "MaxMonoid", "BoundedMaxMonoid"]


class CommutativeMonoid(Generic[T]):
    """Abstract commutative monoid ``<M, +, 0>``.

    Subclasses provide ``zero`` and ``plus``; ordered monoids (used by
    optimisation/decision searches) additionally provide ``leq`` such
    that ``plus`` is the max operator of the order.
    """

    def zero(self) -> T:
        """The identity element 0."""
        raise NotImplementedError

    def plus(self, a: T, b: T) -> T:
        """The commutative, associative operation ``+``."""
        raise NotImplementedError

    def leq(self, a: T, b: T) -> bool:
        """``a <= b`` in the induced order; only for ordered monoids."""
        raise NotImplementedError(f"{type(self).__name__} is not ordered")

    def greatest(self) -> Optional[T]:
        """The greatest element if the order is bounded, else None."""
        return None

    def fold(self, values) -> T:
        """Fold an iterable of monoid values."""
        acc = self.zero()
        for v in values:
            acc = self.plus(acc, v)
        return acc


class SumMonoid(CommutativeMonoid[int]):
    """Natural numbers with addition — the node-counting monoid."""

    def zero(self) -> int:
        """0, the additive identity."""
        return 0

    def plus(self, a: int, b: int) -> int:
        """Integer addition."""
        return a + b


class MaxMonoid(CommutativeMonoid[int]):
    """Naturals with max: the optimisation monoid (total order, least 0)."""

    def zero(self) -> int:
        """0, the least element."""
        return 0

    def plus(self, a: int, b: int) -> int:
        """Binary max."""
        return a if a >= b else b

    def leq(self, a: int, b: int) -> bool:
        """The usual total order on naturals."""
        return a <= b


class BoundedMaxMonoid(CommutativeMonoid[int]):
    """``{0..k}`` with max: the decision monoid.

    ``k`` is the greatest element; the paper's decision example maps each
    node to ``min(depth, k)`` so the search can terminate the moment the
    objective hits ``k``.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"bound must be non-negative, got {k}")
        self.k = k

    def zero(self) -> int:
        """0, the least element."""
        return 0

    def plus(self, a: int, b: int) -> int:
        """Max, after checking both operands lie in the bounded order."""
        self._check(a)
        self._check(b)
        return a if a >= b else b

    def leq(self, a: int, b: int) -> bool:
        """The usual order on ``{0..k}``."""
        return a <= b

    def greatest(self) -> int:
        """k, the greatest element (decision short-circuit trigger)."""
        return self.k

    def _check(self, a: int) -> None:
        if not 0 <= a <= self.k:
            raise ValueError(f"{a} outside the bounded order [0, {self.k}]")
