"""End-to-end service acceptance test (ISSUE 1 acceptance criteria).

Submits 20+ real jobs — mixed applications, duplicate submissions from
several submitters, one job with an unmeetable timeout, one cancelled
while queued — to a scheduler with a bounded queue, and checks that the
whole batch reaches terminal states with the promised semantics.
"""

import pytest

from repro.service import JobQueue, JobSpec, JobState, ResultCache, Scheduler
from repro.service.jobs import TERMINAL_STATES


def build_specs():
    """20 mixed jobs: duplicates across submitters + one timeout case."""
    specs = []

    def add(app, instance, *, submitter="suite", n=1, **kw):
        for _ in range(n):
            specs.append(
                JobSpec(app=app, instance=instance, submitter=submitter, **kw)
            )

    add("maxclique", "brock90-1", n=2)                      # dup pair
    add("maxclique", "brock90-1", submitter="alice")        # cross-submitter dup
    add("maxclique", "sanr90-1", priority=5)
    add("maxclique", "brock90-1", submitter="bob",
        skeleton="depthbounded", params={"workers_per_locality": 4}, n=2)  # dup pair
    add("kclique", "kclique-planted-80", submitter="alice", n=2)  # dup pair
    add("tsp", "tsp-rand-11", submitter="bob")
    add("knapsack", "knap-strong-28", n=2)                  # dup pair
    add("knapsack", "knap-sim-26", submitter="alice")
    add("sip", "sip-planted-18-65", submitter="bob", priority=2)
    add("uts", "uts-geo-med", n=2)                          # dup pair
    add("ns", "ns-genus-14", submitter="alice")
    add("ns", "ns-genus-16", timeout=0.15)                  # cannot finish in time
    add("tsp", "tsp-rand-11", submitter="carol")            # dup of bob's
    add("sip", "sip-planted-18-65", submitter="carol")      # dup of bob's
    add("maxclique", "p_hat90-1", submitter="carol")        # the one we cancel
    assert len(specs) >= 20
    return specs


@pytest.fixture(scope="module")
def served():
    """Run the whole batch once; tests below assert on the outcome."""
    sched = Scheduler(
        queue=JobQueue(max_depth=64, max_per_submitter=32),
        cache=ResultCache(capacity=64),
        n_workers=3,
    )
    jobs = [sched.submit(spec) for spec in build_specs()]
    victim = next(j for j in jobs if j.spec.instance == "p_hat90-1")
    assert sched.cancel(victim.id) is True
    sched.run_until_idle()
    return sched, jobs, victim


class TestEndToEnd:
    def test_all_jobs_reach_terminal_states(self, served):
        _, jobs, _ = served
        assert all(j.state in TERMINAL_STATES for j in jobs)

    def test_duplicates_served_from_cache(self, served):
        sched, jobs, _ = served
        from_cache = [j for j in jobs if j.from_cache]
        assert len(from_cache) >= 5  # every dup pair produced at least one
        for job in from_cache:
            twin_values = {
                j.result.value
                for j in jobs
                if j.key == job.key and j.result is not None
            }
            assert twin_values == {job.result.value}  # identical answers

    def test_cache_hit_rate_positive_in_snapshot(self, served):
        sched, _, _ = served
        snap = sched.metrics_snapshot()
        assert snap.cache_hit_rate is not None
        assert snap.cache_hit_rate > 0

    def test_each_unique_search_ran_at_most_once(self, served):
        _, jobs, _ = served
        executed = [j for j in jobs if j.attempts > 0]
        keys = [j.key for j in executed]
        assert len(keys) == len(set(keys))

    def test_timed_out_job_reported_timeout(self, served):
        _, jobs, _ = served
        timed_out = [j for j in jobs if j.spec.timeout is not None]
        assert len(timed_out) == 1
        assert timed_out[0].state is JobState.TIMEOUT
        assert "timeout" in timed_out[0].error

    def test_timeout_did_not_poison_the_pool(self, served):
        # Every job without a timeout or cancellation still completed.
        sched, jobs, victim = served
        others = [
            j for j in jobs if j.spec.timeout is None and j.id != victim.id
        ]
        assert all(j.state is JobState.DONE for j in others)
        # And the scheduler still serves new work afterwards.
        extra = sched.submit(
            JobSpec(app="maxclique", instance="brock90-1", submitter="late")
        )
        sched.run_until_idle()
        assert extra.state is JobState.DONE
        assert extra.from_cache  # straight from the result cache

    def test_cancelled_queued_job_never_ran(self, served):
        _, _, victim = served
        assert victim.state is JobState.CANCELLED
        assert victim.attempts == 0
        assert victim.started_at is None

    def test_snapshot_accounts_for_every_job(self, served):
        sched, jobs, _ = served
        snap = sched.metrics_snapshot()
        # +1 for the extra job submitted in the poison test (module-scoped
        # fixture: test order within the class is file order).
        assert snap.submitted >= len(jobs)
        assert snap.completed >= len(jobs)
        assert snap.jobs_by_state.get("CANCELLED", 0) >= 1
        assert snap.jobs_by_state.get("TIMEOUT", 0) == 1
        assert snap.latency_p50 is not None and snap.latency_p95 is not None
        assert snap.queue_depth == 0 and snap.running == 0

    def test_results_round_trip_to_json(self, served):
        import json

        from repro.core.results import result_from_dict

        _, jobs, _ = served
        done = [j for j in jobs if j.state is JobState.DONE]
        assert done
        for job in done:
            blob = json.dumps(job.result.to_dict())
            back = result_from_dict(json.loads(blob))
            assert back.value == job.result.value
            assert back.kind == job.result.kind
            assert back.metrics.nodes == job.result.metrics.nodes
