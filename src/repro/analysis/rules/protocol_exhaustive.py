"""protocol-exhaustiveness: every wire frame is fully plumbed.

The cluster protocol is declared once (``cluster/protocol.py``: module
level ``NAME = "NAME"`` constants) and consumed in three places: the
binary codec's append-only ``FRAME_TYPES`` tag table
(``cluster/codec.py``), the coordinator's dispatch
(``cluster/coordinator.py``) and the worker's dispatch
(``cluster/worker.py``).  Adding a frame type but forgetting any of
those is a silent-corruption bug: the binary codec would reject the
frame at runtime, or a peer would drop it on the floor.

This whole-project rule checks set equality/coverage:

- every declared frame has a tag in ``FRAME_TYPES`` and vice versa;
- every declared frame is referenced (``P.<NAME>`` through the import
  alias, or a directly-imported name) in the coordinator module *and*
  in the worker module — removing a dispatch arm removes the
  reference and fails the build (see the negative tests);
- ``protocol.__all__`` exports every frame constant.

The rule locates the four modules by path suffix inside the analyzed
file set, so it runs equally on ``src/repro`` and on test fixtures
that copy the tree; if the protocol module is not part of the run the
rule is silently inert.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Project, Rule, SourceFile
from repro.analysis.findings import Finding, Severity

__all__ = ["ProtocolExhaustiveRule"]

PROTOCOL_SUFFIX = "cluster/protocol.py"
CODEC_SUFFIX = "cluster/codec.py"
COORDINATOR_SUFFIX = "cluster/coordinator.py"
WORKER_SUFFIX = "cluster/worker.py"


def _declared_frames(src: SourceFile) -> dict[str, int]:
    """``NAME = "NAME"`` constants at module level -> line numbers."""
    frames: dict[str, int] = {}
    for node in src.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name) or not target.id.isupper():
            continue
        if (
            isinstance(node.value, ast.Constant)
            and node.value.value == target.id
        ):
            frames[target.id] = node.lineno
    return frames


def _dunder_all(src: SourceFile) -> Optional[set[str]]:
    for node in src.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            return {
                el.value
                for el in node.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            }
    return None


def _frame_types_tuple(src: SourceFile) -> Optional[tuple[list[str], int]]:
    for node in src.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "FRAME_TYPES"
            and isinstance(node.value, (ast.Tuple, ast.List))
        ):
            tags = [
                el.value
                for el in node.value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            ]
            return tags, node.lineno
    return None


def _protocol_aliases(src: SourceFile) -> tuple[set[str], set[str]]:
    """(module aliases, directly imported names) of the protocol module."""
    aliases: set[str] = set()
    direct: set[str] = set()
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name.endswith(".protocol"):
                    aliases.add(item.asname or item.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.endswith(".protocol"):
                for item in node.names:
                    direct.add(item.asname or item.name)
            elif module.endswith("cluster"):
                for item in node.names:
                    if item.name == "protocol":
                        aliases.add(item.asname or "protocol")
    return aliases, direct


def _referenced_frames(
    src: SourceFile, frames: set[str]
) -> set[str]:
    aliases, direct = _protocol_aliases(src)
    seen: set[str] = set()
    for node in ast.walk(src.tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in aliases
            and node.attr in frames
        ):
            seen.add(node.attr)
        elif (
            isinstance(node, ast.Name)
            and node.id in direct
            and node.id in frames
        ):
            seen.add(node.id)
    return seen


class ProtocolExhaustiveRule(Rule):
    name = "protocol-exhaustiveness"
    description = (
        "every frame type in cluster/protocol.py has a codec tag and"
        " dispatch plumbing in both the coordinator and the worker"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        """Cross-check frame types against codec tags and dispatch."""
        protocol = project.find_suffix(PROTOCOL_SUFFIX)
        if protocol is None or protocol.tree is None:
            return
        frames = _declared_frames(protocol)
        if not frames:
            return
        yield from self._check_all_export(protocol, frames)
        yield from self._check_codec(project, protocol, frames)
        for suffix, role in (
            (COORDINATOR_SUFFIX, "coordinator"),
            (WORKER_SUFFIX, "worker"),
        ):
            yield from self._check_dispatch(
                project, protocol, frames, suffix, role
            )

    def _check_all_export(
        self, protocol: SourceFile, frames: dict[str, int]
    ) -> Iterator[Finding]:
        exported = _dunder_all(protocol)
        if exported is None:
            return
        for frame, line in sorted(frames.items()):
            if frame not in exported:
                yield Finding(
                    path=protocol.rel,
                    line=line,
                    col=0,
                    rule=self.name,
                    severity=Severity.WARNING,
                    message=(
                        f"frame type '{frame}' is not exported in"
                        " protocol.__all__"
                    ),
                    symbol=frame,
                )

    def _check_codec(
        self,
        project: Project,
        protocol: SourceFile,
        frames: dict[str, int],
    ) -> Iterator[Finding]:
        codec = project.find_suffix(CODEC_SUFFIX)
        if codec is None or codec.tree is None:
            yield self._missing_module(protocol, CODEC_SUFFIX)
            return
        found = _frame_types_tuple(codec)
        if found is None:
            yield Finding(
                path=codec.rel,
                line=1,
                col=0,
                rule=self.name,
                message="no FRAME_TYPES tag table found in the codec",
                symbol="FRAME_TYPES",
            )
            return
        tags, line = found
        for frame, decl_line in sorted(frames.items()):
            if frame not in tags:
                yield Finding(
                    path=codec.rel,
                    line=line,
                    col=0,
                    rule=self.name,
                    message=(
                        f"frame type '{frame}' has no binary codec"
                        " tag in FRAME_TYPES"
                    ),
                    symbol=frame,
                )
        for tag in tags:
            if tag not in frames:
                yield Finding(
                    path=codec.rel,
                    line=line,
                    col=0,
                    rule=self.name,
                    message=(
                        f"FRAME_TYPES tags '{tag}' which is not a"
                        " declared protocol frame type"
                    ),
                    symbol=tag,
                )

    def _check_dispatch(
        self,
        project: Project,
        protocol: SourceFile,
        frames: dict[str, int],
        suffix: str,
        role: str,
    ) -> Iterator[Finding]:
        src = project.find_suffix(suffix)
        if src is None or src.tree is None:
            yield self._missing_module(protocol, suffix)
            return
        seen = _referenced_frames(src, set(frames))
        for frame, decl_line in sorted(frames.items()):
            if frame not in seen:
                yield Finding(
                    path=src.rel,
                    line=1,
                    col=0,
                    rule=self.name,
                    message=(
                        f"frame type '{frame}' is declared in"
                        f" protocol.py but never referenced in the"
                        f" {role} module — missing dispatch arm or"
                        " send site"
                    ),
                    symbol=frame,
                )

    def _missing_module(
        self, protocol: SourceFile, suffix: str
    ) -> Finding:
        return Finding(
            path=protocol.rel,
            line=1,
            col=0,
            rule=self.name,
            severity=Severity.WARNING,
            message=(
                f"protocol module analyzed without '{suffix}' in the"
                " file set; exhaustiveness not checked"
            ),
            symbol=suffix,
        )
