"""Tests for the terminal chart renderer."""

import pytest

from repro.util.asciiplot import ascii_chart


class TestAsciiChart:
    @staticmethod
    def grid_rows(art):
        return [line for line in art.splitlines() if "|" in line]

    def test_single_series_renders_markers(self):
        art = ascii_chart({"runtime": [(1, 10.0), (2, 5.0), (4, 2.5)]}, width=20, height=8)
        assert sum(row.count("o") for row in self.grid_rows(art)) == 3
        assert "o runtime" in art

    def test_multiple_series_distinct_markers(self):
        art = ascii_chart(
            {"a": [(1, 1.0), (2, 2.0)], "b": [(1, 3.0), (2, 4.0)]},
            width=20,
            height=8,
        )
        assert "o a" in art and "x b" in art
        assert "o" in art and "x" in art

    def test_title_and_labels(self):
        art = ascii_chart(
            {"s": [(0, 1.0), (1, 2.0)]},
            title="scaling",
            xlabel="localities",
            ylabel="runtime",
            width=20,
            height=6,
        )
        assert art.splitlines()[0] == "scaling"
        assert "x: localities" in art
        assert "y: runtime" in art

    def test_axis_extents_shown(self):
        art = ascii_chart({"s": [(1, 100.0), (17, 900.0)]}, width=30, height=6)
        assert "900" in art
        assert "100" in art
        assert "17" in art

    def test_log_scale_spreads_magnitudes(self):
        # On a log axis, 10 -> 100 -> 1000 are equally spaced rows.
        art = ascii_chart(
            {"s": [(0, 10.0), (1, 100.0), (2, 1000.0)]},
            width=21,
            height=9,
            log_y=True,
        )
        rows = [
            i for i, line in enumerate(self.grid_rows(art)) if "o" in line
        ]
        assert len(rows) == 3
        assert rows[1] - rows[0] == rows[2] - rows[1]

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 0.0)]}, log_y=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_flat_series_centres(self):
        art = ascii_chart({"s": [(0, 5.0), (1, 5.0)]}, width=10, height=5)
        assert sum(row.count("o") for row in self.grid_rows(art)) == 2
