"""Integration: the production skeletons agree with the formal model.

The same search problem is run through (a) the abstract machine of
:mod:`repro.semantics` over a materialised tree, and (b) the production
skeletons of :mod:`repro.core` over an equivalent SearchSpec.  Both are
instances of the paper's model, so their results must coincide — for
every search type and coordination.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.nodegen import ListNodeGenerator
from repro.core.params import SkeletonParams
from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.core.space import SearchSpec
from repro.semantics.machine import (
    DECISION,
    ENUMERATION,
    OPTIMISATION,
    Machine,
    SearchProblem,
)
from repro.semantics.monoids import BoundedMaxMonoid, MaxMonoid, SumMonoid
from repro.semantics.tree import OrderedTree
from repro.semantics.words import EPSILON


def close_under_prefix(words):
    nodes = {EPSILON}
    for w in words:
        for i in range(len(w) + 1):
            nodes.add(w[:i])
    return nodes


trees = st.lists(
    st.lists(st.sampled_from("abc"), max_size=4).map(tuple), max_size=10
).map(lambda ws: OrderedTree.from_nodes(close_under_prefix(ws)))

seeds = st.integers(min_value=0, max_value=2**32)


def spec_of_tree(tree: OrderedTree, h) -> SearchSpec:
    """A SearchSpec whose Lazy Node Generator walks the materialised tree."""
    return SearchSpec(
        name="semantics-mirror",
        space=tree,
        root=EPSILON,
        generator=lambda t, node: ListNodeGenerator(list(t.children(node))),
        objective=h,
    )


def h_of(tree, seed):
    values = {w: hash((w, seed)) % 11 for w in tree.nodes}
    return values.__getitem__


class TestEnumerationAgreement:
    @settings(max_examples=40, deadline=None)
    @given(trees, seeds, seeds)
    def test_sequential_matches_machine(self, tree, hseed, mseed):
        h = h_of(tree, hseed)
        machine = Machine(
            SearchProblem(ENUMERATION, SumMonoid(), h),
            spawn_policy="any",
            seed=mseed,
        )
        model = machine.search(tree, n_threads=3, max_steps=100_000)
        core = sequential_search(spec_of_tree(tree, h), Enumeration()).value
        assert core == model

    @settings(max_examples=15, deadline=None)
    @given(trees, seeds)
    def test_parallel_skeleton_matches_machine(self, tree, hseed):
        h = h_of(tree, hseed)
        machine = Machine(
            SearchProblem(ENUMERATION, SumMonoid(), h), spawn_policy="depth", d_cutoff=1
        )
        model = machine.search(tree, n_threads=2, max_steps=100_000)
        from repro import search

        core = search(
            spec_of_tree(tree, h),
            skeleton="budget",
            search_type="enumeration",
            params=SkeletonParams(localities=1, workers_per_locality=3, budget=2),
        ).value
        assert core == model


class TestOptimisationAgreement:
    @settings(max_examples=40, deadline=None)
    @given(trees, seeds, seeds)
    def test_max_value_agrees(self, tree, hseed, mseed):
        h = h_of(tree, hseed)
        machine = Machine(
            SearchProblem(OPTIMISATION, MaxMonoid(), h),
            spawn_policy="stack",
            seed=mseed,
        )
        model_best = machine.search(tree, n_threads=2, max_steps=100_000)
        core = sequential_search(spec_of_tree(tree, h), Optimisation())
        assert core.value == h(model_best)


class TestDecisionAgreement:
    @settings(max_examples=40, deadline=None)
    @given(trees, seeds)
    def test_depth_decision_agrees(self, tree, mseed):
        k = 2
        h = lambda w: min(len(w), k)  # noqa: E731
        machine = Machine(
            SearchProblem(DECISION, BoundedMaxMonoid(k), h),
            spawn_policy="budget",
            k_budget=1,
            seed=mseed,
        )
        model_best = machine.search(tree, n_threads=2, max_steps=100_000)
        core = sequential_search(spec_of_tree(tree, h), Decision(target=k))
        assert core.found == (h(model_best) >= k)
