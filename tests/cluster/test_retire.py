"""Retire-drain protocol tests: RETIRE, RELEASE, and the satellites.

Protocol-level coverage uses the scripted :class:`FakeWorker` from
``test_coordinator`` so every lease/epoch decision around a drain is
observable; the e2e class runs real elastic scale-downs and checks the
results stay bit-identical to the sequential oracle.
"""

import time

import pytest

from repro.cluster import protocol as P
from repro.cluster.coordinator import ClusterError, ClusterHandle
from repro.cluster.worker import ClusterWorker

from tests.cluster.test_coordinator import (
    ENUM_PAYLOAD,
    OPT_PAYLOAD,
    FakeWorker,
    result_frame,
)


@pytest.fixture
def handle():
    h = ClusterHandle(heartbeat_interval=0.1, heartbeat_timeout=0.6)
    h.start()
    yield h
    h.shutdown(drain_workers=False)


def offcut_frame(task_msg, nodes):
    return {
        "type": P.OFFCUT,
        "job": task_msg["job"],
        "task": task_msg["task"],
        "epoch": task_msg["epoch"],
        "depth": task_msg["depth"] + 1,
        "nodes": nodes,
    }


class TestRetireProtocol:
    def test_release_requeues_under_bumped_epoch(self, handle):
        """A retiring worker's handed-back lease is re-leased to another
        worker with a bumped epoch, counted in ``reassigned``, and the
        job completes with nothing lost or double-counted."""
        w1 = FakeWorker(*handle.address, name="w1", slots=3)
        w2 = None
        try:
            fut = handle.run_job_future(OPT_PAYLOAD, timeout=30)
            w1.recv(P.JOB)
            t1 = w1.recv(P.TASK)  # root
            # Split two subtrees off the root; slots=3 leases both back.
            w1.send(offcut_frame(t1, [["a"], ["b"]]))
            t2 = w1.recv(P.TASK)
            t3 = w1.recv(P.TASK)

            assert handle.retire_worker("w1") is True
            w1.recv(P.RETIRE)
            # Second retire is idempotent: no duplicate RETIRE frame.
            assert handle.retire_worker("w1") is True
            w1.assert_no_frame(P.RETIRE)

            # Drain: t2 is "in flight" (finishes normally), t3 is an
            # unstarted prefetch and goes back.
            w1.send({
                "type": P.RELEASE, "job": t3["job"],
                "tasks": [[t3["task"], t3["epoch"]]],
            })
            w1.send(result_frame(t1, value=3, node=("n3",)))
            w1.send(result_frame(t2, value=4, node=("n4",)))

            # A fresh worker inherits the released task at epoch + 1.
            w2 = FakeWorker(*handle.address, name="w2")
            w2.recv(P.JOB)
            t3b = w2.recv(P.TASK)
            assert t3b["task"] == t3["task"]
            assert t3b["epoch"] == t3["epoch"] + 1

            stats = handle.load_stats()
            assert stats["reassigned"] == 1

            w2.send(result_frame(t3b, value=5, node=("n5",)))
            res = fut.result(timeout=10)
            # Three tasks, each RESULTed exactly once (5 nodes each).
            assert res.metrics.nodes == 15
            assert res.metrics.reassigned == 1
            assert res.value == 5
        finally:
            w1.close()
            if w2 is not None:
                w2.close()

    def test_retiring_worker_gets_no_new_leases(self, handle):
        """Offcuts arriving after RETIRE are leased to other workers,
        never back to the retiring one."""
        w1 = FakeWorker(*handle.address, name="w1")
        w2 = FakeWorker(*handle.address, name="w2")
        try:
            fut = handle.run_job_future(OPT_PAYLOAD, timeout=30)
            w1.recv(P.JOB)
            w2.recv(P.JOB)
            # Exactly one of them holds the root; normalise names.
            first, other = w1, w2
            try:
                t1 = w1.recv(P.TASK, timeout=1.0)
            except AssertionError:
                first, other = w2, w1
                t1 = w2.recv(P.TASK)

            assert handle.retire_worker(
                "w1" if first is w1 else "w2"
            ) is True
            first.recv(P.RETIRE)
            # The in-flight root splits a subtree *after* RETIRE: the
            # new task must go to the other worker.
            first.send(offcut_frame(t1, [["x"]]))
            t2 = other.recv(P.TASK)
            first.assert_no_frame(P.TASK)

            first.send(result_frame(t1, value=2, node=("n2",)))
            other.send(result_frame(t2, value=7, node=("n7",)))
            res = fut.result(timeout=10)
            assert res.value == 7
            assert res.metrics.reassigned == 0  # handback never needed
        finally:
            w1.close()
            w2.close()

    def test_stale_release_is_dropped(self, handle):
        """RELEASE frames with a wrong epoch or a foreign task do not
        corrupt the lease table or inflate ``reassigned``."""
        w1 = FakeWorker(*handle.address, name="w1")
        try:
            fut = handle.run_job_future(OPT_PAYLOAD, timeout=30)
            w1.recv(P.JOB)
            t1 = w1.recv(P.TASK)
            w1.send({
                "type": P.RELEASE, "job": t1["job"],
                "tasks": [
                    [t1["task"], t1["epoch"] + 5],  # wrong epoch
                    [9999, 0],                       # no such task
                    "garbage",                       # malformed pair
                ],
            })
            # The lease must still be live: finishing it completes the
            # job (a dropped lease would hang until timeout).
            w1.send(result_frame(t1, value=1, node=("n1",)))
            res = fut.result(timeout=10)
            assert res.metrics.reassigned == 0
        finally:
            w1.close()

    def test_retire_unknown_worker_is_false(self, handle):
        assert handle.retire_worker("nobody") is False

    def test_load_stats_shape(self, handle):
        w1 = FakeWorker(*handle.address, name="w1")
        try:
            deadline = time.monotonic() + 5.0
            while handle.n_workers() < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            stats = handle.load_stats()
            assert stats["connected"] == 1
            assert stats["job_active"] is False
            assert stats["queued_tasks"] == 0
            names = [w["name"] for w in stats["workers"]]
            assert names == ["w1"]
            assert handle.retire_worker("w1") is True
            assert handle.load_stats()["retiring"] == 1
        finally:
            w1.close()


class TestRetireEndToEnd:
    def test_scale_down_handback_enumeration_bit_identical(self):
        """Scale 3 -> 1 mid-enumeration: retiring workers hand back
        their unstarted leases and the node count stays exact — the
        strongest possible no-loss/no-duplication check, because any
        re-run or dropped subtree changes the total."""
        from repro.core.searchtypes import make_search_type
        from repro.core.sequential import sequential_search
        from repro.deploy import elastic_budget_search
        from repro.instances.library import library_spec_factory, spec_for

        spec, tname, kwargs = spec_for("uts-geo-med")
        stype = make_search_type(tname, **kwargs)
        res = elastic_budget_search(
            library_spec_factory, ("uts-geo-med",), stype,
            minimum=1, maximum=3, budget=300, share_poll=32, timeout=90,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_kill_during_retire_recovers(self):
        """A worker chaos-killed by the RETIRE frame dies holding its
        leases; the crash re-lease path must recover exactly what the
        cooperative RELEASE would have handed back."""
        from repro.core.searchtypes import make_search_type
        from repro.core.sequential import sequential_search
        from repro.deploy import elastic_budget_search
        from repro.instances.library import library_spec_factory, spec_for

        spec, tname, kwargs = spec_for("brock90-1")
        stype = make_search_type(tname, **kwargs)
        plan = {"events": [
            {"kind": "kill_on_retire", "worker": "deploy-1"},
            {"kind": "kill_on_retire", "worker": "deploy-2"},
        ]}
        res = elastic_budget_search(
            library_spec_factory, ("brock90-1",), stype,
            minimum=1, maximum=3, budget=400, share_poll=32, timeout=90,
            heartbeat_interval=0.1, heartbeat_timeout=1.0, fault_plan=plan,
        )
        seq = sequential_search(spec, stype)
        assert res.value == seq.value


class TestReconnectBackoffSatellites:
    def test_reconnect_delay_is_capped_and_jittered(self):
        w = ClusterWorker(
            "127.0.0.1", 1, reconnect_max=2.0, jitter=lambda: 1.0
        )
        assert w.reconnect_delay(0.1) == pytest.approx(0.1)
        # Way past the cap: clamped to reconnect_max, never unbounded.
        assert w.reconnect_delay(500.0) == pytest.approx(2.0)

    def test_jitter_spreads_the_delay(self):
        lo = ClusterWorker("127.0.0.1", 1, jitter=lambda: 0.0)
        hi = ClusterWorker("127.0.0.1", 1, jitter=lambda: 0.999)
        base = lo.reconnect_delay(1.0)
        assert base == pytest.approx(0.5)  # floor is half the capped delay
        assert lo.reconnect_delay(1.0) < hi.reconnect_delay(1.0) <= 1.0

    def test_wait_for_workers_names_the_shortfall(self):
        h = ClusterHandle(heartbeat_interval=0.1, heartbeat_timeout=0.6)
        h.start()
        try:
            with pytest.raises(ClusterError, match=r"only 0 of 2.*workers"):
                h.wait_for_workers(2, timeout=0.3)
        finally:
            h.shutdown(drain_workers=False)
