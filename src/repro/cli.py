"""Command-line interface mirroring the YewPar artifact binaries.

The paper's artifact exposes per-application binaries driven by flags
like ``--skeleton``, ``-d`` (depth cutoff), ``-b`` (budget),
``--chunked`` and ``--decisionBound`` (Appendix A).  This module
reproduces that interface over the Python skeletons::

    python -m repro.cli maxclique --instance sanr90-1 --skeleton depthbounded -d 2
    python -m repro.cli maxclique -f mygraph.clq --skeleton budget -b 100 \\
        --decisionBound 27 --localities 2 --workers 8
    python -m repro.cli uts --shape geometric --b0 4 --depth 8 --skeleton stacksteal
    python -m repro.cli maxclique --instance brock100-1 --skeleton budget \\
        --backend processes --processes 4 -b 2000   # real OS processes
    python -m repro.cli ns --genus 14 --skeleton budget -b 50
    python -m repro.cli knapsack --instance knap-sim-30 --skeleton stacksteal
    python -m repro.cli tsp --instance tsp-rand-12 --skeleton depthbounded -d 3
    python -m repro.cli sip --instance sip-planted-20-70 --skeleton stacksteal
    python -m repro.cli tune --instance sanr90-1 --workers 8   # pick a skeleton
    python -m repro.cli list            # show the instance library

Beyond the artifact, the service layer (:mod:`repro.service`) is driven
by two extra subcommands::

    python -m repro.cli submit --jobfile jobs.jsonl --app maxclique \\
        --instance sanr90-1 --priority 3 --timeout 10
    python -m repro.cli serve --jobfile jobs.jsonl --pool 4 --results out.jsonl

and the distributed runtime (:mod:`repro.cluster`) by three more::

    python -m repro.cli cluster-worker --connect 127.0.0.1:7031
    python -m repro.cli cluster-coordinator --listen 127.0.0.1:7031 \\
        --jobfile jobs.jsonl --min-workers 2
    python -m repro.cli maxclique --instance brock100-1 --skeleton budget \\
        --backend cluster --cluster-workers 4   # self-contained localhost run

The network front door (:mod:`repro.gateway`, see docs/gateway.md)
adds three more::

    python -m repro.cli gateway --listen 127.0.0.1:8080 --shards 2
    python -m repro.cli submit --url http://127.0.0.1:8080 --app maxclique \\
        --instance sanr90-1 --wait
    python -m repro.cli gateway-top --url http://127.0.0.1:8080

The differential conformance harness (:mod:`repro.verify`, see
docs/verify.md) runs as::

    python -m repro.cli verify --backend all --seed 0 --rounds 20
    python -m repro.cli verify --backend cluster --chaos --seed 7 \\
        --rounds 10 --artifacts verify-artifacts

Exit status is 0 on success; decision searches exit 0 whether or not a
witness exists (the answer is printed), matching the original binaries.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.core.searchtypes import make_search_type
from repro.core.skeletons import COORDINATIONS, make_skeleton

__all__ = ["main", "build_parser"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--skeleton",
        default="sequential",
        choices=sorted(COORDINATIONS),
        help="search coordination (default: sequential)",
    )
    parser.add_argument(
        "-d", "--depth-cutoff", type=int, default=2, metavar="D",
        help="Depth-Bounded cutoff (default 2)",
    )
    parser.add_argument(
        "-b", "--budget", type=int, default=1000, metavar="N",
        help="Budget backtrack budget (default 1000)",
    )
    parser.add_argument(
        "--chunked", action="store_true", default=False,
        help="Stack-Stealing: steal whole lowest levels",
    )
    parser.add_argument(
        "--spawn-probability", type=float, default=0.02, metavar="P",
        help="Random coordination spawn probability",
    )
    parser.add_argument(
        "--localities", type=int, default=1, help="simulated localities"
    )
    parser.add_argument(
        "--workers", type=int, default=15,
        help="workers per locality (paper default 15)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulator seed")
    parser.add_argument(
        "--backend", default="sim", choices=["sim", "processes", "cluster"],
        help="run parallel skeletons on the simulator (default), on real "
        "OS processes (depthbounded/budget), or on a localhost TCP "
        "cluster (budget only)",
    )
    parser.add_argument(
        "--processes", type=int, default=2, metavar="N",
        help="worker processes for --backend processes (default 2)",
    )
    parser.add_argument(
        "--share-poll", type=int, default=64, metavar="N",
        help="processes backend: nodes between shared-incumbent reads",
    )
    parser.add_argument(
        "--cluster-workers", type=int, default=2, metavar="N",
        help="worker nodes for --backend cluster (default 2)",
    )
    parser.add_argument(
        "--wire-codec", default="binary", choices=["json", "binary"],
        help="cluster backend: frame body format on the wire (binary is "
        "compact and fast; json is readable under tcpdump)",
    )
    parser.add_argument(
        "--decisionBound", type=int, default=None, metavar="K",
        help="run as a decision search with this target objective",
    )
    parser.add_argument(
        "--trace", action="store_true", default=False,
        help="print a worker Gantt chart of the (simulated) schedule",
    )


def _params(args: argparse.Namespace) -> SkeletonParams:
    return SkeletonParams(
        d_cutoff=args.depth_cutoff,
        budget=args.budget,
        chunked=args.chunked,
        spawn_probability=args.spawn_probability,
        localities=args.localities,
        workers_per_locality=args.workers,
        seed=args.seed,
        backend=args.backend,
        n_processes=args.processes,
        share_poll=args.share_poll,
        cluster_workers=args.cluster_workers,
        wire_codec=args.wire_codec,
    )


def _report(res: SearchResult, out) -> None:
    print(f"search type: {res.kind}", file=out)
    if res.kind == "decision":
        print(f"found: {res.found}", file=out)
    print(f"value: {res.value}", file=out)
    if res.node is not None:
        print(f"witness: {res.node}", file=out)
    m = res.metrics
    print(
        f"nodes: {m.nodes}  prunes: {m.prunes}  backtracks: {m.backtracks}  "
        f"spawns: {m.spawns}  steals: {m.steals}",
        file=out,
    )
    if res.virtual_time is not None:
        eff = res.efficiency()
        eff_str = f"  efficiency: {eff:.0%}" if eff is not None else ""
        print(
            f"workers: {res.workers}  virtual time: {res.virtual_time:.1f}{eff_str}",
            file=out,
        )
    if res.wall_time is not None:
        print(f"wall time: {res.wall_time:.3f}s", file=out)


def _library_instance(name: str, expect_app: Optional[str] = None):
    from repro.instances.library import _entry, spec_for

    entry = _entry(name)
    if expect_app is not None and entry.app not in (expect_app, "kclique"):
        raise SystemExit(
            f"instance {name!r} belongs to application {entry.app!r}"
        )
    return spec_for(name)


def _run(spec, search_type: str, args: argparse.Namespace, out,
         spec_factory=None, factory_args=(), **type_kwargs):
    skeleton = make_skeleton(args.skeleton, search_type)
    stype = make_search_type(search_type, **type_kwargs)
    cluster = None
    if args.backend in ("processes", "cluster") and args.skeleton != "sequential":
        if args.trace:
            raise SystemExit(
                "--trace records the simulated schedule; it is not "
                f"available with --backend {args.backend}"
            )
        if spec_factory is None:
            raise SystemExit(
                f"--backend {args.backend} must rebuild the search on each "
                "worker, which only works for library instances and "
                "parameterised generators (not ad-hoc inputs like -f files)"
            )
    if args.trace and args.skeleton != "sequential":
        from repro.runtime.executor import SimulatedCluster
        from repro.runtime.topology import Topology

        cluster = SimulatedCluster(
            Topology(args.localities, args.workers), trace=True
        )
    res = skeleton.search(
        spec, _params(args), stype=stype, cluster=cluster,
        spec_factory=spec_factory, factory_args=factory_args,
    )
    _report(res, out)
    if res.trace is not None:
        from repro.runtime.trace import render_gantt

        print(render_gantt(res.trace), file=out)
    return res


# -- subcommands ----------------------------------------------------------


def _cmd_maxclique(args, out) -> int:
    from repro.apps.maxclique import maxclique_spec
    from repro.instances.dimacs import parse_dimacs

    if args.file:
        graph = parse_dimacs(args.file)
        spec = maxclique_spec(graph, name=args.file)
        factory, fargs = None, ()
    else:
        from repro.instances.library import library_spec_factory

        spec, _, _ = _library_instance(args.instance, "maxclique")
        factory, fargs = library_spec_factory, (args.instance,)
    if args.decisionBound is not None:
        _run(spec, "decision", args, out, spec_factory=factory,
             factory_args=fargs, target=args.decisionBound)
    else:
        _run(spec, "optimisation", args, out, spec_factory=factory,
             factory_args=fargs)
    return 0


def _cmd_generic_library(app: str):
    def cmd(args, out) -> int:
        from repro.instances.library import library_spec_factory

        spec, stype_name, kwargs = _library_instance(args.instance, app)
        factory, fargs = library_spec_factory, (args.instance,)
        if args.decisionBound is not None:
            if stype_name == "decision":
                kwargs = {"target": args.decisionBound}
                _run(spec, "decision", args, out, spec_factory=factory,
                     factory_args=fargs, **kwargs)
            else:
                _run(spec, "decision", args, out, spec_factory=factory,
                     factory_args=fargs, target=args.decisionBound)
        else:
            _run(spec, stype_name, args, out, spec_factory=factory,
                 factory_args=fargs, **kwargs)
        return 0

    return cmd


def _cmd_uts(args, out) -> int:
    from repro.apps.uts import UTSInstance, uts_spec, uts_spec_from_params

    inst = UTSInstance(
        shape=args.shape,
        b0=args.b0,
        max_depth=args.depth,
        m=args.m,
        q=args.q,
        seed=args.tree_seed,
    )
    spec = uts_spec(inst, name=f"uts-{args.shape}")
    _run(
        spec, "enumeration", args, out,
        spec_factory=uts_spec_from_params,
        factory_args=(args.shape, args.b0, args.depth, args.m, args.q,
                      args.tree_seed, f"uts-{args.shape}"),
    )
    return 0


def _cmd_ns(args, out) -> int:
    from repro.apps.semigroups import SemigroupInstance, semigroups_spec

    inst = SemigroupInstance(max_genus=args.genus)
    spec = semigroups_spec(inst, name=f"ns-genus-{args.genus}",
                           count_genus=args.genus if args.count_genus else None)
    _run(spec, "enumeration", args, out)
    return 0


def _cmd_tune(args, out) -> int:
    from repro.core.searchtypes import make_search_type
    from repro.tuning import tune

    spec, stype_name, kwargs = _library_instance(args.instance)
    stype = make_search_type(stype_name, **kwargs)
    report = tune(
        spec,
        stype,
        localities=args.localities,
        workers_per_locality=args.workers,
        seed=args.seed,
    )
    print(report.render(), file=out)
    return 0


def _parse_param(text: str):
    """Parse one ``key=value`` override, coercing value to bool/int/float
    when it looks like one (SkeletonParams validates the rest)."""
    if "=" not in text:
        raise SystemExit(f"--param expects key=value, got {text!r}")
    key, raw = text.split("=", 1)
    if raw.lower() in ("true", "false"):
        return key, raw.lower() == "true"
    for cast in (int, float):
        try:
            return key, cast(raw)
        except ValueError:
            continue
    return key, raw


def _cmd_submit(args, out) -> int:
    import json

    from repro.service.jobs import JobSpec

    stype_kwargs = {}
    if args.target is not None:
        stype_kwargs["target"] = args.target
    try:
        spec = JobSpec(
            app=args.app,
            instance=args.instance,
            skeleton=args.skeleton,
            search_type=args.search_type,
            params=dict(_parse_param(p) for p in args.param),
            stype_kwargs=stype_kwargs,
            priority=args.priority,
            timeout=args.timeout,
            submitter=args.submitter,
        )
    except (ValueError, TypeError) as exc:
        raise SystemExit(f"invalid job: {exc}") from None
    if args.url:
        return _submit_remote(spec, args, out)
    if args.wait:
        raise SystemExit("--wait requires --url (job files are drained "
                         "later by `serve`)")
    line = json.dumps(spec.to_dict(), sort_keys=True)
    if args.jobfile == "-":
        print(line, file=out)
    else:
        with open(args.jobfile, "a") as fh:
            fh.write(line + "\n")
        print(f"queued {spec.app}/{spec.instance} key={spec.key[:12]} "
              f"-> {args.jobfile}", file=out)
    return 0


def _submit_remote(spec, args, out) -> int:
    """POST one job to a running gateway (``submit --url``); with
    ``--wait``, follow the status stream and report the result."""
    from repro.gateway.client import Backpressure, GatewayClient, GatewayError

    try:
        client = GatewayClient(args.url)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        record = client.submit_paced(spec.to_dict())
    except Backpressure as bp:
        print(f"gateway busy (HTTP {bp.status}), gave up after pacing; "
              f"server suggests retrying in {bp.retry_after:g}s", file=out)
        return 1
    except (GatewayError, OSError) as exc:
        print(f"submit failed: {exc}", file=out)
        return 1
    print(f"queued {spec.app}/{spec.instance} key={spec.key[:12]} "
          f"-> {client.host}:{client.port} "
          f"(job {record['job']}, shard {record['shard']}, "
          f"{record['state']}{', cached' if record.get('from_cache') else ''})",
          file=out)
    if not args.wait:
        return 0
    try:
        for event in client.events(record["job"]):
            kind = event.get("event")
            if kind == "incumbent":
                print(f"  incumbent: {event.get('value')}", file=out)
            elif kind != "ping":
                print(f"  {kind}", file=out)
        status, body = client.result(record["job"])
        if status != 200:
            final = client.job(record["job"])
            print(f"job {final['state']}: {final.get('error')}", file=out)
            return 1
    except (GatewayError, OSError) as exc:
        print(f"wait failed: {exc}", file=out)
        return 1
    from repro.core.results import result_from_dict

    _report(result_from_dict(body["result"]), out)
    return 0


def _cmd_gateway(args, out) -> int:
    """Run the HTTP front door until SIGTERM/SIGINT, then drain: finish
    in-flight jobs, cancel queued ones, stop serving."""
    import signal
    import threading

    from repro.gateway import Gateway, GatewayHandle, ShardRouter

    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.adaptive and args.backend != "cluster":
        raise SystemExit("--adaptive requires --backend cluster")
    if args.adaptive:
        if args.min_workers < 1:
            raise SystemExit("--min-workers must be >= 1")
        if args.max_workers < args.min_workers:
            raise SystemExit("--max-workers must be >= --min-workers")
    host, port = _parse_addr(args.listen)

    deployments = []

    def backend_factory(index: int):
        if args.backend == "processes":
            from repro.service import ProcessBackend

            return ProcessBackend()
        if args.backend == "cluster":
            from repro.cluster.backend import ClusterBackend

            if args.adaptive:
                from repro.deploy import ClusterDeployment, WorkerSpec

                deployment = ClusterDeployment(
                    WorkerSpec(
                        name_prefix=f"gw{index}", wire_codec=args.wire_codec
                    ),
                    wire_codec=args.wire_codec,
                    on_event=lambda line, i=index: print(
                        f"shard {i} fleet: {line}", file=out
                    ),
                )
                deployments.append((index, deployment))
                return ClusterBackend(
                    deployment=deployment, min_workers=args.min_workers
                )
            return ClusterBackend(
                local_workers=args.cluster_workers, wire_codec=args.wire_codec
            )
        return None  # inproc: the shard's scheduler threads run the searches

    try:
        router = ShardRouter(
            args.shards,
            backend_factory=backend_factory,
            pool=args.pool,
            queue_depth=args.queue_depth,
            per_submitter=args.per_submitter,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
        )
    except OSError as exc:
        raise SystemExit(f"cannot start shard backends: {exc}") from None
    for index, deployment in deployments:
        # Each shard's fleet follows that shard's own backlog — the queue
        # exists only now, after the router built it.
        deployment.adapt(
            args.min_workers,
            args.max_workers,
            queue_depth=router.shards[index].scheduler.queue.depth,
        )
    handle = GatewayHandle(
        Gateway(router, host=host, port=port, retry_after=args.retry_after)
    )
    try:
        bound_host, bound_port = handle.start()
    except OSError as exc:
        raise SystemExit(f"cannot listen on {host}:{port}: {exc}") from None
    print(f"gateway listening on http://{bound_host}:{bound_port}  "
          f"({args.shards} shard(s), backend {args.backend})", file=out)

    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    previous = {}
    try:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _on_signal)
    except ValueError:
        pass  # not the main thread: no handlers, rely on KeyboardInterrupt
    try:
        while not stop.wait(timeout=0.5):
            pass
        print("draining: in-flight jobs finish, queued jobs cancel, "
              "new submissions get 503", file=out, flush=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        handle.close(timeout=args.drain_timeout)
        print("gateway stopped", file=out)
    return 0


def _cmd_gateway_top(args, out) -> int:
    """Live ASCII dashboard over a gateway's ``/metrics`` endpoint."""
    from repro.gateway.dashboard import gateway_top

    iterations = 1 if args.once else args.iterations
    return gateway_top(
        args.url,
        interval=args.interval,
        iterations=iterations,
        out=out,
        clear=not args.no_clear,
    )


def _parse_addr(text: str) -> tuple[str, int]:
    """Parse a ``host:port`` address argument."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"expected host:port, got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"bad port in {text!r}") from None


def _cmd_cluster_coordinator(args, out) -> int:
    """Run a coordinator over a job file: wait for workers, run each job
    across them, report like the single-shot commands."""
    import json

    from repro.cluster.backend import ClusterBackend
    from repro.cluster.coordinator import ClusterError, ClusterHandle
    from repro.service.jobs import JobSpec

    host, port = _parse_addr(args.listen)
    if args.jobfile == "-":
        lines = sys.stdin.readlines()
    else:
        try:
            with open(args.jobfile) as fh:
                lines = fh.readlines()
        except OSError as exc:
            raise SystemExit(f"cannot read jobfile: {exc}") from None
    specs = []
    failed = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            specs.append(JobSpec.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as exc:
            failed += 1
            print(f"line {lineno}: rejected ({exc})", file=out)

    handle = ClusterHandle(
        host=host, port=port, heartbeat_timeout=args.heartbeat_timeout,
        wire_codec=args.wire_codec,
    )
    try:
        bound_host, bound_port = handle.start()
    except OSError as exc:
        raise SystemExit(f"cannot listen on {host}:{port}: {exc}") from None
    try:
        print(f"coordinator listening on {bound_host}:{bound_port}", file=out)
        try:
            handle.wait_for_workers(args.min_workers, timeout=args.worker_wait)
        except ClusterError as exc:
            raise SystemExit(str(exc)) from None
        print(f"workers connected: {handle.n_workers()}", file=out)
        for spec in specs:
            label = f"{spec.app}/{spec.instance}"
            try:
                payload = ClusterBackend._payload_for(spec)
                res = handle.run_job(payload, timeout=spec.timeout)
            except (ClusterError, ValueError) as exc:
                failed += 1
                print(f"== {label}: FAILED ({exc})", file=out)
                continue
            print(f"== {label} (workers: {res.workers}, "
                  f"reassigned: {res.metrics.reassigned})", file=out)
            _report(res, out)
    finally:
        handle.shutdown(drain_workers=True)
    return 1 if failed else 0


def _cmd_cluster_worker(args, out) -> int:
    """Run worker capacity against a coordinator until drained."""
    from repro.cluster.worker import run_worker

    host, port = _parse_addr(args.connect)
    print(f"worker ({args.processes} process(es)) -> {host}:{port}", file=out)
    try:
        run_worker(
            host, port,
            processes=args.processes,
            name=args.name,
            give_up_after=args.give_up_after,
            wire_codec=args.wire_codec,
        )
    except KeyboardInterrupt:
        return 0
    except ConnectionError as exc:
        print(str(exc), file=out)
        return 1
    print("drained; exiting", file=out)
    return 0


def _cmd_cluster_deploy(args, out) -> int:
    """Run a job file on an elastic deployment: the coordinator plus an
    adaptive worker fleet that grows toward --max-workers while work is
    queued and drains back to --min-workers when it is not."""
    import json

    from repro.cluster.backend import ClusterBackend
    from repro.cluster.coordinator import ClusterError
    from repro.deploy import ClusterDeployment, WorkerSpec
    from repro.service.jobs import JobSpec

    if args.min_workers < 1:
        raise SystemExit("--min-workers must be >= 1")
    if args.max_workers < args.min_workers:
        raise SystemExit("--max-workers must be >= --min-workers")
    host, port = _parse_addr(args.listen)
    if args.jobfile == "-":
        lines = sys.stdin.readlines()
    else:
        try:
            with open(args.jobfile) as fh:
                lines = fh.readlines()
        except OSError as exc:
            raise SystemExit(f"cannot read jobfile: {exc}") from None
    specs = []
    failed = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            specs.append(JobSpec.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError) as exc:
            failed += 1
            print(f"line {lineno}: rejected ({exc})", file=out)

    # Pending jobs count as demand: the fleet bursts while the backlog
    # exists and drains once only the in-flight job remains.
    pending = len(specs)

    try:
        deployment = ClusterDeployment(
            WorkerSpec(name_prefix="deploy", wire_codec=args.wire_codec),
            host=host,
            port=port,
            heartbeat_timeout=args.heartbeat_timeout,
            wire_codec=args.wire_codec,
            on_event=lambda line: print(f"fleet: {line}", file=out),
        )
    except OSError as exc:
        raise SystemExit(f"cannot listen on {host}:{port}: {exc}") from None
    try:
        bound_host, bound_port = deployment.handle.address
        print(f"coordinator listening on {bound_host}:{bound_port}", file=out)
        deployment.adapt(
            args.min_workers, args.max_workers, queue_depth=lambda: pending
        )
        try:
            deployment.wait_for_workers(
                args.min_workers, timeout=args.worker_wait
            )
        except ClusterError as exc:
            raise SystemExit(str(exc)) from None
        for spec in specs:
            pending -= 1
            label = f"{spec.app}/{spec.instance}"
            try:
                payload = ClusterBackend._payload_for(spec)
                res = deployment.run_job(payload, timeout=spec.timeout)
            except (ClusterError, ValueError) as exc:
                failed += 1
                print(f"== {label}: FAILED ({exc})", file=out)
                continue
            print(f"== {label} (workers: {res.workers}, "
                  f"reassigned: {res.metrics.reassigned})", file=out)
            _report(res, out)
        print(
            f"fleet: peak {deployment.fleet_peak}  "
            f"spawned {deployment.workers_spawned}  "
            f"retired {deployment.workers_retired}",
            file=out,
        )
    finally:
        deployment.close()
    return 1 if failed else 0


def _cmd_serve(args, out) -> int:
    import json

    from repro.service import (
        JobQueue,
        JobSpec,
        JobState,
        ProcessBackend,
        ResultCache,
        Scheduler,
    )

    queue = JobQueue(
        max_depth=args.queue_depth, max_per_submitter=args.per_submitter
    )
    cache = ResultCache(capacity=args.cache_size, ttl=args.cache_ttl)
    metrics = None
    deployment = None
    if args.adaptive and args.backend != "cluster":
        raise SystemExit("--adaptive requires --backend cluster")
    if args.backend == "processes":
        backend = ProcessBackend()
    elif args.backend == "cluster":
        from repro.cluster.backend import ClusterBackend

        if args.adaptive:
            from repro.deploy import ClusterDeployment, WorkerSpec
            from repro.service.metrics import ServiceMetrics

            if args.min_workers < 1:
                raise SystemExit("--min-workers must be >= 1")
            if args.max_workers < args.min_workers:
                raise SystemExit("--max-workers must be >= --min-workers")
            metrics = ServiceMetrics()
            deployment = ClusterDeployment(
                WorkerSpec(name_prefix="svc", wire_codec=args.wire_codec),
                wire_codec=args.wire_codec,
                metrics=metrics,
                on_event=lambda line: print(f"fleet: {line}", file=out),
            )
            # The service queue's depth is part of the demand signal, so
            # the fleet grows while jobs are still waiting for a slot on
            # the (one-job-at-a-time) coordinator.
            deployment.adapt(
                args.min_workers, args.max_workers, queue_depth=queue.depth
            )
            backend = ClusterBackend(
                deployment=deployment, min_workers=args.min_workers
            )
        else:
            backend = ClusterBackend(
                local_workers=args.cluster_workers,
                wire_codec=args.wire_codec,
            )
    else:
        backend = None
    sched = Scheduler(
        backend=backend, queue=queue, cache=cache, n_workers=args.pool,
        metrics=metrics,
    )

    if args.jobfile == "-":
        lines = sys.stdin.readlines()
    else:
        try:
            with open(args.jobfile) as fh:
                lines = fh.readlines()
        except OSError as exc:
            raise SystemExit(f"cannot read jobfile: {exc}") from None
    bad_lines = 0
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            spec = JobSpec.from_dict(json.loads(line))
            sched.submit(spec)
        except (ValueError, KeyError, TypeError) as exc:
            bad_lines += 1
            print(f"line {lineno}: rejected ({exc})", file=out)
    snap = None
    try:
        jobs = sched.run_until_idle()
        if deployment is not None:
            # Let the policy observe the now-idle queue and drain the
            # fleet back to the floor, then freeze the footer snapshot
            # *before* teardown empties the fleet — so the footer (and
            # the elastic-e2e assertions) see the settled size.
            import time as _time

            settle = deployment.policy.down_cooldown + 10.0
            deadline = _time.monotonic() + settle
            while (
                deployment.fleet_size() > args.min_workers
                and _time.monotonic() < deadline
            ):
                _time.sleep(0.1)
            snap = sched.metrics_snapshot()
    finally:
        if hasattr(backend, "close"):
            backend.close()

    for job in jobs:
        print(job.describe(), file=out)
    if snap is None:
        snap = sched.metrics_snapshot()
    print(snap.render(), file=out)

    if args.results:
        with open(args.results, "w") as fh:
            for job in jobs:
                fh.write(
                    json.dumps(
                        {
                            "job": job.id,
                            "key": job.key,
                            "state": job.state.value,
                            "spec": job.spec.to_dict(),
                            "result": job.result.to_dict()
                            if job.result is not None
                            else None,
                            "error": job.error,
                            "from_cache": job.from_cache,
                            "attempts": job.attempts,
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
        print(f"results written to {args.results}", file=out)
    failed = sum(1 for j in jobs if j.state is JobState.FAILED)
    return 1 if failed or bad_lines else 0


def _cmd_verify(args, out) -> int:
    """Run the differential conformance harness (see docs/verify.md)."""
    from repro.analysis import lockorder
    from repro.verify.differential import run_verify
    from repro.verify.repetition import run_repetition

    # Under REPRO_LOCK_TRACE=1 the conformance run doubles as a
    # deadlock detector: every lock acquisition feeds the order graph
    # and a cycle fails the command even if all answers matched.
    graph = lockorder.maybe_install_from_env()
    try:
        if args.repeat > 1:
            # Repetition mode: fewer instances, each hammered repeat
            # times across worker counts — so the unset default is
            # smaller than the differential sweep's.
            status = run_repetition(
                backend=args.backend if args.backend != "all" else "cluster",
                coordination=args.coordination or "ordered",
                seed=args.seed,
                rounds=args.rounds if args.rounds is not None else 3,
                repeat=args.repeat,
                chaos=args.chaos or None,
                artifact_dir=args.artifacts,
                log=lambda line: print(line, file=out),
                cluster_timeout=args.cluster_timeout,
            )
        else:
            status = run_verify(
                backend=args.backend,
                seed=args.seed,
                rounds=args.rounds if args.rounds is not None else 20,
                chaos=args.chaos,
                coordination=args.coordination,
                artifact_dir=args.artifacts,
                log=lambda line: print(line, file=out),
                cluster_timeout=args.cluster_timeout,
            )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if graph is not None:
        cycle = graph.find_cycle()
        if cycle is not None:
            print(
                "lock-order cycle (latent deadlock): "
                + " -> ".join(cycle),
                file=out,
            )
            return 1
        print("lock-order graph acyclic", file=out)
    return status


def _cmd_analyze(args, out) -> int:
    """Static concurrency analysis over the source tree."""
    import json
    from pathlib import Path

    from repro.analysis import (
        Project,
        Severity,
        apply_baseline,
        discover_files,
        load_baseline,
        load_config,
        resolve_rules,
        run_analysis,
        save_baseline,
    )
    from repro.analysis.rules import RULE_CLASSES

    if args.list_rules:
        for cls in RULE_CLASSES:
            print(f"{cls.name}: {cls.description}", file=out)
        return 0

    root = Path(args.root).resolve()
    config = load_config(root)
    rule_names = (
        [r.strip() for r in args.rules.split(",") if r.strip()]
        if args.rules
        else None
    )
    try:
        rules = resolve_rules(rule_names)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    files = discover_files(root, config, args.paths or None)
    if not files:
        print("no files selected for analysis", file=out)
        return 1
    project = Project.load(root, files)
    report = run_analysis(
        project, rules, check_suppression_hygiene=rule_names is None
    )

    baseline_path = args.baseline or config.baseline
    if args.write_baseline:
        if not baseline_path:
            raise SystemExit(
                "--write-baseline needs --baseline or a pyproject"
                " [tool.repro.analyze] baseline entry"
            )
        count = save_baseline(root / baseline_path, report)
        print(
            f"baseline written to {baseline_path} ({count} findings)",
            file=out,
        )
        return 0
    if baseline_path and (root / baseline_path).is_file():
        report = apply_baseline(
            report, load_baseline(root / baseline_path)
        )

    if args.format == "json":
        print(json.dumps(report.to_dict(), sort_keys=True), file=out)
    else:
        for finding in report.findings:
            print(finding.render(), file=out)
        print(
            f"{len(report.findings)} findings"
            f" ({report.errors} errors, {report.warnings} warnings);"
            f" {report.suppressed} suppressed;"
            f" {report.baselined} baselined;"
            f" {report.files} files",
            file=out,
        )
    return 1 if report.errors else 0


def _cmd_list(args, out) -> int:
    from repro.instances.library import APPS, suite

    for app in APPS:
        print(f"{app}:", file=out)
        for name in suite(app):
            print(f"  {name}", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser with all application subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="YewPar-reproduction search applications",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("maxclique", help="maximum clique / k-clique search")
    p.add_argument("-f", "--file", help="DIMACS .clq file")
    p.add_argument("--instance", default="sanr90-1", help="library instance name")
    _add_common(p)
    p.set_defaults(fn=_cmd_maxclique)

    for app, default in (
        ("knapsack", "knap-sim-30"),
        ("tsp", "tsp-rand-12"),
        ("sip", "sip-planted-20-70"),
    ):
        p = sub.add_parser(app, help=f"{app} search over a library instance")
        p.add_argument("--instance", default=default, help="library instance name")
        _add_common(p)
        p.set_defaults(fn=_cmd_generic_library(app))

    p = sub.add_parser("uts", help="unbalanced tree search (node counting)")
    p.add_argument("--shape", default="geometric", choices=["geometric", "binomial"])
    p.add_argument("--b0", type=float, default=3.5, help="branching factor")
    p.add_argument("--depth", type=int, default=8, help="geometric depth cutoff")
    p.add_argument("--m", type=int, default=8, help="binomial children per success")
    p.add_argument("--q", type=float, default=0.1, help="binomial success probability")
    p.add_argument("--tree-seed", type=int, default=42, help="tree shape seed")
    _add_common(p)
    p.set_defaults(fn=_cmd_uts)

    p = sub.add_parser("ns", help="numerical semigroups by genus")
    p.add_argument("--genus", type=int, default=12)
    p.add_argument(
        "--count-genus", action="store_true",
        help="count only semigroups of exactly --genus (default: whole tree)",
    )
    _add_common(p)
    p.set_defaults(fn=_cmd_ns)

    p = sub.add_parser(
        "tune", help="sweep skeletons/knobs on the simulator, recommend one"
    )
    p.add_argument("--instance", default="sanr90-1", help="library instance name")
    _add_common(p)
    p.set_defaults(fn=_cmd_tune)

    p = sub.add_parser("list", help="list the instance library")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser(
        "verify",
        help="differential conformance harness: seeded random instances, "
        "dual oracles, per-backend knob sweeps, optional cluster chaos",
    )
    p.add_argument("--backend", default="all",
                   choices=["all", "sequential", "sim", "processes", "cluster"],
                   help="which backend(s) to check (default: all)")
    p.add_argument("--seed", type=int, default=0,
                   help="harness seed; fixes instances, knobs and fault plans")
    p.add_argument("--rounds", type=int, default=None,
                   help="instances to generate (default 20; 3 with --repeat)")
    p.add_argument("--repeat", type=int, default=1, metavar="N",
                   help="repetition oracle: run each cell N times across "
                   "worker counts 1/2/4 (plus a kill_worker chaos round on "
                   "the cluster backend) and require stable values — and, "
                   "for --coordination ordered, bit-identical node counts")
    p.add_argument("--coordination", default=None,
                   choices=["depthbounded", "budget", "stacksteal",
                            "ordered", "random"],
                   help="pin every parallel cell to one coordination "
                   "(default: seeded draw; 'ordered' with --repeat)")
    p.add_argument("--chaos", action="store_true", default=False,
                   help="cluster backend: inject a seeded FaultPlan per round")
    p.add_argument("--artifacts", default="verify-artifacts", metavar="DIR",
                   help="directory for shrunk-repro JSON artifacts on failure")
    p.add_argument("--cluster-timeout", type=float, default=60.0, metavar="S",
                   help="per-run wall-clock limit for cluster cells")
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "analyze",
        help="concurrency-aware static analysis: lock discipline, "
        "async blocking, protocol exhaustiveness, factory imports, "
        "cross-thread call safety (see docs/analysis.md)",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files/directories to scan (default: the "
                   "pyproject [tool.repro.analyze] include list)")
    p.add_argument("--rules", default=None, metavar="R1,R2",
                   help="comma-separated rule subset (default: all)")
    p.add_argument("--list-rules", action="store_true", default=False,
                   help="print the rule catalogue and exit")
    p.add_argument("--format", default="text", choices=["text", "json"],
                   help="report format (json schema is stable, v1)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file of known findings (default: the "
                   "pyproject baseline entry, if the file exists)")
    p.add_argument("--write-baseline", action="store_true", default=False,
                   help="snapshot current error findings as the baseline")
    p.add_argument("--root", default=".", metavar="DIR",
                   help="project root holding pyproject.toml (default .)")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "submit", help="append one job to a job file (see `serve`)"
    )
    p.add_argument("--jobfile", default="jobs.jsonl",
                   help="job file to append to ('-' prints the JSON line)")
    p.add_argument("--app", required=True, help="application family")
    p.add_argument("--instance", required=True, help="library instance name")
    p.add_argument("--skeleton", default="sequential",
                   choices=sorted(COORDINATIONS), help="search coordination")
    p.add_argument("--search-type", default=None,
                   choices=["enumeration", "decision", "optimisation"],
                   help="override the instance's registered search type")
    p.add_argument("--target", type=int, default=None,
                   help="decision target objective")
    p.add_argument("--param", action="append", default=[], metavar="K=V",
                   help="SkeletonParams override (repeatable), e.g. d_cutoff=3")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs earlier within your backlog")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("--submitter", default="anon", help="fairness bucket")
    p.add_argument("--url", default=None, metavar="URL",
                   help="POST to a running gateway instead of a job file")
    p.add_argument("--wait", action="store_true",
                   help="with --url: follow the status stream and print "
                   "the final result")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "gateway",
        help="run the HTTP front door: sharded schedulers, streaming job "
        "status, Prometheus /metrics (SIGTERM drains in-flight jobs)",
    )
    p.add_argument("--listen", default="127.0.0.1:8080", metavar="HOST:PORT",
                   help="listen address (port 0 picks a free port)")
    p.add_argument("--shards", type=int, default=2, metavar="N",
                   help="independent scheduler shards; also the modulus of "
                   "the job-hash routing rule (default 2)")
    p.add_argument("--backend", default="inproc",
                   choices=["inproc", "processes", "cluster"],
                   help="per-shard execution backend: scheduler threads, OS "
                   "processes, or a TCP cluster coordinator per shard")
    p.add_argument("--cluster-workers", type=int, default=2, metavar="N",
                   help="local worker nodes per shard for --backend cluster")
    p.add_argument("--wire-codec", default="binary",
                   choices=["json", "binary"],
                   help="cluster backend: frame body format on the wire")
    p.add_argument("--adaptive", action="store_true",
                   help="with --backend cluster: each shard runs an elastic "
                   "worker fleet that follows its queue depth")
    p.add_argument("--min-workers", type=int, default=1, metavar="N",
                   help="adaptive fleet floor per shard (with --adaptive)")
    p.add_argument("--max-workers", type=int, default=4, metavar="N",
                   help="adaptive fleet ceiling per shard (with --adaptive)")
    p.add_argument("--pool", type=int, default=2,
                   help="scheduler worker threads per shard")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="per-shard admission bound on queued jobs")
    p.add_argument("--per-submitter", type=int, default=None,
                   help="per-submitter admission quota per shard")
    p.add_argument("--cache-size", type=int, default=256,
                   help="per-shard result cache capacity (entries)")
    p.add_argument("--cache-ttl", type=float, default=None,
                   help="result cache TTL in seconds (default: no expiry)")
    p.add_argument("--retry-after", type=float, default=1.0, metavar="S",
                   help="Retry-After pacing hint on 429/503 responses")
    p.add_argument("--drain-timeout", type=float, default=120.0, metavar="S",
                   help="max seconds to wait for in-flight jobs on shutdown")
    p.set_defaults(fn=_cmd_gateway)

    p = sub.add_parser(
        "gateway-top",
        help="live ASCII dashboard over a gateway's /metrics endpoint",
    )
    p.add_argument("--url", default="http://127.0.0.1:8080",
                   help="gateway base URL")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="seconds between scrapes (default 1)")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="frames to render (default: until interrupted)")
    p.add_argument("--once", action="store_true",
                   help="print a single frame and exit (CI mode)")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of clearing the screen")
    p.set_defaults(fn=_cmd_gateway_top)

    p = sub.add_parser(
        "serve", help="run a scheduler over a job file (or stdin) to completion"
    )
    p.add_argument("--jobfile", default="jobs.jsonl",
                   help="JSONL job file from `submit` ('-' reads stdin)")
    p.add_argument("--backend", default="inproc",
                   choices=["inproc", "processes", "cluster"],
                   help="worker backend: scheduler threads, OS processes, "
                   "or a TCP cluster coordinator")
    p.add_argument("--cluster-workers", type=int, default=2, metavar="N",
                   help="local worker nodes for --backend cluster")
    p.add_argument("--wire-codec", default="binary",
                   choices=["json", "binary"],
                   help="cluster backend: frame body format on the wire")
    p.add_argument("--adaptive", action="store_true",
                   help="with --backend cluster: run an elastic worker "
                   "fleet that follows demand (see docs/deploy.md)")
    p.add_argument("--min-workers", type=int, default=1, metavar="N",
                   help="adaptive fleet floor (with --adaptive)")
    p.add_argument("--max-workers", type=int, default=4, metavar="N",
                   help="adaptive fleet ceiling (with --adaptive)")
    p.add_argument("--pool", type=int, default=2, help="worker pool size")
    p.add_argument("--queue-depth", type=int, default=256,
                   help="admission bound on queued jobs")
    p.add_argument("--per-submitter", type=int, default=None,
                   help="per-submitter admission quota")
    p.add_argument("--cache-size", type=int, default=256,
                   help="result cache capacity (entries)")
    p.add_argument("--cache-ttl", type=float, default=None,
                   help="result cache TTL in seconds (default: no expiry)")
    p.add_argument("--results", default=None, metavar="FILE",
                   help="write per-job results as JSONL to FILE")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "cluster-coordinator",
        help="run a cluster coordinator over a job file (see `submit`)",
    )
    p.add_argument("--listen", default="127.0.0.1:7031", metavar="HOST:PORT",
                   help="listen address (port 0 picks a free port)")
    p.add_argument("--jobfile", default="jobs.jsonl",
                   help="JSONL job file from `submit` ('-' reads stdin)")
    p.add_argument("--min-workers", type=int, default=1, metavar="N",
                   help="wait for this many workers before starting")
    p.add_argument("--worker-wait", type=float, default=60.0, metavar="S",
                   help="seconds to wait for --min-workers")
    p.add_argument("--heartbeat-timeout", type=float, default=5.0, metavar="S",
                   help="silence before a worker is declared dead")
    p.add_argument("--wire-codec", default="binary",
                   choices=["json", "binary"],
                   help="preferred frame body format (negotiated per worker)")
    p.set_defaults(fn=_cmd_cluster_coordinator)

    p = sub.add_parser(
        "cluster-deploy",
        help="run a job file on an elastic, self-scaling worker fleet",
    )
    p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                   help="coordinator listen address (port 0 picks a free one)")
    p.add_argument("--jobfile", default="jobs.jsonl",
                   help="JSONL job file from `submit` ('-' reads stdin)")
    p.add_argument("--min-workers", type=int, default=1, metavar="N",
                   help="fleet floor (always at least this many workers)")
    p.add_argument("--max-workers", type=int, default=4, metavar="N",
                   help="fleet ceiling under load")
    p.add_argument("--worker-wait", type=float, default=60.0, metavar="S",
                   help="seconds to wait for the initial --min-workers")
    p.add_argument("--heartbeat-timeout", type=float, default=5.0, metavar="S",
                   help="silence before a worker is declared dead")
    p.add_argument("--wire-codec", default="binary",
                   choices=["json", "binary"],
                   help="preferred frame body format (negotiated per worker)")
    p.set_defaults(fn=_cmd_cluster_deploy)

    p = sub.add_parser(
        "cluster-worker", help="run a worker node against a coordinator"
    )
    p.add_argument("--connect", default="127.0.0.1:7031", metavar="HOST:PORT",
                   help="coordinator address")
    p.add_argument("--processes", type=int, default=1, metavar="N",
                   help="fan out to N local worker processes")
    p.add_argument("--name", default=None, help="worker name (diagnostics)")
    p.add_argument("--give-up-after", type=float, default=None, metavar="S",
                   help="exit if no coordinator is reachable for S seconds "
                   "(default: retry forever)")
    p.add_argument("--wire-codec", default="binary",
                   choices=["json", "binary"],
                   help="codecs offered in HELLO (json offers json only — "
                   "the debugging veto)")
    p.set_defaults(fn=_cmd_cluster_worker)

    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit status."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args, out)
    except BrokenPipeError:
        # `repro ... | head` closed the pipe: standard CLI etiquette is
        # to exit quietly rather than traceback.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
