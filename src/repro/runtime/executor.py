"""The simulated cluster: workers, schedulers, and the run loop.

:class:`SimulatedCluster` executes one search (a :class:`SearchSpec` +
:class:`SearchType` + coordination policy) over a simulated topology and
returns a :class:`SearchResult` whose ``virtual_time`` is the simulated
makespan.  The scheduling behaviour follows §4.3:

- **Depth-Bounded / Budget** use per-locality order-preserving workpools;
  idle workers pop locally, then steal from a random remote locality's
  pool (charged the remote round trip).
- **Stack-Stealing** has no pools for victim work: idle workers send
  steal requests directly to a random *active* worker — local victims
  preferred, remote only when no local worker is active — and the victim
  answers at its next expansion step boundary (Listing 3 checks the
  steal channel once per step).  Chunked steals deliver every node at
  the victim's lowest unexplored depth; the thief runs the first and
  pools the rest.
- Incumbent updates flow through :class:`KnowledgeManager` with
  per-locality broadcast delay, so remote workers prune on stale bounds
  for a while — pruning timing (and hence anomalies) is part of the
  model.

Simplifications relative to a real cluster, none of which affect the
coordination behaviour being studied: remote pool steals resolve at
initiation time (no request/response race on pools), and worker wake-ups
are modelled as poll arrivals after the appropriate latency.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Any, Optional

from repro.core.params import SkeletonParams
from repro.core.results import SearchMetrics, SearchResult
from repro.core.searchtypes import Incumbent, SearchType
from repro.core.sequential import sequential_search
from repro.core.space import SearchSpec
from repro.core.tasks import BUDGET, DEPTH, ORDERED, RANDOM, STACK, SearchTask, SpawnedTask
from repro.runtime.costmodel import CostModel
from repro.runtime.knowledge import KnowledgeManager
from repro.runtime.sim import Simulator
from repro.runtime.trace import Trace
from repro.runtime.topology import Topology
from repro.runtime.workpool import Workpool
from repro.util.rng import SplitMix64

__all__ = ["SimulatedCluster", "virtual_sequential_time"]

_PARALLEL_POLICIES = (DEPTH, BUDGET, STACK, RANDOM, ORDERED)


def virtual_sequential_time(
    spec: SearchSpec,
    stype: SearchType,
    cost: Optional[CostModel] = None,
    *,
    specialised: bool = False,
) -> tuple[float, SearchResult]:
    """Simulated-time cost of a sequential run (the speedup baseline).

    Runs the real sequential driver (so the tree explored is the true
    sequential tree) and prices its metrics under ``cost``.  With
    ``specialised`` the per-node framework overhead is dropped,
    modelling the hand-written baseline of Table 1.
    """
    cost = cost if cost is not None else CostModel()
    if specialised:
        cost = cost.specialised()
    result = sequential_search(spec, stype)
    m = result.metrics
    time = m.weighted_nodes * cost.per_node() + m.backtracks * cost.backtrack_cost
    return time, result


class _Worker:
    """Simulated worker state."""

    __slots__ = (
        "wid",
        "locality",
        "task",
        "acc",
        "metrics",
        "busy",
        "steal_requests",
        "retry_delay",
        "sleeping",
        "task_start",
        "task_nodes",
        "step_cb",
        "seek_cb",
    )

    def __init__(self, wid: int, locality: int, acc: Any) -> None:
        self.wid = wid
        self.locality = locality
        self.task: Optional[SearchTask] = None
        self.acc = acc  # enumeration accumulator (worker-local knowledge)
        self.metrics = SearchMetrics()
        self.busy = 0.0
        self.steal_requests: deque[int] = deque()
        self.retry_delay = 0.0
        self.sleeping = False
        self.task_start = 0.0  # trace bookkeeping
        self.task_nodes = 0
        # Per-worker event callbacks, bound once by the run (the event
        # loop fires one per step: allocating closures per step would
        # dominate the simulator's own overhead).
        self.step_cb = None
        self.seek_cb = None


class SimulatedCluster:
    """Executes searches over a simulated multi-locality cluster."""

    def __init__(
        self,
        topology: Topology,
        cost: Optional[CostModel] = None,
        *,
        pool_discipline: str = "order",
        max_events: int = 200_000_000,
        trace: bool = False,
    ) -> None:
        self.topology = topology
        self.cost = cost if cost is not None else CostModel()
        self.pool_discipline = pool_discipline
        self.max_events = max_events
        self.trace = trace

    # -- public entry -------------------------------------------------------

    def run(
        self,
        spec: SearchSpec,
        stype: SearchType,
        policy: str,
        params: Optional[SkeletonParams] = None,
    ) -> SearchResult:
        """Execute one search under ``policy`` and return its result."""
        if policy not in _PARALLEL_POLICIES:
            raise ValueError(
                f"policy {policy!r} does not run on the cluster; "
                "use sequential_search for the sequential skeleton"
            )
        run = _ClusterRun(self, spec, stype, policy, params or SkeletonParams())
        return run.execute()


class _ClusterRun:
    """State of a single simulated execution (fresh per run)."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        spec: SearchSpec,
        stype: SearchType,
        policy: str,
        params: SkeletonParams,
    ) -> None:
        self.cluster = cluster
        self.topology = cluster.topology
        self.cost = cluster.cost
        self.spec = spec
        self.stype = stype
        self.policy = policy
        self.params = params
        self.sim = Simulator()
        self.rng = SplitMix64(params.seed)
        self.enumeration = stype.kind == "enumeration"
        initial = stype.initial_knowledge(spec)
        zero = initial if self.enumeration else None
        self.workers = [
            _Worker(w, self.topology.locality_of(w), zero)
            for w in range(self.topology.total_workers)
        ]
        self.pools = [
            Workpool(cluster.pool_discipline) for _ in range(self.topology.localities)
        ]
        self.km = (
            None
            if self.enumeration
            else KnowledgeManager(
                stype, initial, self.topology, self.cost, self.sim, self._on_goal
            )
        )
        for w in self.workers:
            w.step_cb = partial(self._step, w)
            w.seek_cb = partial(self._seek, w)
        self.live_tasks = 0
        self.makespan: Optional[float] = None
        self.goal_reached = False
        self._task_counter = 0
        self.trace = (
            Trace(workers=self.topology.total_workers) if cluster.trace else None
        )

    # -- lifecycle -----------------------------------------------------------

    def execute(self) -> SearchResult:
        root_task = self._make_task(self.spec.root, 0, ())
        self.live_tasks = 1
        if self.policy == STACK:
            # Work pushing bootstraps Stack-Stealing: the root goes
            # straight onto worker 0 (§4.2).
            self.workers[0].task = root_task
            self.workers[0].task_start = 0.0
            self.sim.at(0.0, self.workers[0].step_cb)
            for w in self.workers[1:]:
                self.sim.at(0.0, self._make_seek(w))
        else:
            self.pools[0].push(root_task, 0)
            for w in self.workers:
                self.sim.at(0.0, self._make_seek(w))
        self.sim.run(max_events=self.cluster.max_events)
        return self._result()

    def _result(self) -> SearchResult:
        metrics = SearchMetrics()
        busy = []
        for w in self.workers:
            metrics.merge(w.metrics)
            busy.append(w.busy)
        makespan = self.makespan if self.makespan is not None else self.sim.now
        if self.trace is not None:
            self.trace.makespan = makespan
        if self.enumeration:
            value: Any = self.workers[0].acc
            for w in self.workers[1:]:
                value = self.stype.combine(value, w.acc)
            return SearchResult(
                kind=self.stype.kind,
                value=value,
                metrics=metrics,
                virtual_time=makespan,
                workers=len(self.workers),
                per_worker_busy=busy,
                trace=self.trace,
            )
        best: Incumbent = self.km.global_best
        metrics.broadcasts = self.km.broadcasts
        return SearchResult(
            kind=self.stype.kind,
            value=best.value,
            node=best.node,
            found=self.goal_reached if self.stype.kind == "decision" else None,
            metrics=metrics,
            virtual_time=makespan,
            workers=len(self.workers),
            per_worker_busy=busy,
            trace=self.trace,
        )

    def _on_goal(self, knowledge: Incumbent) -> None:
        """(shortcircuit): a decision target was reached — stop everything."""
        if not self.goal_reached:
            self.goal_reached = True
            self.makespan = self.sim.now
            self.sim.stop()

    def _make_task(self, root: Any, depth: int, key: tuple = ()) -> SearchTask:
        self._task_counter += 1
        return SearchTask(
            self.spec,
            self.stype,
            root,
            policy=self.policy,
            params=self.params,
            root_depth=depth,
            task_seed=self._task_counter,
            key=key,
        )

    # -- worker step ----------------------------------------------------------

    def _make_step(self, w: _Worker):
        """The worker's cached step callback (see _Worker.step_cb)."""
        return w.step_cb

    def _make_seek(self, w: _Worker):
        """The worker's cached seek callback (see _Worker.seek_cb)."""
        return w.seek_cb

    def _step(self, w: _Worker) -> None:
        if self.sim.stopped:
            return
        task = w.task
        if task is None:
            self._seek(w)
            return
        cost = 0.0
        # Listing 3 line 6: victims answer one steal request per
        # expansion step.
        if self.policy == STACK and w.steal_requests:
            cost += self._answer_steal(w)

        knowledge = w.acc if self.enumeration else self.km.view(w.locality)
        knowledge, out = task.step(knowledge)
        if self.enumeration:
            w.acc = knowledge
        elif out.improved:
            self.km.publish(w.locality, knowledge)
            if self.trace is not None:
                self.trace.record_improvement(self.sim.now, knowledge.value)

        if out.processed:
            w.metrics.nodes += 1
            w.metrics.weighted_nodes += out.weight
            w.task_nodes += 1
            cost += self.cost.per_node(out.weight)
        if out.backtracked:
            w.metrics.backtracks += 1
            cost += self.cost.backtrack_cost
        if out.pruned:
            w.metrics.prunes += 1
        if len(task.stack) > w.metrics.max_depth:
            w.metrics.max_depth = len(task.stack)
        if out.spawned:
            cost += self._spawn_all(w, out.spawned)
        w.busy += cost

        if out.goal:
            # Decision short-circuit observed at the worker (the publish
            # above also triggers _on_goal; both paths are idempotent).
            self._on_goal(knowledge)
            return
        if out.finished:
            # The finishing step itself takes `cost` time: the task is
            # complete at now + cost, and the makespan must cover it.
            end = self.sim.now + cost
            if self.trace is not None:
                self.trace.record_interval(w.wid, w.task_start, end, w.task_nodes)
            w.task = None
            self._drain_steal_requests(w)
            self._task_done(end)
            if not self.sim.stopped:
                self.sim.at(cost, self._make_seek(w))
            return
        self.sim.at(cost, self._make_step(w))

    def _pool_home(self, locality: int) -> int:
        """Which pool a worker on ``locality`` spawns to / pops from.

        Ordered keeps a single global rank-ordered pool (on locality 0);
        everything else uses per-locality pools.
        """
        return 0 if self.policy == ORDERED else locality

    def _push_task(self, sp: SpawnedTask, locality: int) -> None:
        home = self._pool_home(locality)
        task = self._make_task(sp.root, sp.depth, sp.key)
        rank = sp.key if self.policy == ORDERED else None
        self.pools[home].push(task, sp.depth, rank=rank)
        self.live_tasks += 1
        self._wake_for_pool(home)

    def _spawn_all(self, w: _Worker, spawned: list[SpawnedTask]) -> float:
        """Push spawned subtrees to the spawner's pool; wake sleepers."""
        cost = 0.0
        for sp in spawned:
            self._push_task(sp, w.locality)
            w.metrics.spawns += 1
            cost += self.cost.spawn_cost
        return cost

    def _task_done(self, end_time: float) -> None:
        self.live_tasks -= 1
        if self.live_tasks == 0:
            self.makespan = end_time
            self.sim.stop()

    # -- stack stealing ---------------------------------------------------------

    def _answer_steal(self, w: _Worker) -> float:
        """Victim side of (spawn-stack): split and reply to one thief."""
        thief = self.workers[w.steal_requests.popleft()]
        stolen = w.task.try_split(chunked=self.params.chunked) if w.task else []
        self.live_tasks += len(stolen)
        w.metrics.spawns += len(stolen)
        latency = self.cost.steal_latency(w.locality == thief.locality)
        self.sim.at(latency, self._make_delivery(thief, stolen))
        return self.cost.spawn_cost * max(1, len(stolen)) * 0.5

    def _drain_steal_requests(self, w: _Worker) -> None:
        """A victim whose task ended answers every waiting thief 'nothing'."""
        while w.steal_requests:
            thief = self.workers[w.steal_requests.popleft()]
            latency = self.cost.steal_latency(w.locality == thief.locality)
            self.sim.at(latency, self._make_delivery(thief, []))

    def _make_delivery(self, thief: _Worker, stolen: list[SpawnedTask]):
        return lambda: self._receive_steal(thief, stolen)

    def _receive_steal(self, thief: _Worker, stolen: list[SpawnedTask]) -> None:
        if self.sim.stopped:
            return
        if not stolen:
            thief.metrics.failed_steals += 1
            self._retry_seek(thief)
            return
        thief.metrics.steals += 1
        thief.retry_delay = 0.0
        first, rest = stolen[0], stolen[1:]
        for sp in rest:
            self.live_tasks -= 1  # _push_task re-counts it
            self._push_task(sp, thief.locality)
        if thief.task is None:
            thief.task = self._make_task(first.root, first.depth, first.key)
            thief.task_start = self.sim.now + self.cost.schedule_cost
            thief.task_nodes = 0
            thief.busy += self.cost.schedule_cost
            self.sim.at(self.cost.schedule_cost, self._make_step(thief))
            self._notify_task_started()
        else:
            # The thief found other work while the response was in
            # flight; bank the stolen subtree in its pool instead.
            self.live_tasks -= 1
            self._push_task(first, thief.locality)

    def _retry_seek(self, w: _Worker) -> None:
        """Exponential backoff between failed steal attempts."""
        if w.retry_delay <= 0:
            w.retry_delay = self.cost.steal_retry_backoff
        else:
            w.retry_delay = min(w.retry_delay * 2, self.cost.steal_retry_cap)
        self.sim.at(w.retry_delay, self._make_seek(w))

    # -- seeking work -------------------------------------------------------------

    def _seek(self, w: _Worker) -> None:
        if self.sim.stopped or w.task is not None:
            return
        w.sleeping = False
        home = self._pool_home(w.locality)
        task = self.pools[home].pop()
        if task is not None:
            delay = self.cost.schedule_cost
            if home != w.locality:
                # The global ordered pool lives on locality 0: remote
                # workers pay the round trip to claim a task.
                delay += 2 * self.cost.steal_latency_remote
            self._install(w, task, delay)
            return
        if self.policy == STACK:
            self._seek_victim(w)
        elif self.policy == ORDERED:
            self._sleep(w)  # single pool: nothing else to try
        else:
            self._seek_remote_pool(w)

    def _install(self, w: _Worker, task: SearchTask, delay: float) -> None:
        w.task = task
        w.task_start = self.sim.now + delay
        w.task_nodes = 0
        w.busy += self.cost.schedule_cost
        self.sim.at(delay, self._make_step(w))
        self._notify_task_started()

    def _seek_remote_pool(self, w: _Worker) -> None:
        """Distributed workpool steal: random remote locality with work."""
        candidates = [
            loc
            for loc in range(self.topology.localities)
            if loc != w.locality and self.pools[loc]
        ]
        if not candidates:
            self._sleep(w)
            return
        victim = candidates[self.rng.randrange(len(candidates))]
        task = self.pools[victim].pop()
        w.metrics.steals += 1
        # Round trip to the remote pool, then install.
        self._install(w, task, 2 * self.cost.steal_latency_remote + self.cost.schedule_cost)

    def _seek_victim(self, w: _Worker) -> None:
        """Stack-Stealing victim selection: random, local-first (§4.2)."""
        local = [
            v
            for v in self.workers
            if v.task is not None and v.locality == w.locality and v.wid != w.wid
        ]
        pool_victims = local
        if not pool_victims:
            pool_victims = [
                v for v in self.workers if v.task is not None and v.wid != w.wid
            ]
        if not pool_victims:
            self._sleep(w)
            return
        victim = pool_victims[self.rng.randrange(len(pool_victims))]
        latency = self.cost.steal_latency(victim.locality == w.locality)
        self.sim.at(latency, self._make_request(victim, w))

    def _make_request(self, victim: _Worker, thief: _Worker):
        def deliver() -> None:
            if self.sim.stopped:
                return
            if victim.task is None:
                # Victim already finished: immediate failure response.
                lat = self.cost.steal_latency(victim.locality == thief.locality)
                self.sim.at(lat, self._make_delivery(thief, []))
            else:
                victim.steal_requests.append(thief.wid)

        return deliver

    # -- sleeping / waking ------------------------------------------------------------

    def _sleep(self, w: _Worker) -> None:
        w.sleeping = True

    def _wake_for_pool(self, locality: int) -> None:
        """A task was pushed: wake one sleeper to claim it.

        Prefers a sleeper on the pushing locality (cheap poll), falling
        back to a remote sleeper whose poll arrives after the remote
        latency.
        """
        local = next(
            (
                v
                for v in self.workers
                if v.sleeping and v.locality == locality
            ),
            None,
        )
        if local is not None:
            local.sleeping = False
            self.sim.at(self.cost.steal_latency_local, self._make_seek(local))
            return
        remote = next((v for v in self.workers if v.sleeping), None)
        if remote is not None:
            remote.sleeping = False
            self.sim.at(self.cost.steal_latency_remote, self._make_seek(remote))

    def _notify_task_started(self) -> None:
        """Stack-Stealing: a new victim exists — wake sleeping thieves."""
        if self.policy != STACK:
            return
        for v in self.workers:
            if v.sleeping:
                v.sleeping = False
                self.sim.at(self.cost.steal_latency_local, self._make_seek(v))
