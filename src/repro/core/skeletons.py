"""The 12 search skeletons: coordination x search type (Figure 3).

    Search Skeleton = Search Coordination + Search Type

Four coordinations (Sequential, Depth-Bounded, Stack-Stealing, Budget)
times three search types (Enumeration, Decision, Optimisation) gives the
paper's 12 skeletons.  :func:`make_skeleton` builds any of them by name;
the module also exposes each combination as a ready-made constant
(``DepthBoundedOptimisation`` etc.) for the Listing-5 composition style:

    result = DepthBoundedOptimisation.search(spec, params)

Parallel skeletons execute on a :class:`SimulatedCluster` sized from the
params (see :mod:`repro.runtime` and DESIGN.md for why the cluster is
simulated); the Sequential skeleton runs the plain depth-first driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.core.searchtypes import SearchType, make_search_type
from repro.core.sequential import sequential_search
from repro.core.space import SearchSpec
from repro.core.tasks import BUDGET, DEPTH, ORDERED, RANDOM, SEQ, STACK

__all__ = [
    "Skeleton",
    "make_skeleton",
    "COORDINATIONS",
    "SEARCH_TYPES",
    "ALL_SKELETONS",
]

# public coordination names -> internal task policies.  "random" is the
# extension coordination of §4.2 ("random task creation"), demonstrating
# that the library is open to new spawn rules: adding it touched only
# the task state machine and this registry.
COORDINATIONS = {
    "sequential": SEQ,
    "depthbounded": DEPTH,
    "stacksteal": STACK,
    "budget": BUDGET,
    "random": RANDOM,
    "ordered": ORDERED,
}

SEARCH_TYPES = ("enumeration", "decision", "optimisation")


@dataclass(frozen=True)
class Skeleton:
    """A reusable parallel (or sequential) search pattern.

    Search-type construction is deferred to :meth:`search` for types
    that need per-instance arguments (a Decision target); a pre-built
    :class:`SearchType` may also be supplied.
    """

    coordination: str
    search_type: str

    def __post_init__(self) -> None:
        if self.coordination not in COORDINATIONS:
            raise ValueError(
                f"unknown coordination {self.coordination!r}; "
                f"expected one of {sorted(COORDINATIONS)}"
            )
        if self.search_type not in SEARCH_TYPES:
            raise ValueError(
                f"unknown search type {self.search_type!r}; "
                f"expected one of {sorted(SEARCH_TYPES)}"
            )

    @property
    def name(self) -> str:
        return f"{self.coordination}-{self.search_type}"

    def search(
        self,
        spec: SearchSpec,
        params: Optional[SkeletonParams] = None,
        *,
        stype: Optional[SearchType] = None,
        cluster: Optional[Any] = None,
        spec_factory: Optional[Any] = None,
        factory_args: tuple = (),
        **type_kwargs: Any,
    ) -> SearchResult:
        """Run this skeleton on ``spec``.

        ``type_kwargs`` go to the search-type constructor (e.g.
        ``target=27`` for decision searches).  ``cluster`` optionally
        supplies a pre-configured :class:`SimulatedCluster` (for custom
        cost models); otherwise one is built from ``params``.

        With ``params.backend == "processes"`` the parallel
        coordinations run on real OS processes instead of the simulator,
        which needs the spec in rebuildable form: ``spec_factory`` must
        be a top-level picklable callable with picklable
        ``factory_args`` such that ``spec_factory(*factory_args)``
        reproduces ``spec`` in a worker process.
        """
        if stype is None:
            stype = make_search_type(self.search_type, **type_kwargs)
        elif type_kwargs:
            raise ValueError("pass either a search type object or kwargs, not both")
        if stype.kind != self.search_type:
            raise ValueError(
                f"search type object is {stype.kind!r}, skeleton wants {self.search_type!r}"
            )
        params = params if params is not None else SkeletonParams()
        # params.coordination is the batch-driver override (verify,
        # service): it reroutes this run without rebuilding the skeleton.
        coordination = params.coordination or self.coordination
        policy = COORDINATIONS[coordination]
        if policy == SEQ:
            return sequential_search(spec, stype)
        if params.backend == "processes":
            if spec_factory is None:
                raise ValueError(
                    "backend='processes' rebuilds the spec in each worker "
                    "and therefore needs spec_factory (a top-level picklable "
                    "callable) and factory_args"
                )
            from repro.runtime.processes import run_with_processes

            return run_with_processes(
                coordination, spec_factory, factory_args, stype, params
            )
        if params.backend == "cluster":
            if spec_factory is None:
                raise ValueError(
                    "backend='cluster' rebuilds the spec on each worker node "
                    "and therefore needs spec_factory (a top-level importable "
                    "callable) and factory_args"
                )
            from repro.cluster.local import run_with_cluster

            return run_with_cluster(
                coordination, spec_factory, factory_args, stype, params
            )
        if cluster is None:
            # Imported here so the core package has no hard dependency
            # direction issue with runtime (runtime imports core).
            from repro.runtime.executor import SimulatedCluster
            from repro.runtime.topology import Topology

            cluster = SimulatedCluster(
                Topology(params.localities, params.workers_per_locality)
            )
        return cluster.run(spec, stype, policy, params)


def make_skeleton(coordination: str, search_type: str) -> Skeleton:
    """Build one of the 12 skeletons by name."""
    return Skeleton(coordination, search_type)


ALL_SKELETONS: dict[str, Skeleton] = {
    f"{coord}-{stype}": Skeleton(coord, stype)
    for coord in COORDINATIONS
    for stype in SEARCH_TYPES
}

# Listing-5 style named constants, e.g. StackStealingOptimisation.
_CAMEL = {
    "sequential": "Sequential",
    "depthbounded": "DepthBounded",
    "stacksteal": "StackStealing",
    "budget": "Budget",
    "random": "RandomSpawn",
    "ordered": "Ordered",
}
for _coord, _camel in _CAMEL.items():
    for _stype in SEARCH_TYPES:
        _name = f"{_camel}{_stype.capitalize()}"
        globals()[_name] = ALL_SKELETONS[f"{_coord}-{_stype}"]
        __all__.append(_name)
del _coord, _camel, _stype, _name
