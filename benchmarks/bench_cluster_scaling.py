"""Localhost scaling of the TCP cluster backend: 1/2/4 workers.

Not a paper table: this measures the repository's own distributed
runtime (``repro.cluster``, docs/cluster.md) in real wall time, on one
machine.  Two instances bracket what localhost scaling can and cannot
show:

- ``uts-bin-med``   binomial UTS enumeration: every node must be
  visited exactly once, so on a single machine extra workers buy
  nothing — this row measures the wire's overhead honestly;
- ``sip-decoy-24-200``   a planted SIP decision instance built to
  exhibit the paper's §2.1 *acceleration anomaly*: the witness hides
  behind three barren decoy subtrees in fail-first order, so a strict
  depth-first pass grinds through the decoys while concurrent root
  branches reach the planted copy almost immediately.  Here extra
  workers change *which nodes are explored at all*, and wall time
  drops superlinearly — the speedup is algorithmic, not core-count
  (this box may well have a single core).

Every decision run's witness is validated with ``check_embedding``
before its time is reported; enumeration node counts are asserted
bit-identical to ``sequential_search``.  Results go to
``results/cluster_scaling.txt`` (human table) and
``results/cluster_scaling.json`` (machine-readable).

Run directly: ``PYTHONPATH=src python benchmarks/bench_cluster_scaling.py``
"""

from __future__ import annotations

import json
import platform
import statistics
import time

from _harness import RESULTS_DIR, SCALE, write_result

from repro.apps.sip import check_embedding
from repro.cluster.local import cluster_budget_search
from repro.core.searchtypes import make_search_type
from repro.core.sequential import sequential_search
from repro.instances.library import library_spec_factory, load_instance, spec_for

WORKER_COUNTS = (1, 2, 4)
REPEATS = max(1, round(5 * SCALE))

# (instance, budget, share_poll).  uts-bin-med's budget matches
# bench_parallel_backends; the decoy instance wants a large budget so
# the single worker commits deeply to each barren decoy before its
# offcuts are shed — the regime the anomaly punishes.
CASES = [
    ("uts-bin-med", 2000, 64),
    ("sip-decoy-24-200", 20000, 64),
]

# The negotiated frame encoding (docs/cluster.md "Wire formats").
WIRE_CODEC = "binary"


def _validated(name: str, res, seq) -> None:
    if res.kind == "enumeration":
        assert res.value == seq.value and res.metrics.nodes == seq.metrics.nodes, (
            f"{name}: cluster enumeration diverged from sequential")
    elif res.kind == "decision":
        assert res.found, f"{name}: planted witness not found"
        inst = load_instance(name)
        assert res.node is not None and check_embedding(inst, res.node), (
            f"{name}: invalid witness")
    else:
        assert res.value == seq.value, f"{name}: value mismatch"


def main() -> None:
    rows = []
    records = []
    for name, budget, share_poll in CASES:
        spec, stype_name, kwargs = spec_for(name)
        stype = make_search_type(stype_name, **kwargs)
        # Sequential reference: only where sequential terminates in
        # reasonable time.  The decoy instance is the point at which it
        # does not (the decoys' full refutation is enormous); its
        # reference is the planted construction itself.
        seq = sequential_search(spec, stype) if name == "uts-bin-med" else None

        def one_run(n_workers: int):
            t0 = time.perf_counter()
            res = cluster_budget_search(
                library_spec_factory, (name,), stype,
                n_workers=n_workers, budget=budget,
                share_poll=share_poll, timeout=600,
                wire_codec=WIRE_CODEC,
            )
            _ = time.perf_counter() - t0  # includes worker spawn
            _validated(name, res, seq)
            return res

        # Warmup run (discarded): pays imports, bytecode caches and
        # page-cache first touches so round 1 is not systematically slow.
        one_run(WORKER_COUNTS[0])
        # Interleave the worker-count arms within each round instead of
        # running each arm as a sequential block: on a shared box,
        # machine-load drift over the minutes of a block would otherwise
        # read as a scaling difference between arms.
        times: dict[int, list[float]] = {n: [] for n in WORKER_COUNTS}
        nodes: dict[int, int] = {}
        for _ in range(REPEATS):
            for n_workers in WORKER_COUNTS:
                res = one_run(n_workers)
                times[n_workers].append(res.wall_time)
                nodes[n_workers] = res.metrics.nodes
        base_time = statistics.median(times[WORKER_COUNTS[0]])
        for n_workers in WORKER_COUNTS:
            med = statistics.median(times[n_workers])
            speedup = base_time / med if med else float("inf")
            rows.append(
                f"{name:<18} w={n_workers}  budget={budget:<6} "
                f"median={med:7.3f}s  speedup={speedup:5.2f}x  "
                f"nodes={nodes[n_workers]}"
            )
            records.append({
                "instance": name, "workers": n_workers, "budget": budget,
                "share_poll": share_poll, "wire_codec": WIRE_CODEC,
                "repeats": REPEATS,
                "median_wall_s": round(med, 4),
                "all_wall_s": [round(t, 4) for t in times[n_workers]],
                "speedup_vs_1w": round(speedup, 3),
                "nodes": nodes[n_workers],
            })

    header = [
        "cluster backend localhost scaling (coordinator + N worker processes over TCP)",
        f"host: {platform.platform()}  python: {platform.python_version()}"
        f"  wire codec: {WIRE_CODEC}",
        "speedup is vs the 1-worker cluster run (same protocol overhead);",
        "job wall time only — worker spawn/connect excluded.",
        "decision rows: nodes counts tasks whose RESULT arrived before the",
        "goal ended the job (0 = witness found while every task was in",
        "flight — the decisive anomaly case).",
        "",
    ]
    write_result("cluster_scaling", header + rows)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "cluster_scaling.json").write_text(
        json.dumps(records, indent=2) + "\n")


if __name__ == "__main__":
    main()
