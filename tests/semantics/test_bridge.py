"""Tests for running real applications through the formal machine."""

import pytest

from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.semantics.bridge import machine_search, materialise_spec
from repro.semantics.words import EPSILON


@pytest.fixture
def clique_spec():
    from repro.apps.maxclique import maxclique_spec
    from repro.instances.graphs import uniform_graph

    return maxclique_spec(uniform_graph(12, 0.5, seed=3))


@pytest.fixture
def knapsack_spec_small():
    from repro.apps.knapsack import knapsack_spec
    from repro.instances.library import random_knapsack

    return knapsack_spec(random_knapsack(8, 5, kind="strong", max_weight=20))


class TestMaterialise:
    def test_tree_matches_generator_unfold(self, clique_spec):
        tree, node_of = materialise_spec(clique_spec)
        assert node_of[EPSILON] is clique_spec.root
        # every word's children in the tree correspond to generator output
        for word in tree.preorder():
            kids = list(clique_spec.children_of(node_of[word]))
            assert len(tree.children(word)) == len(kids)

    def test_size_guard(self, clique_spec):
        with pytest.raises(ValueError):
            materialise_spec(clique_spec, max_nodes=5)

    def test_tree_size_equals_enumeration_count(self, clique_spec):
        tree, _ = materialise_spec(clique_spec)
        count = sequential_search(
            clique_spec, Enumeration(objective=lambda n: 1)
        ).value
        assert len(tree) == count


class TestMachineSearchAgreesWithSkeletons:
    def test_enumeration(self, clique_spec):
        model = machine_search(clique_spec, "enumeration", seed=4)
        core = sequential_search(clique_spec, Enumeration()).value
        assert model == core

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_optimisation_maxclique(self, clique_spec, seed):
        witness = machine_search(clique_spec, "optimisation", seed=seed)
        core = sequential_search(clique_spec, Optimisation())
        assert witness.size == core.value
        assert clique_spec.space.subgraph_is_clique(witness.clique)

    def test_optimisation_knapsack(self, knapsack_spec_small):
        witness = machine_search(knapsack_spec_small, "optimisation", seed=1)
        core = sequential_search(knapsack_spec_small, Optimisation())
        assert witness.profit == core.value

    def test_optimisation_without_pruning(self, clique_spec):
        witness = machine_search(
            clique_spec, "optimisation", seed=2, use_pruning=False
        )
        core = sequential_search(clique_spec, Optimisation())
        assert witness.size == core.value

    def test_decision_sat(self, clique_spec):
        core = sequential_search(clique_spec, Optimisation())
        witness = machine_search(
            clique_spec, "decision", target=core.value, seed=3
        )
        assert witness.size >= core.value

    def test_decision_unsat(self, clique_spec):
        core = sequential_search(clique_spec, Optimisation())
        witness = machine_search(
            clique_spec, "decision", target=core.value + 1, seed=3
        )
        assert witness.size < core.value + 1

    def test_decision_requires_target(self, clique_spec):
        with pytest.raises(ValueError):
            machine_search(clique_spec, "decision")

    def test_unknown_kind(self, clique_spec):
        with pytest.raises(ValueError):
            machine_search(clique_spec, "portfolio")
