"""k-Clique — the decision variant of Maximum Clique (paper §5.1).

Determines whether the graph contains a clique of ``k`` vertices.  The
search tree and Lazy Node Generator are *identical* to MaxClique —
that's the point of the skeleton decomposition: switching from
"find the largest clique" to "is there a clique of size k" changes only
the search type (Optimisation -> Decision), not the generator.

Figure 4's scaling study runs exactly this application (a spread search
in H(4,4) phrased as k-clique with ``--decisionBound 33``).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.graph import Graph
from repro.apps.maxclique import maxclique_spec, sequential_maxclique_specialised
from repro.core.params import SkeletonParams
from repro.core.results import SearchResult
from repro.core.searchtypes import Decision
from repro.core.skeletons import make_skeleton
from repro.core.space import SearchSpec

__all__ = ["kclique_spec", "solve_kclique", "kclique_exists_specialised"]


def kclique_spec(graph: Graph, *, name: str = "kclique") -> SearchSpec:
    """The k-clique :class:`SearchSpec` (same generator as MaxClique).

    Pair with ``Decision(target=k)``; :func:`solve_kclique` does so.
    """
    return maxclique_spec(graph, name=name)


def solve_kclique(
    graph: Graph,
    k: int,
    *,
    skeleton: str = "sequential",
    params: Optional[SkeletonParams] = None,
) -> SearchResult:
    """Decide whether ``graph`` has a k-clique using any coordination."""
    spec = kclique_spec(graph, name=f"kclique-{k}")
    return make_skeleton(skeleton, "decision").search(
        spec, params, stype=Decision(target=k)
    )


def kclique_exists_specialised(graph: Graph, k: int) -> bool:
    """Hand-specialised decision solver (comparison baseline)."""
    result = sequential_maxclique_specialised(graph, target=k)
    return result.size >= k
