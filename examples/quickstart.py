#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 graph, searched three ways.

Builds the 8-vertex example graph from Figure 1 (vertices a..h), finds
its maximum clique {a, d, f, g}, checks a 3-clique exists (decision),
and counts the search-tree nodes (enumeration) — the three search types
over one Lazy Node Generator.

Run:  python examples/quickstart.py
"""

from repro import SkeletonParams, search
from repro.apps.graph import Graph
from repro.apps.maxclique import maxclique_spec

# Figure 1's input graph.  Vertices: a b c d e f g h -> 0..7.
NAMES = "abcdefgh"
EDGES = [
    ("a", "b"), ("a", "c"), ("a", "d"), ("a", "f"), ("a", "g"), ("a", "h"),
    ("b", "c"), ("b", "g"),
    ("c", "e"),
    ("d", "f"), ("d", "g"),
    ("e", "h"),
    ("f", "g"),
]


def main() -> None:
    g = Graph.from_edges(8, [(NAMES.index(u), NAMES.index(v)) for u, v in EDGES])
    spec = maxclique_spec(g, name="figure-1", order_by_degree=False)

    # --- Optimisation: the maximum clique -------------------------------
    opt = search(spec, skeleton="sequential", search_type="optimisation")
    clique = sorted(NAMES[v] for v in opt.node.vertices())
    print(f"maximum clique: {{{', '.join(clique)}}} (size {opt.value})")
    print(f"  nodes visited: {opt.metrics.nodes}, pruned subtrees: {opt.metrics.prunes}")

    # --- Decision: is there a 3-clique? ---------------------------------
    dec = search(spec, search_type="decision", target=3)
    witness = sorted(NAMES[v] for v in dec.node.vertices())
    print(f"3-clique exists: {dec.found} (witness {{{', '.join(witness)}}}, "
          f"{dec.metrics.nodes} nodes — decision short-circuits)")

    # --- Enumeration: size of the unpruned search tree ------------------
    from repro.core.searchtypes import Enumeration
    from repro.core.skeletons import make_skeleton

    enum = make_skeleton("sequential", "enumeration").search(
        spec, stype=Enumeration(objective=lambda node: 1)
    )
    print(f"search tree has {enum.value} nodes (cf. Figure 1's tree)")

    # --- The same search, parallelised by changing one argument ---------
    par = search(
        spec,
        skeleton="stacksteal",
        search_type="optimisation",
        params=SkeletonParams(localities=1, workers_per_locality=4),
    )
    print(f"parallel (stack-stealing, 4 workers): clique size {par.value}, "
          f"virtual makespan {par.virtual_time:.1f} work units")


if __name__ == "__main__":
    main()
