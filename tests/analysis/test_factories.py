"""factory-imports rule: spec-factory references resolve statically."""

from __future__ import annotations

from repro.analysis.core import run_analysis
from repro.analysis.rules.factories import FactoryImportsRule


def check(project):
    return run_analysis(
        project, [FactoryImportsRule()], check_suppression_hygiene=False
    )


class TestStringReferences:
    def test_valid_reference_clean(self, project_from):
        src = 'PATH = "repro.instances.graphs:planted_clique"\n'
        assert check(project_from({"m.py": src})).findings == []

    def test_missing_attribute_flagged(self, project_from):
        src = 'PATH = "repro.instances.graphs:no_such_factory"\n'
        (finding,) = check(project_from({"m.py": src})).findings
        assert "does not resolve" in finding.message
        assert "no_such_factory" in finding.message

    def test_missing_module_flagged(self, project_from):
        src = 'PATH = "repro.nowhere:thing"\n'
        (finding,) = check(project_from({"m.py": src})).findings
        assert "does not import" in finding.message

    def test_docstring_examples_exempt(self, project_from):
        src = (
            "def f():\n"
            '    """Use "repro.nowhere:thing" as the factory path."""\n'
            "    return 1\n"
        )
        assert check(project_from({"m.py": src})).findings == []

    def test_non_factory_string_exempt(self, project_from):
        src = 'MSG = "repro is a python package"\n'
        assert check(project_from({"m.py": src})).findings == []


class TestKeywordArguments:
    def test_lambda_factory_flagged(self, project_from):
        src = "submit = dict(spec_factory=lambda: None)\n"
        (finding,) = check(project_from({"m.py": src})).findings
        assert "lambda" in finding.message

    def test_module_level_def_clean(self, project_from):
        src = (
            "def my_factory():\n"
            "    return None\n\n\n"
            "job = dict(spec_factory=my_factory)\n"
        )
        assert check(project_from({"m.py": src})).findings == []

    def test_good_import_clean(self, project_from):
        src = (
            "from repro.instances.graphs import planted_clique\n\n"
            "job = dict(spec_factory=planted_clique)\n"
        )
        assert check(project_from({"m.py": src})).findings == []

    def test_broken_from_import_flagged(self, project_from):
        # The import itself would fail at runtime; analysis says so.
        src = (
            "from repro.instances.graphs import gone_factory\n\n"
            "job = dict(spec_factory=gone_factory)\n"
        )
        (finding,) = check(project_from({"m.py": src})).findings
        assert "gone_factory" in finding.message

    def test_factory_path_argument_checked(self, project_from):
        src = (
            "from repro.cluster.protocol import factory_path\n"
            "from repro.instances.graphs import planted_clique\n\n"
            "p = factory_path(planted_clique)\n"
        )
        assert check(project_from({"m.py": src})).findings == []

    def test_local_variable_skipped(self, project_from):
        src = (
            "def run(factory_fn):\n"
            "    return dict(spec_factory=factory_fn)\n"
        )
        assert check(project_from({"m.py": src})).findings == []
