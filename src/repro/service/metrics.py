"""Service-level metrics: what the search service is doing, summarised.

The simulator's :mod:`repro.runtime.trace` answers "what did workers do
during one search"; this module answers the operator's question — "how
is the *service* doing across many searches": queue depth, cache hit
rate, job latency percentiles, terminal-state counts.  Percentiles come
from :func:`repro.util.stats.percentile`, the same helper the paper
harnesses use, so one definition of p95 exists in the repo.

:class:`ServiceMetrics` is the live, thread-safe accumulator the
scheduler writes into; :meth:`ServiceMetrics.snapshot` freezes it into
an immutable :class:`MetricsSnapshot` for reporting.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.service.jobs import Job
from repro.util.stats import percentile

__all__ = ["ServiceMetrics", "MetricsSnapshot"]


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time view of the service."""

    queue_depth: int
    running: int
    submitted: int
    rejected: int
    coalesced: int
    retries: int
    executed: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: Optional[float]
    jobs_by_state: dict  # terminal state name -> count
    completed: int  # jobs in any terminal state
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    # Dynamic-scheduling visibility (jobs that actually executed a
    # search, i.e. not served from cache): how many ran on >1 worker,
    # the mean worker count, and the total subtree splits/spawns their
    # coordinations performed.  Defaulted so older call sites and
    # serialised snapshots stay valid.
    parallel_jobs: int = 0
    avg_workers: Optional[float] = None
    total_splits: int = 0
    # Elastic-fleet visibility (populated when the service runs over a
    # repro.deploy.ClusterDeployment): lifetime spawn/retire counts and
    # the live/peak fleet size.  Defaulted like the block above.
    workers_spawned: int = 0
    workers_retired: int = 0
    fleet_size: int = 0
    fleet_peak: int = 0

    def to_dict(self) -> dict:
        """Plain-dict (JSON-ready) form of the snapshot."""
        return {
            "queue_depth": self.queue_depth,
            "running": self.running,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "coalesced": self.coalesced,
            "retries": self.retries,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "jobs_by_state": dict(self.jobs_by_state),
            "completed": self.completed,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "parallel_jobs": self.parallel_jobs,
            "avg_workers": self.avg_workers,
            "total_splits": self.total_splits,
            "workers_spawned": self.workers_spawned,
            "workers_retired": self.workers_retired,
            "fleet_size": self.fleet_size,
            "fleet_peak": self.fleet_peak,
        }

    def render(self) -> str:
        """A terminal-readable block (the `repro serve` footer)."""
        hit_rate = (
            f"{self.cache_hit_rate:.0%}" if self.cache_hit_rate is not None else "n/a"
        )
        p50 = f"{self.latency_p50:.3f}s" if self.latency_p50 is not None else "n/a"
        p95 = f"{self.latency_p95:.3f}s" if self.latency_p95 is not None else "n/a"
        by_state = (
            "  ".join(f"{k}={v}" for k, v in sorted(self.jobs_by_state.items()))
            or "(none)"
        )
        avg_workers = (
            f"{self.avg_workers:.1f}" if self.avg_workers is not None else "n/a"
        )
        return "\n".join(
            [
                "service metrics:",
                f"  submitted: {self.submitted}  rejected: {self.rejected}  "
                f"coalesced: {self.coalesced}  retries: {self.retries}",
                f"  queue depth: {self.queue_depth}  running: {self.running}",
                f"  cache: {self.cache_hits} hits / {self.cache_misses} misses "
                f"(hit rate {hit_rate})",
                f"  latency: p50 {p50}  p95 {p95}  over {self.completed} jobs",
                f"  parallelism: {self.parallel_jobs} multi-worker jobs  "
                f"avg workers {avg_workers}  splits {self.total_splits}",
            ]
            # The fleet line only exists for elastic deployments; a
            # fixed-backend footer stays byte-identical to before.
            + (
                [
                    f"  fleet: {self.fleet_size} live (peak {self.fleet_peak})  "
                    f"spawned {self.workers_spawned}  "
                    f"retired {self.workers_retired}"
                ]
                if self.workers_spawned or self.fleet_peak
                else []
            )
            + [f"  terminal states: {by_state}"]
        )


class ServiceMetrics:
    """Thread-safe accumulator the scheduler reports into."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.submitted = 0  # guarded-by: _lock
        self.rejected = 0  # guarded-by: _lock
        self.coalesced = 0  # guarded-by: _lock
        self.retries = 0  # guarded-by: _lock
        self.executed = 0  # guarded-by: _lock
        self._by_state: dict[str, int] = {}  # guarded-by: _lock
        self._latencies: list[float] = []  # guarded-by: _lock
        self._worker_counts: list[int] = []  # guarded-by: _lock
        self._total_splits = 0  # guarded-by: _lock
        self._workers_spawned = 0  # guarded-by: _lock
        self._workers_retired = 0  # guarded-by: _lock
        self._fleet_size = 0  # guarded-by: _lock
        self._fleet_peak = 0  # guarded-by: _lock

    # -- recording -----------------------------------------------------------

    def job_submitted(self) -> None:
        """Count a submission that was accepted into the service."""
        with self._lock:
            self.submitted += 1

    def job_rejected(self) -> None:
        """Count a submission turned away by admission control."""
        with self._lock:
            self.rejected += 1

    def job_coalesced(self) -> None:
        """Count a duplicate submission attached to an in-flight twin."""
        with self._lock:
            self.coalesced += 1

    def job_retried(self) -> None:
        """Count a retry dispatched after a worker crash."""
        with self._lock:
            self.retries += 1

    def job_executed(self) -> None:
        """Count a job actually handed to a backend (cache hits, rejects
        and coalesced followers never reach this) — the counter that
        proves deduplication: N identical submissions, one execution."""
        with self._lock:
            self.executed += 1

    def job_finished(self, job: Job) -> None:
        """Record a job reaching a terminal state (latency + state count).

        Jobs that actually executed a search (result present, not served
        from cache) additionally contribute their worker count and their
        coordination's subtree-split count — the operator-level view of
        how much dynamic scheduling the service is doing.
        """
        with self._lock:
            state = job.state.value
            self._by_state[state] = self._by_state.get(state, 0) + 1
            lat = job.latency()
            if lat is not None:
                self._latencies.append(lat)
            result = job.result
            if result is not None and not job.from_cache:
                if result.workers is not None:
                    self._worker_counts.append(result.workers)
                if result.metrics is not None:
                    self._total_splits += result.metrics.spawns

    def worker_spawned(self) -> None:
        """Count an elastic deployment adding a fleet worker."""
        with self._lock:
            self._workers_spawned += 1

    def worker_retired(self) -> None:
        """Count an elastic deployment draining a fleet worker out."""
        with self._lock:
            self._workers_retired += 1

    def set_fleet_size(self, n: int) -> None:
        """Record the current live fleet size (tracks the peak too)."""
        with self._lock:
            self._fleet_size = max(0, int(n))
            self._fleet_peak = max(self._fleet_peak, self._fleet_size)

    # -- reporting -----------------------------------------------------------

    def snapshot(
        self, *, queue_depth: int = 0, running: int = 0, cache=None
    ) -> MetricsSnapshot:
        """Freeze the current counters into a :class:`MetricsSnapshot`.

        ``cache`` is a :class:`repro.service.cache.ResultCache` (or
        anything with ``hits``/``misses`` counters); omitted, the cache
        columns read zero.

        The snapshot is *consistent*: every counter is copied inside one
        critical section, and the cache hit rate is derived from the
        same ``hits``/``misses`` pair that is reported — not re-read via
        ``cache.hit_rate()``, which could observe newer counters than
        the ones already copied and publish a rate that disagrees with
        them (visible to a concurrent ``/metrics`` scrape).
        """
        with self._lock:
            latencies = list(self._latencies)
            by_state = dict(self._by_state)
            submitted, rejected = self.submitted, self.rejected
            coalesced, retries = self.coalesced, self.retries
            executed = self.executed
            worker_counts = list(self._worker_counts)
            total_splits = self._total_splits
            workers_spawned = self._workers_spawned
            workers_retired = self._workers_retired
            fleet_size = self._fleet_size
            fleet_peak = self._fleet_peak
            hits = cache.hits if cache is not None else 0
            misses = cache.misses if cache is not None else 0
        hit_rate = hits / (hits + misses) if (hits + misses) else None
        return MetricsSnapshot(
            queue_depth=queue_depth,
            running=running,
            submitted=submitted,
            rejected=rejected,
            coalesced=coalesced,
            retries=retries,
            executed=executed,
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hit_rate,
            jobs_by_state=by_state,
            completed=sum(by_state.values()),
            latency_p50=percentile(latencies, 50) if latencies else None,
            latency_p95=percentile(latencies, 95) if latencies else None,
            parallel_jobs=sum(1 for w in worker_counts if w > 1),
            avg_workers=(
                sum(worker_counts) / len(worker_counts) if worker_counts else None
            ),
            total_splits=total_splits,
            workers_spawned=workers_spawned,
            workers_retired=workers_retired,
            fleet_size=fleet_size,
            fleet_peak=fleet_peak,
        )
