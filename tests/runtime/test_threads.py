"""Tests for the real-thread Depth-Bounded backend."""

import pytest

from repro.core.searchtypes import Decision, Enumeration, Optimisation
from repro.core.sequential import sequential_search
from repro.runtime.threads import threaded_depthbounded_search

from tests.conftest import make_toy_spec


def wide_spec(width=4, depth=4):
    children = {}
    values = {"root": 1}

    def grow(name, d):
        if d == depth:
            return
        kids = [f"{name}/{i}" for i in range(width)]
        children[name] = kids
        for k in kids:
            values[k] = 1
            grow(k, d + 1)

    grow("root", 0)
    return make_toy_spec(children, values, with_bound=False)


class TestEnumeration:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("cutoff", [1, 2])
    def test_counts_match_sequential(self, threads, cutoff):
        spec = wide_spec()
        seq = sequential_search(spec, Enumeration())
        res = threaded_depthbounded_search(
            spec, Enumeration(), n_threads=threads, d_cutoff=cutoff
        )
        assert res.value == seq.value
        assert res.metrics.nodes == seq.metrics.nodes

    def test_solution_counting(self):
        spec = wide_spec(width=3, depth=3)
        stype = Enumeration(objective=lambda n: 1 if n.count("/") == 3 else 0)
        res = threaded_depthbounded_search(spec, stype, n_threads=3)
        assert res.value == 27


class TestOptimisation:
    def test_matches_sequential(self, toy_spec):
        seq = sequential_search(toy_spec, Optimisation())
        res = threaded_depthbounded_search(toy_spec, Optimisation(), n_threads=3)
        assert res.value == seq.value

    def test_real_instance(self):
        from repro.apps.maxclique import maxclique_spec
        from repro.instances.graphs import uniform_graph

        spec = maxclique_spec(uniform_graph(35, 0.5, seed=3))
        seq = sequential_search(spec, Optimisation())
        res = threaded_depthbounded_search(spec, Optimisation(), n_threads=4)
        assert res.value == seq.value


class TestDecision:
    def test_found(self, toy_spec):
        res = threaded_depthbounded_search(
            toy_spec, Decision(target=5), n_threads=2, d_cutoff=1
        )
        assert res.found is True
        assert res.value == 5

    def test_refuted(self):
        spec = wide_spec(width=3, depth=2)
        res = threaded_depthbounded_search(spec, Decision(target=2), n_threads=2)
        assert res.found is False

    def test_goal_cuts_off_outstanding_tasks(self):
        # With the goal met, later subtrees bail out early: total nodes
        # stay below the exhaustive count.  Objective = node depth.
        children = {}

        def grow(name, d):
            if d == 4:
                return
            kids = [f"{name}/{i}" for i in range(4)]
            children[name] = kids
            for k in kids:
                grow(k, d + 1)

        grow("root", 0)
        values = {"root": 0}
        values.update({n: n.count("/") for ns in children.values() for n in ns})
        spec = make_toy_spec(children, values, with_bound=False)
        res = threaded_depthbounded_search(
            spec, Decision(target=4), n_threads=1, d_cutoff=1
        )
        exhaustive = sequential_search(spec, Enumeration())
        assert res.found is True
        assert res.metrics.nodes < exhaustive.metrics.nodes


class TestValidation:
    def test_bad_thread_count(self, toy_spec):
        with pytest.raises(ValueError):
            threaded_depthbounded_search(toy_spec, Optimisation(), n_threads=0)

    def test_workers_reported(self, toy_spec):
        res = threaded_depthbounded_search(toy_spec, Optimisation(), n_threads=5)
        assert res.workers == 5
        assert res.wall_time is not None
