#!/usr/bin/env python
"""Running a real application through the paper's formal semantics.

Section 3 of the paper defines parallel search as a nondeterministic
small-step reduction system and proves it correct.  This demo makes
that concrete: the Figure 1 clique instance is materialised into the
model's tree-of-words, searched by the Figure 2 reduction rules under
several random interleavings and spawn policies, certified legal by the
independent rule checker, and compared against the production skeleton.

Run:  python examples/formal_model_demo.py
"""

from collections import Counter

from repro import search
from repro.apps.graph import Graph
from repro.apps.maxclique import maxclique_spec
from repro.semantics.bridge import machine_search, materialise_spec
from repro.semantics.checker import check_run
from repro.semantics.machine import (
    OPTIMISATION,
    Configuration,
    Machine,
    SearchProblem,
)
from repro.semantics.monoids import MaxMonoid

NAMES = "abcdefgh"
EDGES = [
    ("a", "b"), ("a", "c"), ("a", "d"), ("a", "f"), ("a", "g"), ("a", "h"),
    ("b", "c"), ("b", "g"), ("c", "e"), ("d", "f"), ("d", "g"),
    ("e", "h"), ("f", "g"),
]


def main() -> None:
    g = Graph.from_edges(8, [(NAMES.index(u), NAMES.index(v)) for u, v in EDGES])
    spec = maxclique_spec(g, name="figure-1", order_by_degree=False)

    tree, node_of = materialise_spec(spec)
    print(f"materialised search tree: {len(tree)} nodes "
          "(cf. the tree drawn in the paper's Figure 1)")

    # The production skeleton's answer.
    skel = search(spec, search_type="optimisation")
    print(f"skeleton optimum: clique size {skel.value}")

    # The abstract machine, under several policies and interleavings —
    # every run must agree (Theorem 3.2), whatever the schedule.
    print("\nabstract machine runs (policy, seed -> witness, steps, rules used):")
    for policy in (None, "any", "depth", "budget", "stack"):
        for seed in (0, 1):
            problem = SearchProblem(
                OPTIMISATION,
                MaxMonoid(),
                lambda w: spec.objective(node_of[w]),
            )
            machine = Machine(problem, spawn_policy=policy, d_cutoff=1,
                              k_budget=1, seed=seed)
            cfg = Configuration.initial(problem, tree, 2)
            run = [cfg]
            while (nxt := machine.step(cfg)) is not None:
                run.append(nxt)
                cfg = nxt
            judgements = check_run(problem, run)  # certify every reduction
            rules = Counter(j.rule.split("@")[0] for j in judgements)
            witness = node_of[cfg.knowledge]
            assert witness.size == skel.value
            top = ", ".join(f"{r}x{c}" for r, c in rules.most_common(3))
            print(f"  policy={str(policy):6s} seed={seed}: clique size "
                  f"{witness.size}, {len(run) - 1} reductions ({top}, ...)")

    # With branch-and-bound pruning, the machine explores less but still
    # agrees.
    witness = machine_search(spec, "optimisation", seed=7)
    clique = sorted(NAMES[v] for v in witness.vertices())
    print(f"\nwith admissible pruning: witness {{{', '.join(clique)}}} "
          f"(size {witness.size}) — same optimum, fewer reductions")


if __name__ == "__main__":
    main()
