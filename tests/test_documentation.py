"""Documentation coverage: every public item carries a docstring.

Deliverable (e) of the reproduction: doc comments on every public item.
This test walks the installed ``repro`` package and asserts that every
public module, class, function and method defined in it is documented,
so regressions fail CI rather than accumulating.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_METHODS = {
    # object protocol methods whose meaning is standard
    "__init__",
    "__repr__",
    "__eq__",
    "__hash__",
    "__len__",
    "__iter__",
    "__contains__",
    "__bool__",
    "__post_init__",
}


def walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(obj):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their definition site
        yield name, obj


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            m.__name__ for m in walk_modules() if not (m.__doc__ or "").strip()
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for module in walk_modules():
            for name, obj in public_members(module):
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (inspect.getdoc(obj) or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_documented(self):
        missing = []
        for module in walk_modules():
            for cname, cls in public_members(module):
                if not inspect.isclass(cls):
                    continue
                for mname, member in vars(cls).items():
                    if mname.startswith("_") and mname not in IGNORED_METHODS:
                        continue
                    if mname in IGNORED_METHODS:
                        continue
                    if inspect.isfunction(member) and not (
                        inspect.getdoc(member) or ""
                    ).strip():
                        missing.append(f"{module.__name__}.{cname}.{mname}")
        assert not missing, f"undocumented public methods: {missing}"
