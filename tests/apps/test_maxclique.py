"""Tests for Maximum Clique: colouring, generator, search, baselines."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.graph import Graph
from repro.apps.maxclique import (
    CliqueGen,
    CliqueNode,
    degree_order,
    greedy_colour,
    maxclique_spec,
    sequential_maxclique_specialised,
)
from repro.core.searchtypes import Optimisation
from repro.core.sequential import sequential_search
from repro.instances.graphs import cycle_graph, planted_clique, uniform_graph
from repro.util.bitset import bit_indices, count_bits, mask_below


def brute_force_max_clique(g: Graph) -> int:
    """Exponential oracle for tiny graphs."""
    best = 0
    for r in range(g.n, 0, -1):
        if r <= best:
            break
        for combo in itertools.combinations(range(g.n), r):
            bits = 0
            for v in combo:
                bits |= 1 << v
            if g.subgraph_is_clique(bits):
                best = max(best, r)
                break
    return best


small_graphs = st.builds(
    uniform_graph,
    st.integers(min_value=1, max_value=10),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=200),
)


class TestGreedyColour:
    def test_empty_set(self):
        g = uniform_graph(5, 0.5, 1)
        p_vertex, p_colour = greedy_colour(g, 0)
        assert p_vertex == [] and p_colour == []

    def test_enumerates_candidates(self):
        g = cycle_graph(5)
        p_vertex, p_colour = greedy_colour(g, mask_below(5))
        assert sorted(p_vertex) == [0, 1, 2, 3, 4]

    def test_colour_counts_monotone(self):
        g = uniform_graph(12, 0.6, 3)
        _, p_colour = greedy_colour(g, mask_below(12))
        assert all(a <= b for a, b in zip(p_colour, p_colour[1:]))

    def test_colour_classes_independent(self):
        g = uniform_graph(12, 0.6, 4)
        p_vertex, p_colour = greedy_colour(g, mask_below(12))
        by_colour = {}
        for v, c in zip(p_vertex, p_colour):
            by_colour.setdefault(c, []).append(v)
        # vertices *newly* added at colour c form an independent set
        seen = set()
        for c in sorted(by_colour):
            fresh = [v for v in by_colour[c] if v not in seen]
            for a in fresh:
                for b in fresh:
                    if a != b:
                        assert not g.has_edge(a, b)
            seen.update(fresh)

    @given(small_graphs)
    def test_colours_upper_bound_clique(self, g):
        # The number of colours bounds the clique number from above.
        if g.n == 0:
            return
        _, p_colour = greedy_colour(g, mask_below(g.n))
        assert p_colour[-1] >= brute_force_max_clique(g)


def naive_greedy_colour(g: Graph, candidates: set):
    """Set-based reference for the bit-twiddled ``greedy_colour``: fill
    colour classes greedily, lowest vertex first, each class an
    independent set — the definition, executed literally."""
    p_vertex, p_colour = [], []
    uncoloured = set(candidates)
    colour = 0
    while uncoloured:
        colour += 1
        available = set(uncoloured)
        while available:
            v = min(available)
            p_vertex.append(v)
            p_colour.append(colour)
            uncoloured.discard(v)
            available = {u for u in available if u != v and not g.has_edge(u, v)}
    return p_vertex, p_colour


class TestGreedyColourAgainstReference:
    """Fixed-seed corpus: the production colouring must equal the naive
    set-based reference exactly — same vertex order, same colours."""

    CASES = [(n, p, seed) for seed, (n, p) in enumerate(
        [(1, 0.5), (5, 0.0), (5, 1.0), (8, 0.3), (10, 0.5),
         (12, 0.7), (14, 0.4), (16, 0.6), (20, 0.5), (24, 0.35)]
    )]

    @pytest.mark.parametrize("n,p,seed", CASES)
    def test_full_vertex_set_matches_reference(self, n, p, seed):
        g = uniform_graph(n, p, seed)
        assert greedy_colour(g, mask_below(n)) == naive_greedy_colour(
            g, set(range(n))
        )

    def test_random_candidate_subsets_match_reference(self):
        from repro.util.bitset import bitset_from_iterable
        from repro.util.rng import SplitMix64

        rng = SplitMix64(0xC0105)
        for _ in range(30):
            n = 6 + rng.randrange(12)
            g = uniform_graph(n, 0.3 + 0.05 * rng.randrange(9), rng.randrange(1000))
            cands = {v for v in range(n) if rng.randrange(2)}
            assert greedy_colour(g, bitset_from_iterable(cands)) == (
                naive_greedy_colour(g, cands)
            )

    @pytest.mark.parametrize("n,p,seed", CASES)
    def test_every_candidate_coloured_exactly_once(self, n, p, seed):
        g = uniform_graph(n, p, seed)
        p_vertex, p_colour = greedy_colour(g, mask_below(n))
        assert sorted(p_vertex) == list(range(n))
        assert len(p_vertex) == len(p_colour)
        assert p_colour == sorted(p_colour)  # classes filled in order


class TestCliqueGen:
    def test_children_extend_clique_by_one(self):
        g = uniform_graph(8, 0.7, 5)
        spec = maxclique_spec(g, order_by_degree=False)
        gen = CliqueGen(g, spec.root)
        while gen.has_next():
            child = gen.next()
            assert child.size == 1
            assert count_bits(child.clique) == 1

    def test_candidates_all_adjacent_to_clique(self):
        g = uniform_graph(10, 0.6, 6)
        spec = maxclique_spec(g, order_by_degree=False)
        gen = CliqueGen(g, spec.root)
        while gen.has_next():
            child = gen.next()
            v = next(bit_indices(child.clique))
            for c in bit_indices(child.candidates):
                assert g.has_edge(v, c)

    def test_children_are_cliques_throughout_tree(self):
        g = uniform_graph(9, 0.6, 7)
        spec = maxclique_spec(g)
        graph = spec.space
        stack = [spec.root]
        while stack:
            node = stack.pop()
            assert graph.subgraph_is_clique(node.clique)
            gen = CliqueGen(graph, node)
            stack.extend(list(gen))

    def test_heuristic_order_best_colour_first(self):
        g = uniform_graph(10, 0.5, 8)
        spec = maxclique_spec(g, order_by_degree=False)
        gen = CliqueGen(g, spec.root)
        bounds = [gen.next().bound for _ in range(3) if gen.has_next()]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))


class TestSearchCorrectness:
    @settings(max_examples=40, deadline=None)
    @given(small_graphs)
    def test_matches_brute_force(self, g):
        spec = maxclique_spec(g)
        res = sequential_search(spec, Optimisation())
        assert res.value == brute_force_max_clique(g)

    @settings(max_examples=40, deadline=None)
    @given(small_graphs)
    def test_witness_is_clique_of_reported_size(self, g):
        spec = maxclique_spec(g)
        res = sequential_search(spec, Optimisation())
        relabelled = spec.space
        assert relabelled.subgraph_is_clique(res.node.clique)
        assert count_bits(res.node.clique) == res.value

    def test_planted_clique_found(self):
        g = planted_clique(30, 0.3, 9, seed=17)
        res = sequential_search(maxclique_spec(g), Optimisation())
        assert res.value >= 9

    def test_cycle_graph(self):
        res = sequential_search(maxclique_spec(cycle_graph(7)), Optimisation())
        assert res.value == 2

    def test_complete_graph(self):
        g = Graph.from_edges(5, [(i, j) for i in range(5) for j in range(i + 1, 5)])
        res = sequential_search(maxclique_spec(g), Optimisation())
        assert res.value == 5

    def test_empty_graph(self):
        res = sequential_search(maxclique_spec(Graph(4)), Optimisation())
        assert res.value == 1  # a single vertex is a 1-clique


class TestSpecialisedBaseline:
    @settings(max_examples=30, deadline=None)
    @given(small_graphs)
    def test_same_answer_as_skeleton(self, g):
        spec_res = sequential_maxclique_specialised(g)
        res = sequential_search(maxclique_spec(g), Optimisation())
        assert spec_res.size == res.value

    @settings(max_examples=30, deadline=None)
    @given(small_graphs)
    def test_same_tree_as_skeleton(self, g):
        """The Table 1 premise: both implementations explore the same
        tree, so runtime differences are pure abstraction overhead."""
        spec_res = sequential_maxclique_specialised(g)
        res = sequential_search(maxclique_spec(g), Optimisation())
        assert spec_res.nodes == res.metrics.nodes

    def test_same_tree_on_bigger_instance(self):
        g = uniform_graph(35, 0.5, 23)
        spec_res = sequential_maxclique_specialised(g)
        res = sequential_search(maxclique_spec(g), Optimisation())
        assert spec_res.nodes == res.metrics.nodes
        assert spec_res.size == res.value

    def test_decision_target_short_circuits(self):
        g = planted_clique(30, 0.3, 9, seed=17)
        full = sequential_maxclique_specialised(g)
        early = sequential_maxclique_specialised(g, target=5)
        assert early.size >= 5
        assert early.nodes <= full.nodes

    def test_witness_is_clique(self):
        g = uniform_graph(20, 0.5, 29)
        res = sequential_maxclique_specialised(g, order_by_degree=False)
        assert g.subgraph_is_clique(res.clique)
        assert count_bits(res.clique) == res.size


class TestDegreeOrder:
    def test_non_increasing(self):
        g = uniform_graph(15, 0.4, 31)
        order = degree_order(g)
        degs = [g.degree(v) for v in order]
        assert degs == sorted(degs, reverse=True)

    def test_is_permutation(self):
        g = uniform_graph(15, 0.4, 31)
        assert sorted(degree_order(g)) == list(range(15))
