"""ClusterDeployment integration tests: real fleets scaling up and down.

These spawn real worker processes (spawn context, ~0.5s each), so they
keep fleets small and budgets tight.
"""

import time

import pytest

from repro.deploy import Adaptive, ClusterDeployment, WorkerSpec


@pytest.fixture
def deployment():
    dep = ClusterDeployment(
        WorkerSpec(name_prefix="t", give_up_after=15.0),
        heartbeat_interval=0.1,
        heartbeat_timeout=2.0,
    )
    yield dep
    dep.close()


class TestScaling:
    def test_scale_up_spawns_and_connects(self, deployment):
        deployment.scale(2)
        deployment.wait_for_workers(2, timeout=20)
        assert deployment.fleet_size() == 2
        assert deployment.workers_spawned == 2
        stats = deployment.handle.load_stats()
        assert sorted(w["name"] for w in stats["workers"]) == ["t-0", "t-1"]

    def test_scale_down_retires_youngest_first(self, deployment):
        deployment.scale(3)
        deployment.wait_for_workers(3, timeout=30)
        deployment.scale(1)
        deployment.wait_for_fleet(1, timeout=20)
        assert deployment.workers_retired == 2
        # The survivor is always the oldest worker.
        assert deployment.worker_names() == ["t-0"]
        stats = deployment.handle.load_stats()
        assert [w["name"] for w in stats["workers"]] == ["t-0"]

    def test_scale_is_idempotent_during_drain(self, deployment):
        deployment.scale(2)
        deployment.wait_for_workers(2, timeout=20)
        deployment.scale(1)
        deployment.scale(1)  # must not retire the survivor too
        deployment.wait_for_fleet(1, timeout=20)
        assert deployment.workers_retired == 1

    def test_names_never_recycle(self, deployment):
        deployment.scale(1)
        deployment.wait_for_workers(1, timeout=20)
        deployment.scale(0)
        deployment.wait_for_fleet(0, timeout=20)
        deployment.scale(1)
        # The replacement is t-1: indices are monotone, so coordinator
        # logs and chaos plans never see an ambiguous name.
        assert deployment.worker_names() == ["t-1"]

    def test_wait_for_fleet_times_out_descriptively(self, deployment):
        with pytest.raises(TimeoutError, match="fleet is 0 workers, wanted 1"):
            deployment.wait_for_fleet(1, timeout=0.2)


class TestAdaptLoop:
    def test_follows_demand_up_and_back_down(self, deployment):
        demand = {"depth": 0}
        deployment.adapt(
            1,
            3,
            interval=0.1,
            policy=Adaptive(1, 3, smoothing=1.0, down_cooldown=0.5),
            queue_depth=lambda: demand["depth"],
        )
        deployment.wait_for_fleet(1, timeout=20)

        demand["depth"] = 5
        deadline = time.monotonic() + 20
        while deployment.fleet_size() < 3 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert deployment.fleet_size() == 3
        assert deployment.fleet_peak == 3

        demand["depth"] = 0
        deployment.wait_for_fleet(1, timeout=30)
        assert deployment.workers_retired >= 2
        assert deployment.worker_names() == ["t-0"]

    def test_self_heals_a_crashed_worker(self, deployment):
        deployment.adapt(
            1,
            3,
            interval=0.1,
            policy=Adaptive(1, 3, smoothing=1.0, down_cooldown=5.0),
        )
        deployment.wait_for_fleet(1, timeout=20)
        victim = deployment._procs["t-0"]
        victim.terminate()
        victim.join(timeout=5)
        # The adapt loop reaps the corpse and respawns to the floor.
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            names = deployment.worker_names()
            if names and names != ["t-0"]:
                break
            time.sleep(0.05)
        assert deployment.worker_names() == ["t-1"]
        assert deployment.workers_spawned == 2


class TestMetricsIntegration:
    def test_deployment_reports_into_service_metrics(self):
        from repro.service.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        dep = ClusterDeployment(
            WorkerSpec(name_prefix="m", give_up_after=15.0),
            heartbeat_interval=0.1,
            heartbeat_timeout=2.0,
            metrics=metrics,
        )
        try:
            dep.scale(2)
            dep.wait_for_workers(2, timeout=20)
            dep.scale(1)
            dep.wait_for_fleet(1, timeout=20)
            snap = metrics.snapshot()
            assert snap.workers_spawned == 2
            assert snap.workers_retired == 1
            assert snap.fleet_size == 1
            assert snap.fleet_peak == 2
            assert "fleet: 1 live (peak 2)" in snap.render()
        finally:
            dep.close()

    def test_fleet_line_absent_without_a_fleet(self):
        from repro.service.metrics import ServiceMetrics

        assert "fleet:" not in ServiceMetrics().snapshot().render()
