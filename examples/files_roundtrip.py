#!/usr/bin/env python
"""Interchange formats: run the skeletons on standard benchmark files.

Exports library instances to the standard interchange formats (DIMACS
.clq, TSPLIB .tsp, Pisinger-style knapsack), reads them back, and
searches them — the workflow a user with the real benchmark files
follows, demonstrated end-to-end with generated stand-ins.

Run:  python examples/files_roundtrip.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import search
from repro.apps.knapsack import knapsack_spec
from repro.apps.maxclique import maxclique_spec
from repro.apps.tsp import tsp_spec
from repro.instances import (
    load_instance,
    parse_dimacs,
    parse_knapsack,
    parse_tsplib,
    write_dimacs,
    write_knapsack,
    write_tsplib,
)
from repro.instances.library import random_knapsack, random_tsp


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    out_dir.mkdir(parents=True, exist_ok=True)
    print(f"writing instance files to {out_dir}")

    # DIMACS clique file.
    graph = load_instance("sanr90-1")
    clq = out_dir / "sanr90-1.clq"
    write_dimacs(graph, clq, comments=["sanr-style uniform graph, seed 401"])
    res = search(maxclique_spec(parse_dimacs(clq), name="sanr90-1"),
                 search_type="optimisation")
    print(f"{clq.name}: n={graph.n}, maximum clique {res.value}")

    # TSPLIB file.
    tsp = random_tsp(10, seed=601)
    tsp_path = out_dir / "rand10.tsp"
    write_tsplib(tsp, tsp_path, name="rand10")
    res = search(tsp_spec(parse_tsplib(tsp_path), name="rand10"),
                 search_type="optimisation")
    print(f"{tsp_path.name}: n={tsp.n}, optimal tour length "
          f"{tsp.ub_total() - res.value}")

    # Knapsack file.
    knap = random_knapsack(16, seed=701, kind="strong")
    knap_path = out_dir / "strong16.txt"
    write_knapsack(knap, knap_path, comment="strongly correlated, seed 701")
    res = search(knapsack_spec(parse_knapsack(knap_path), name="strong16"),
                 search_type="optimisation")
    print(f"{knap_path.name}: n={knap.n}, optimal profit {res.value}")


if __name__ == "__main__":
    main()
